"""Exception-hierarchy tests: everything is catchable as ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SchemaError,
    errors.CatalogError,
    errors.StorageError,
    errors.QueryError,
    errors.ParseError,
    errors.RuleError,
    errors.MatchError,
    errors.ExecutionError,
    errors.TransactionError,
    errors.DeadlockError,
    errors.IndexError_,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_are_repro_errors(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_deadlock_is_a_transaction_error():
    assert issubclass(errors.DeadlockError, errors.TransactionError)


def test_parse_error_carries_location():
    error = errors.ParseError("bad token", line=3, column=7)
    assert error.line == 3
    assert error.column == 7
    assert "line 3" in str(error)


def test_parse_error_without_location():
    error = errors.ParseError("bad token")
    assert "line" not in str(error)


def test_library_operations_raise_catchable_errors():
    from repro import ProductionSystem

    with pytest.raises(errors.ReproError):
        ProductionSystem("(p broken")
    with pytest.raises(errors.ReproError):
        ProductionSystem(
            "(literalize T x)(p r (Ghost ^y 1) --> (halt))"
        )
