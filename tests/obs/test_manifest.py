"""Run-manifest tests: hashing, ids, on-disk layout, footer."""

import json

from repro.obs import RunManifest, git_sha, new_run_id, program_hash, repro_footer


class TestHelpers:
    def test_program_hash_is_stable_and_short(self):
        assert program_hash("(p r ...)") == program_hash("(p r ...)")
        assert len(program_hash("x")) == 16
        assert program_hash("a") != program_hash("b")

    def test_new_run_id_sortable_and_unique(self):
        first = new_run_id(clock=1_700_000_000.0)
        second = new_run_id(clock=1_700_000_001.0)
        assert first < second
        assert first != new_run_id(clock=1_700_000_000.5)

    def test_git_sha_in_this_repo(self):
        sha = git_sha()
        assert sha is None or len(sha) == 40

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) is None


class TestRunManifest:
    def test_as_dict_sections(self):
        manifest = RunManifest(
            run_id="r1",
            program_hash="abc",
            program_path="p.ops",
            strategy="patterns",
            resolution="lex",
            backend="memory",
            seed=3,
        )
        d = manifest.as_dict()
        assert d["run_id"] == "r1"
        assert d["program"] == {"path": "p.ops", "hash": "abc"}
        assert d["config"]["strategy"] == "patterns"
        assert d["config"]["seed"] == 3

    def test_write_creates_run_dir_with_metrics(self, tmp_path):
        manifest = RunManifest(run_id="r2", metrics={"counters": {"c": 1}})
        path = manifest.write(base_dir=str(tmp_path))
        assert path.endswith("manifest.json")
        on_disk = json.loads(open(path).read())
        assert on_disk["run_id"] == "r2"
        metrics_path = tmp_path / "r2" / "metrics.json"
        assert json.loads(metrics_path.read_text()) == {"counters": {"c": 1}}
        assert on_disk["artifacts"]["metrics"] == str(metrics_path)

    def test_write_respects_existing_metrics_path(self, tmp_path):
        manifest = RunManifest(
            run_id="r3", metrics={"x": 1}, metrics_path="elsewhere.json"
        )
        manifest.write(base_dir=str(tmp_path))
        assert not (tmp_path / "r3" / "metrics.json").exists()


def test_repro_footer_shape():
    footer = repro_footer(["rete", "patterns"])
    assert footer.startswith("repro: git ")
    assert "python " in footer
    assert "strategies: rete, patterns" in footer
    assert "\n" not in footer
