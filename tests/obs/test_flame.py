"""Collapsed-stack folding of post-order span streams (repro.obs.flame)."""

import json

from repro.obs import Observability, CallbackSink, fold_spans, fold_trace_file, render_folded


def span(name, depth, dur_us, ts=0.0):
    return {
        "type": "span",
        "name": name,
        "ts": ts,
        "dur_us": dur_us,
        "depth": depth,
        "attrs": {},
    }


class TestFoldSpans:
    def test_single_span_is_its_own_stack(self):
        assert fold_spans([span("run", 0, 100)]) == {"run": 100}

    def test_child_self_time_subtracts_from_parent(self):
        # Post-order: the child closes before its parent.
        records = [span("match", 1, 30), span("cycle", 0, 100)]
        assert fold_spans(records) == {"cycle": 70, "cycle;match": 30}

    def test_self_time_clamped_at_zero(self):
        records = [span("match", 1, 120), span("cycle", 0, 100)]
        assert fold_spans(records) == {"cycle": 0, "cycle;match": 120}

    def test_repeated_stacks_aggregate(self):
        records = [
            span("match", 1, 10),
            span("match", 1, 15),
            span("cycle", 0, 40),
        ]
        assert fold_spans(records) == {"cycle": 15, "cycle;match": 25}

    def test_sibling_parents_claim_only_their_own_children(self):
        records = [
            span("fsync", 1, 5),
            span("act", 0, 20),
            span("join", 1, 8),
            span("match", 0, 10),
        ]
        assert fold_spans(records) == {
            "act": 15,
            "act;fsync": 5,
            "match": 2,
            "match;join": 8,
        }

    def test_three_levels_deep(self):
        records = [
            span("fsync", 2, 4),
            span("act", 1, 10),
            span("cycle", 0, 25),
        ]
        assert fold_spans(records) == {
            "cycle": 15,
            "cycle;act": 6,
            "cycle;act;fsync": 4,
        }

    def test_non_span_records_are_ignored(self):
        records = [
            {"type": "event", "kind": "halt"},
            {"type": "metrics", "counters": {}},
            {"type": "span", "name": "broken"},  # no depth: malformed
            span("run", 0, 7),
        ]
        assert fold_spans(records) == {"run": 7}

    def test_orphaned_inner_spans_become_roots(self):
        """A truncated stream whose outer span never closed still folds:
        the unclaimed inner spans are walked as roots."""
        records = [span("fsync", 2, 4), span("act", 1, 10)]
        assert fold_spans(records) == {"act": 6, "act;fsync": 4}

    def test_real_observability_stream_folds(self):
        records = []
        obs = Observability(sinks=[CallbackSink(records.append)])
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        stacks = fold_spans(records)
        assert set(stacks) == {"outer", "outer;inner"}


class TestRendering:
    def test_render_folded_is_sorted_lines(self):
        text = render_folded({"b;c": 2, "a": 1})
        assert text == "a 1\nb;c 2\n"

    def test_fold_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps({"type": "event", "kind": "noise"}),
            json.dumps(span("match", 1, 30)),
            json.dumps(span("cycle", 0, 100)),
            "",  # blank lines are tolerated
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert fold_trace_file(str(path)) == {
            "cycle": 70,
            "cycle;match": 30,
        }


class TestSchemaTolerance:
    def test_fold_spans_requires_numeric_duration_and_string_name(self):
        records = [
            {"type": "span", "name": "x", "depth": 0, "dur_us": "fast"},
            {"type": "span", "name": 7, "depth": 0, "dur_us": 1.0},
            {"type": "span", "name": "x", "depth": "deep", "dur_us": 1.0},
            span("run", 0, 7),
        ]
        assert fold_spans(records) == {"run": 7}

    def test_fold_trace_file_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            "{not json at all",
            '"a bare string"',
            "[1, 2, 3]",
            "42",
            json.dumps(span("cycle", 0, 10)),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert fold_trace_file(str(path)) == {"cycle": 10}
