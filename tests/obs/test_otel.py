"""The gated OpenTelemetry bridge sink (repro.obs.otel)."""

import sys

from repro.obs import Observability, OtelBridgeSink, make_otel_sink


class FakeSpan:
    def __init__(self, name, start_time):
        self.name = name
        self.start_time = start_time
        self.end_time = None
        self.attributes = {}

    def set_attribute(self, key, value):
        self.attributes[key] = value

    def end(self, end_time=None):
        self.end_time = end_time


class FakeTracer:
    def __init__(self):
        self.spans = []

    def start_span(self, name, start_time=None):
        span = FakeSpan(name, start_time)
        self.spans.append(span)
        return span


SPAN = {"type": "span", "name": "rete.batch_join", "ts": 2.0,
        "dur_us": 1500.0, "depth": 3, "attrs": {"node": "j0", "pairs": 4}}


class TestBridge:
    def test_span_record_becomes_an_otel_span(self):
        tracer = FakeTracer()
        OtelBridgeSink(tracer).emit(SPAN)
        [span] = tracer.spans
        assert span.name == "rete.batch_join"
        assert span.start_time == 2_000_000_000  # ts seconds -> ns
        assert span.end_time == 2_001_500_000  # + dur_us * 1000
        assert span.attributes["node"] == "j0"
        assert span.attributes["depth"] == 3

    def test_event_record_becomes_a_zero_duration_span(self):
        tracer = FakeTracer()
        OtelBridgeSink(tracer).emit(
            {"type": "event", "kind": "cycle", "ts": 1.0, "cycle": 7,
             "rule": None}
        )
        [span] = tracer.spans
        assert span.name == "event.cycle"
        assert span.end_time == span.start_time
        assert span.attributes["cycle"] == 7
        assert "rule" not in span.attributes  # None values dropped
        assert "ts" not in span.attributes

    def test_non_plain_attribute_values_are_stringified(self):
        tracer = FakeTracer()
        record = dict(SPAN, attrs={"node": "j0", "chain": ("a", "b")})
        OtelBridgeSink(tracer).emit(record)
        assert tracer.spans[0].attributes["chain"] == "('a', 'b')"

    def test_other_record_types_are_skipped(self):
        tracer = FakeTracer()
        sink = OtelBridgeSink(tracer)
        sink.emit({"type": "metrics", "counters": {}})
        assert tracer.spans == [] and sink.forwarded == 0

    def test_forwards_a_real_observability_stream(self):
        tracer = FakeTracer()
        obs = Observability(sinks=[OtelBridgeSink(tracer)])
        with obs.span("outer", op="x"):
            with obs.span("inner"):
                pass
        obs.event("fire", cycle=1, detail="r1")
        names = [span.name for span in tracer.spans]
        # Post-order exit: inner closes (and forwards) before outer.
        assert names == ["inner", "outer", "event.fire"]


class TestGatedImport:
    def test_explicit_tracer_skips_the_import(self):
        sink = make_otel_sink(tracer=FakeTracer())
        assert isinstance(sink, OtelBridgeSink)

    def test_absent_distribution_returns_none(self, monkeypatch):
        # A None sys.modules entry makes `import opentelemetry` raise
        # ImportError even if a real distribution were installed.
        monkeypatch.setitem(sys.modules, "opentelemetry", None)
        assert make_otel_sink() is None
