"""The metric-snapshot regression gate (CI)."""

import json

from repro.obs.gate import (
    DEFAULT_BASELINE,
    Violation,
    collect_metrics,
    compare,
    run_gate,
)


class TestCompare:
    BASE = {"ops.comparisons": 100, "engine.wm_size": 6}

    def test_identical_passes(self):
        assert compare(self.BASE, dict(self.BASE)) == []

    def test_within_tolerance_passes(self):
        current = {"ops.comparisons": 108, "engine.wm_size": 6}
        assert compare(self.BASE, current, tolerance=0.10) == []

    def test_growth_beyond_tolerance_fails(self):
        current = {"ops.comparisons": 120, "engine.wm_size": 6}
        violations = compare(self.BASE, current, tolerance=0.10)
        assert [v.metric for v in violations] == ["ops.comparisons"]
        assert "grew" in violations[0].reason

    def test_improvement_passes(self):
        current = {"ops.comparisons": 10, "engine.wm_size": 6}
        assert compare(self.BASE, current, tolerance=0.10) == []

    def test_outcome_gauge_must_match_exactly(self):
        current = {"ops.comparisons": 100, "engine.wm_size": 7}
        violations = compare(self.BASE, current)
        assert [v.metric for v in violations] == ["engine.wm_size"]
        assert "outcome" in violations[0].reason

    def test_missing_metric_fails(self):
        current = {"engine.wm_size": 6}
        violations = compare(self.BASE, current)
        assert [v.metric for v in violations] == ["ops.comparisons"]
        assert "disappeared" in violations[0].reason

    def test_new_metrics_are_ignored_until_baselined(self):
        current = {**self.BASE, "ops.shiny_new": 5}
        assert compare(self.BASE, current) == []

    def test_zero_baseline_growth_fails(self):
        violations = compare({"ops.false_drops": 0}, {"ops.false_drops": 3})
        assert len(violations) == 1


class TestCollect:
    def test_canned_run_is_deterministic(self):
        first = collect_metrics()
        second = collect_metrics()
        assert first == second

    def test_no_wall_clock_metrics_collected(self):
        for name in collect_metrics():
            assert not name.endswith(("_us", "_seconds", "_ms"))

    def test_batched_run_changes_costs_not_outcome(self):
        tuple_run = collect_metrics(batch_size=1)
        batched = collect_metrics(batch_size=8)
        assert batched["engine.wm_size"] == tuple_run["engine.wm_size"]
        assert batched["engine.conflict_set"] == tuple_run["engine.conflict_set"]
        assert batched["engine.fires"] == tuple_run["engine.fires"]


class TestCheckedInBaseline:
    def test_gate_passes_against_checked_in_baseline(self):
        ok, violations, _current = run_gate()
        assert ok, [str(v) for v in violations]

    def test_baseline_file_matches_gate_defaults(self):
        payload = json.loads(open(DEFAULT_BASELINE).read())
        assert payload["program"] == "examples/orders.ops"
        assert payload["strategy"] == "patterns"
        assert payload["backend"] == "sqlite"
        assert payload["metrics"]


class TestRunGate:
    def test_update_then_pass_roundtrip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        ok, violations, current = run_gate(
            baseline_path=str(baseline), update=True
        )
        assert ok and not violations and current
        ok, violations, _ = run_gate(baseline_path=str(baseline))
        assert ok

    def test_tampered_baseline_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        run_gate(baseline_path=str(baseline), update=True)
        payload = json.loads(baseline.read_text())
        # Pretend the past was much cheaper than the present.
        payload["metrics"]["ops.comparisons"] = 1
        baseline.write_text(json.dumps(payload))
        ok, violations, _ = run_gate(baseline_path=str(baseline))
        assert not ok
        assert any(v.metric == "ops.comparisons" for v in violations)

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.obs.gate import main

        baseline = tmp_path / "baseline.json"
        assert main(["--update", "--baseline", str(baseline)]) == 0
        assert main(["--baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text())
        payload["metrics"]["ops.comparisons"] = 1
        baseline.write_text(json.dumps(payload))
        assert main(["--baseline", str(baseline)]) == 1
        assert "FAILED" in capsys.readouterr().err


def test_violation_str_is_informative():
    v = Violation("ops.comparisons", 100, 150, "grew 50.0%")
    text = str(v)
    assert "ops.comparisons" in text and "100" in text and "150" in text


class TestHistogramCounts:
    """Histogram observation counts are gated; timing values are not."""

    def test_collect_includes_histogram_counts(self):
        values = collect_metrics()
        hist_keys = {k for k in values if k.startswith("hist.")}
        assert "hist.engine.cycle_us.count" in hist_keys
        assert all(k.endswith(".count") for k in hist_keys)
        assert all(isinstance(values[k], int) for k in hist_keys)

    def test_histogram_counts_are_deterministic(self):
        first = collect_metrics()
        second = collect_metrics()
        for key in first:
            if key.startswith("hist."):
                assert first[key] == second[key]

    def test_checked_in_baseline_covers_histograms(self):
        payload = json.loads(open(DEFAULT_BASELINE).read())
        assert any(k.startswith("hist.") for k in payload["metrics"])

    def test_dropped_histogram_fails_the_gate(self):
        baseline = collect_metrics()
        current = {
            k: v for k, v in baseline.items()
            if k != "hist.engine.cycle_us.count"
        }
        violations = compare(baseline, current)
        assert any(
            v.metric == "hist.engine.cycle_us.count" for v in violations
        )
