"""Engine X-ray: lineage capture, why-not analysis, network introspection."""

import pytest

from repro.engine import ProductionSystem
from repro.obs import render_support, why_not

JOIN_SOURCE = """
(literalize Emp name dno)
(literalize Dept dno dname)
(p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
"""

NEGATION_SOURCE = """
(literalize Emp name dno)
(literalize Audit dno)
(p unaudited (Emp ^name <N> ^dno <D>) -(Audit ^dno <D>) --> (remove 1))
"""


def system(source, strategy="rete", **kwargs):
    return ProductionSystem(source, strategy=strategy, resolution="fifo",
                            **kwargs)


class TestLineageRecorder:
    def test_off_by_default(self):
        assert system(JOIN_SOURCE).lineage_recorder is None

    def test_records_supporting_wm_tuples(self):
        sys_ = system(JOIN_SOURCE, lineage=True)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))
        [lineage] = sys_.lineage_recorder.for_rule("works-in")
        assert lineage.rule == "works-in"
        assert [slot[0] for slot in lineage.slots] == ["Emp", "Dept"]
        assert lineage.slots[0][3] == ("ann", 7)
        assert lineage.live
        assert lineage.cycle == 0  # entered during setup
        assert lineage.wal_seq is None  # no WAL attached

    def test_negated_slot_is_none(self):
        sys_ = system(NEGATION_SOURCE, lineage=True)
        sys_.insert("Emp", ("ann", 7))
        [lineage] = sys_.lineage_recorder.for_rule("unaudited")
        assert lineage.slots[1] is None
        assert "[Emp#" in lineage.display() and lineage.display().endswith(
            ", -]"
        )

    def test_join_path_is_the_static_chain(self):
        sys_ = system(JOIN_SOURCE, lineage=True)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))
        [lineage] = sys_.lineage_recorder.for_rule("works-in")
        assert len(lineage.path) == 2  # one two-input node per CE
        # The path is a per-rule constant, computed once and cached.
        assert sys_.lineage_recorder.path_of("works-in") is lineage.path

    def test_non_rete_strategies_record_empty_paths(self):
        sys_ = system(JOIN_SOURCE, strategy="patterns", lineage=True)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))
        [lineage] = sys_.lineage_recorder.for_rule("works-in")
        assert lineage.path == ()

    def test_fired_and_retracted_cycles(self):
        sys_ = system(JOIN_SOURCE, lineage=True)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))
        sys_.run()
        [lineage] = sys_.lineage_recorder.for_rule("works-in")
        assert lineage.fired_cycles == [1]
        assert lineage.removed_cycle == 1  # (remove 1) retracts its support
        assert not lineage.live

    def test_backfill_stamps_pre_wal_entries(self):
        sys_ = system(JOIN_SOURCE, lineage=True)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))

        class FakeWal:
            last_seq = 42

        sys_.wm.wal = FakeWal()
        sys_.lineage_recorder.backfill_wal_seq()
        [lineage] = sys_.lineage_recorder.for_rule("works-in")
        assert lineage.wal_seq == 42

    @pytest.mark.parametrize("strategy", ["rete", "rete-shared", "patterns"])
    def test_conflict_sets_identical_with_and_without(self, strategy):
        def keys(**kwargs):
            sys_ = system(NEGATION_SOURCE, strategy=strategy, **kwargs)
            sys_.insert("Emp", ("ann", 7))
            sys_.insert("Emp", ("bob", 8))
            sys_.insert("Audit", (8,))
            return sys_.strategy.conflict_set_keys()

        assert keys(lineage=True) == keys(lineage=False)


class TestRenderSupport:
    def test_chain_facts_bindings_and_path(self):
        sys_ = system(JOIN_SOURCE, lineage=True)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))
        [lineage] = sys_.lineage_recorder.for_rule("works-in")
        text = render_support(
            lineage, conditions=sys_.analyses["works-in"].conditions
        )
        assert "CE1" in text and "CE2" in text
        assert "Emp#" in text and "Dept#" in text
        assert "via " in text
        assert "<N>=ann" in text and "<D>=7" in text

    def test_negated_slot_and_retraction_annotations(self):
        sys_ = system(NEGATION_SOURCE, lineage=True)
        sys_.insert("Emp", ("ann", 7))
        sys_.run()
        [lineage] = sys_.lineage_recorder.for_rule("unaudited")
        text = render_support(lineage)
        assert "negated CE holds" in text
        assert "retracted at cycle" in text
        assert "fired at cycle(s): 1" in text


class TestWhyNot:
    def test_satisfied_rule(self):
        sys_ = system(JOIN_SOURCE)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))
        result = why_not(sys_, "works-in")
        assert result.satisfied
        assert "satisfied" in str(result)

    def test_empty_alpha_memory_blames_the_first_ce(self):
        sys_ = system(JOIN_SOURCE)
        sys_.insert("Dept", (7, "ops"))
        result = why_not(sys_, "works-in")
        assert (result.kind, result.cond_number) == ("alpha", 1)
        assert "Emp" in result.message

    def test_populated_inputs_but_no_join_pair(self):
        sys_ = system(JOIN_SOURCE)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (8, "ops"))
        result = why_not(sys_, "works-in")
        assert (result.kind, result.cond_number) == ("join", 2)
        assert "no pair" in result.message

    def test_negation_names_a_blocking_witness(self):
        sys_ = system(NEGATION_SOURCE)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Audit", (7,))
        result = why_not(sys_, "unaudited")
        assert result.kind == "negation"
        assert result.negated
        assert result.witness and result.witness.startswith("Audit#")
        assert "blocking witness" in str(result)

    def test_non_rete_falls_back_to_the_check_bit_diagnosis(self):
        sys_ = system(JOIN_SOURCE, strategy="patterns")
        sys_.insert("Dept", (7, "ops"))
        result = why_not(sys_, "works-in")
        assert result.kind == "alpha"
        assert result.cond_number == 1

    def test_non_rete_join_combination(self):
        sys_ = system(JOIN_SOURCE, strategy="patterns")
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (8, "ops"))
        result = why_not(sys_, "works-in")
        assert result.kind == "join-combination"


class TestDescribe:
    def test_rete_nodes_edges_rules_counts(self):
        sys_ = system(JOIN_SOURCE)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Dept", (7, "ops"))
        description = sys_.strategy.describe()
        kinds = {node["kind"] for node in description["nodes"]}
        assert {"alpha", "beta", "join", "production"} <= kinds
        assert description["edges"]
        assert "works-in" in description["rules"]
        sizes = {
            node["id"]: node["size"]
            for node in description["nodes"]
            if node["kind"] == "alpha"
        }
        assert sum(sizes.values()) == 2  # both inserted WMEs are visible

    def test_negative_nodes_report_witnesses(self):
        sys_ = system(NEGATION_SOURCE)
        sys_.insert("Emp", ("ann", 7))
        sys_.insert("Audit", (7,))
        description = sys_.strategy.describe()
        negatives = [
            node for node in description["nodes"]
            if node["kind"] == "negative"
        ]
        assert negatives and negatives[0]["witnesses"] >= 1

    def test_to_dot_is_graphviz(self):
        sys_ = system(JOIN_SOURCE)
        dot = sys_.strategy.to_dot()
        assert dot.startswith("digraph")
        assert "->" in dot and dot.rstrip().endswith("}")

    def test_non_rete_describe_reports_stores(self):
        sys_ = system(JOIN_SOURCE, strategy="patterns")
        sys_.insert("Emp", ("ann", 7))
        description = sys_.strategy.describe()
        assert description["strategy"] == "patterns"
