"""Sink tests: ring buffer, console rendering, JSONL file output."""

import io
import json

from repro.obs import (
    CallbackSink,
    ConsoleSink,
    JsonlFileSink,
    Observability,
    RingBufferSink,
    close_sink,
)

SPAN = {"type": "span", "name": "s", "ts": 0.0, "dur_us": 1.5, "depth": 1,
        "attrs": {"op": "insert"}}
EVENT = {"type": "event", "kind": "fire", "cycle": 2, "detail": "r1"}


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        sink = RingBufferSink(capacity=2)
        for i in range(3):
            sink.emit({"type": "event", "kind": "e", "cycle": i})
        assert len(sink) == 2
        assert [r["cycle"] for r in sink.records()] == [1, 2]

    def test_span_and_event_filters(self):
        sink = RingBufferSink()
        sink.emit(SPAN)
        sink.emit(EVENT)
        assert sink.spans() == [SPAN]
        assert sink.spans("other") == []
        assert sink.events("fire") == [EVENT]
        assert sink.events("halt") == []

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit(EVENT)
        sink.clear()
        assert len(sink) == 0


class TestConsole:
    def test_span_line_indented_by_depth(self):
        stream = io.StringIO()
        ConsoleSink(stream).emit(SPAN)
        assert stream.getvalue() == "  s 1.5us [op=insert]\n"

    def test_event_line(self):
        stream = io.StringIO()
        ConsoleSink(stream).emit(EVENT)
        assert stream.getvalue() == "* fire cycle=2 r1\n"


class TestJsonlFile:
    def test_writes_valid_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(path))
        sink.emit(SPAN)
        sink.emit(EVENT)
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["span", "event"]

    def test_stringifies_live_objects(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(path))
        sink.emit({"type": "event", "kind": "insert", "detail": object()})
        sink.close()
        json.loads(path.read_text())  # must not raise

    def test_close_without_emit(self, tmp_path):
        JsonlFileSink(str(tmp_path / "never.jsonl")).close()


class TestHelpers:
    def test_callback_sink(self):
        seen = []
        CallbackSink(seen.append).emit(EVENT)
        assert seen == [EVENT]

    def test_close_sink_tolerates_closeless_sinks(self):
        close_sink(RingBufferSink())  # no close() — must not raise

    def test_observability_close_closes_file_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlFileSink(str(path))
        obs = Observability(sinks=[sink])
        obs.event("fire", cycle=1)
        obs.close()
        assert sink._handle is None
        assert path.exists()
