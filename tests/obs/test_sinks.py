"""Sink tests: ring buffer, console rendering, JSONL file output."""

import io
import json

from repro.obs import (
    CallbackSink,
    ConsoleSink,
    JsonlFileSink,
    Observability,
    RingBufferSink,
    close_sink,
)

SPAN = {"type": "span", "name": "s", "ts": 0.0, "dur_us": 1.5, "depth": 1,
        "attrs": {"op": "insert"}}
EVENT = {"type": "event", "kind": "fire", "cycle": 2, "detail": "r1"}


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        sink = RingBufferSink(capacity=2)
        for i in range(3):
            sink.emit({"type": "event", "kind": "e", "cycle": i})
        assert len(sink) == 2
        assert [r["cycle"] for r in sink.records()] == [1, 2]

    def test_span_and_event_filters(self):
        sink = RingBufferSink()
        sink.emit(SPAN)
        sink.emit(EVENT)
        assert sink.spans() == [SPAN]
        assert sink.spans("other") == []
        assert sink.events("fire") == [EVENT]
        assert sink.events("halt") == []

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit(EVENT)
        sink.clear()
        assert len(sink) == 0


class TestConsole:
    def test_span_line_indented_by_depth(self):
        stream = io.StringIO()
        ConsoleSink(stream).emit(SPAN)
        assert stream.getvalue() == "  s 1.5us [op=insert]\n"

    def test_event_line(self):
        stream = io.StringIO()
        ConsoleSink(stream).emit(EVENT)
        assert stream.getvalue() == "* fire cycle=2 r1\n"


class TestJsonlFile:
    def test_writes_valid_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(path))
        sink.emit(SPAN)
        sink.emit(EVENT)
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["span", "event"]

    def test_stringifies_live_objects(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(path))
        sink.emit({"type": "event", "kind": "insert", "detail": object()})
        sink.close()
        json.loads(path.read_text())  # must not raise

    def test_close_without_emit(self, tmp_path):
        JsonlFileSink(str(tmp_path / "never.jsonl")).close()


class TestHelpers:
    def test_callback_sink(self):
        seen = []
        CallbackSink(seen.append).emit(EVENT)
        assert seen == [EVENT]

    def test_close_sink_tolerates_closeless_sinks(self):
        close_sink(RingBufferSink())  # no close() — must not raise

    def test_observability_close_closes_file_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlFileSink(str(path))
        obs = Observability(sinks=[sink])
        obs.event("fire", cycle=1)
        obs.close()
        assert sink._handle is None
        assert path.exists()


class TestRotation:
    def fill(self, sink, count):
        for i in range(count):
            sink.emit({"type": "event", "kind": "e", "cycle": i})
        sink.close()

    def backups(self, path):
        return sorted(
            p.name for p in path.parent.glob(path.name + ".*")
        )

    def test_disabled_by_default(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.fill(JsonlFileSink(str(path)), 50)
        assert self.backups(path) == []
        assert len(path.read_text().splitlines()) == 50

    def test_rotates_when_the_size_would_be_exceeded(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.fill(JsonlFileSink(str(path), rotate_bytes=100), 10)
        assert "trace.jsonl.1" in self.backups(path)
        # The live file stays under the cap (records are never split
        # across files, so a single oversized record may exceed it).
        assert path.stat().st_size <= 100

    def test_keep_bounds_the_backup_count(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.fill(JsonlFileSink(str(path), rotate_bytes=50, keep=2), 30)
        assert self.backups(path) == ["trace.jsonl.1", "trace.jsonl.2"]

    def test_keep_zero_discards_rotated_segments(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.fill(JsonlFileSink(str(path), rotate_bytes=50, keep=0), 30)
        assert self.backups(path) == []
        assert path.exists()

    def test_every_segment_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.fill(JsonlFileSink(str(path), rotate_bytes=120, keep=5), 40)
        cycles = []
        for segment in [path] + [
            path.parent / name for name in self.backups(path)
        ]:
            for line in segment.read_text().splitlines():
                cycles.append(json.loads(line)["cycle"])  # must parse
        # Newest records survive; the oldest fell off the keep window.
        assert max(cycles) == 39
        assert sorted(cycles) == list(range(min(cycles), 40))

    def test_rotation_shifts_older_segments_down(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(path), rotate_bytes=60, keep=3)
        self.fill(sink, 6)
        newest_backup = json.loads(
            (tmp_path / "trace.jsonl.1").read_text().splitlines()[-1]
        )
        oldest_backup = json.loads(
            (tmp_path / ("trace.jsonl." + self.backups(path)[-1][-1]))
            .read_text().splitlines()[0]
        )
        assert newest_backup["cycle"] > oldest_backup["cycle"]

    def test_append_counts_existing_bytes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("x" * 90 + "\n")
        sink = JsonlFileSink(str(path), rotate_bytes=100)
        sink.emit({"type": "event", "kind": "e", "cycle": 0})
        sink.close()
        # The pre-existing 91 bytes forced a rotation before the write.
        assert (tmp_path / "trace.jsonl.1").read_text().startswith("x")
