"""Metrics registry tests: counters, gauges, histograms, snapshots."""

import json

import pytest

from repro.instrument import Counters
from repro.obs import MetricsRegistry
from repro.obs.metrics import Histogram


class TestCounterAndGauge:
    def test_counter_memoized_and_increments(self):
        registry = MetricsRegistry()
        registry.counter("engine.fires").inc()
        registry.counter("engine.fires").inc(4)
        assert registry.counter("engine.fires").value == 5

    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("wm_size").set(10)
        registry.gauge("wm_size").set(7)
        assert registry.gauge("wm_size").value == 7


class TestHistogram:
    def test_bucketing_is_upper_inclusive(self):
        hist = Histogram("h", (1, 10, 100))
        for value in (0.5, 1, 5, 10, 99, 1000):
            hist.observe(value)
        d = hist.as_dict()
        assert d["buckets"]["1.0"] == 2      # 0.5 and 1
        assert d["buckets"]["10.0"] == 2     # 5 and 10
        assert d["buckets"]["100.0"] == 1    # 99
        assert d["buckets"]["+Inf"] == 1     # 1000

    def test_summary_stats(self):
        hist = Histogram("h", (10,))
        hist.observe(2)
        hist.observe(8)
        assert hist.count == 2
        assert hist.total == 10
        assert hist.min == 2
        assert hist.max == 8
        assert hist.mean == 5

    def test_empty_histogram(self):
        hist = Histogram("h", (1,))
        assert hist.mean == 0.0
        assert hist.as_dict()["min"] is None

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (10, 1))


class TestRegistry:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(42)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c"] == 1
        assert parsed["gauges"]["g"] == 1.5
        assert parsed["histograms"]["h"]["count"] == 1

    def test_absorb_counters_mirrors_as_gauges(self):
        registry = MetricsRegistry()
        counters = Counters(comparisons=9, false_drops=2)
        registry.absorb_counters(counters)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["ops.comparisons"] == 9
        assert snapshot["gauges"]["ops.false_drops"] == 2

    def test_histogram_buckets_fixed_on_first_use(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=(1, 2))
        second = registry.histogram("h", buckets=(5, 6))
        assert second is first
        assert first.buckets == (1.0, 2.0)
