"""Log2 histograms, percentile estimation, and the snapshot round-trip."""

import json

from repro.obs import (
    LOG2_BUCKET_COUNT,
    JsonlFileSink,
    Log2Histogram,
    MetricsRegistry,
    SNAPSHOT_PERCENTILES,
    log2_buckets,
    percentile_from_buckets,
)
from repro.obs.manifest import RunManifest
from repro.obs.metrics import Histogram


class TestBuckets:
    def test_bounds_are_powers_of_two(self):
        assert log2_buckets(5) == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_default_count(self):
        bounds = log2_buckets()
        assert len(bounds) == LOG2_BUCKET_COUNT
        assert bounds[-1] == float(2 ** (LOG2_BUCKET_COUNT - 1))


class TestObserve:
    def bucket_of(self, value):
        hist = Log2Histogram("t")
        hist.observe(value)
        return hist.counts.index(1)

    def test_sub_microsecond_lands_in_first_bucket(self):
        assert self.bucket_of(0.25) == 0
        assert self.bucket_of(1.0) == 0

    def test_exact_power_of_two_is_upper_inclusive(self):
        # Bucket i covers (2**(i-1), 2**i]: 4 belongs to bucket 2, not 3.
        assert self.bucket_of(4) == 2
        assert self.bucket_of(4.0) == 2

    def test_between_powers_rounds_up(self):
        assert self.bucket_of(3) == 2       # (2, 4]
        assert self.bucket_of(4.5) == 3     # (4, 8]
        assert self.bucket_of(5) == 3

    def test_huge_value_lands_in_overflow(self):
        hist = Log2Histogram("t")
        hist.observe(float(2 ** 40))
        assert hist.counts[-1] == 1

    def test_matches_linear_scan_of_same_bounds(self):
        log2 = Log2Histogram("fast")
        scan = Histogram("slow", log2_buckets())
        for value in (0.1, 1, 1.5, 2, 3, 4, 4.5, 100, 1e9):
            log2.observe(value)
            scan.observe(value)
        assert log2.counts == scan.counts

    def test_bookkeeping(self):
        hist = Log2Histogram("t")
        for value in (2.0, 8.0):
            hist.observe(value)
        assert hist.count == 2
        assert hist.total == 10.0
        assert (hist.min, hist.max) == (2.0, 8.0)
        assert hist.mean == 5.0


class TestPercentile:
    def test_empty_histogram_reports_zero(self):
        assert Log2Histogram("t").percentile(0.99) == 0.0
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 0], 0, 0.5) == 0.0

    def test_interpolates_inside_the_bucket(self):
        hist = Log2Histogram("t")
        for _ in range(100):
            hist.observe(3)  # all in (2, 4]
        # Median rank is halfway through the bucket: 2 + (4-2) * 0.5.
        assert hist.percentile(0.50) == 3.0
        assert hist.percentile(1.0) == 4.0

    def test_ranks_split_across_buckets(self):
        hist = Log2Histogram("t")
        for _ in range(90):
            hist.observe(1.0)
        for _ in range(10):
            hist.observe(1000.0)
        assert hist.percentile(0.50) <= 1.0
        assert hist.percentile(0.99) > 512.0

    def test_overflow_rank_reports_max_value(self):
        bounds = (1.0, 2.0)
        assert percentile_from_buckets(
            bounds, [0, 0, 5], 5, 0.99, max_value=77.0
        ) == 77.0
        # Without a known max, the last finite bound is the estimate.
        assert percentile_from_buckets(bounds, [0, 0, 5], 5, 0.99) == 2.0


class TestRegistry:
    def test_log2_histogram_created_on_first_use(self):
        registry = MetricsRegistry()
        hist = registry.log2_histogram("engine.cycle_us")
        assert isinstance(hist, Log2Histogram)
        assert registry.log2_histogram("engine.cycle_us") is hist

    def test_snapshot_carries_percentiles(self):
        registry = MetricsRegistry()
        registry.log2_histogram("x_us").observe(3.0)
        summary = registry.snapshot()["histograms"]["x_us"]
        assert set(summary["percentiles"]) == {
            f"p{int(q * 100)}" for q in SNAPSHOT_PERCENTILES
        }


def reconstructed_percentile(summary, q):
    """Re-estimate a quantile from a JSON histogram snapshot."""
    labels = list(summary["buckets"])
    bounds = tuple(float(label) for label in labels if label != "+Inf")
    counts = [summary["buckets"][label] for label in labels]
    return percentile_from_buckets(
        bounds, counts, summary["count"], q, max_value=summary["max"]
    )


class TestRoundTrip:
    """The satellite-4 drift pin: p99 survives sinks and manifests."""

    def observed_registry(self):
        registry = MetricsRegistry()
        hist = registry.log2_histogram("engine.cycle_us")
        for value in (1, 3, 3, 5, 9, 17, 900, 1500, 40000):
            hist.observe(value)
        return registry, hist

    def test_p99_survives_a_jsonl_sink(self, tmp_path):
        registry, hist = self.observed_registry()
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(path))
        sink.emit({"type": "metrics", **registry.snapshot()})
        sink.close()
        record = json.loads(path.read_text())
        summary = record["histograms"]["engine.cycle_us"]
        for q in SNAPSHOT_PERCENTILES:
            assert reconstructed_percentile(summary, q) == hist.percentile(q)
            assert summary["percentiles"][f"p{int(q * 100)}"] == \
                hist.percentile(q)

    def test_p99_survives_the_manifest(self, tmp_path):
        registry, hist = self.observed_registry()
        manifest = RunManifest(metrics=registry.snapshot())
        path = manifest.write(base_dir=str(tmp_path))
        payload = json.loads(open(path).read())
        latency = payload["latency"]["engine.cycle_us"]
        assert latency["count"] == hist.count
        assert latency["p99_us"] == hist.percentile(0.99)
        assert latency["p50_us"] == hist.percentile(0.50)
