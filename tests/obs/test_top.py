"""TopAggregator: folding trace streams into the live dashboard."""

import json

from repro.obs import TopAggregator, render_top


def cycle_event(n, ts, dur_us, fires=1, **extra):
    return {"type": "event", "kind": "cycle", "cycle": n, "ts": ts,
            "dur_us": dur_us, "fires": fires, "conflict_set": 2, **extra}


def join_span(node, dur_us, pairs=4):
    return {"type": "span", "name": "rete.batch_join", "ts": 0.0,
            "dur_us": dur_us, "depth": 3,
            "attrs": {"node": node, "pairs": pairs}}


def fsync_span(dur_us):
    return {"type": "span", "name": "recovery.fsync", "ts": 0.0,
            "dur_us": dur_us, "depth": 2, "attrs": {}}


class TestFeed:
    def test_cycle_events_accumulate(self):
        top = TopAggregator()
        for n in range(3):
            top.feed(cycle_event(n, ts=float(n), dur_us=100.0, fires=2))
        assert top.total_cycles == 3
        assert top.total_fires == 6
        assert top.cycle_hist.count == 3
        assert top.last_cycle["cycle"] == 2

    def test_throughput_from_wall_clock_spacing(self):
        top = TopAggregator()
        top.feed(cycle_event(0, ts=10.0, dur_us=50.0))
        top.feed(cycle_event(1, ts=10.5, dur_us=50.0))
        assert top.cycles_per_second() == 2.0

    def test_throughput_needs_two_cycles(self):
        top = TopAggregator()
        assert top.cycles_per_second() == 0.0
        top.feed(cycle_event(0, ts=1.0, dur_us=50.0))
        assert top.cycles_per_second() == 0.0

    def test_window_bounds_the_throughput_sample(self):
        top = TopAggregator(window=2)
        for n in range(10):
            top.feed(cycle_event(n, ts=float(n), dur_us=10.0))
        assert len(top._recent) == 2
        assert top.total_cycles == 10  # totals are not windowed

    def test_join_spans_heat_nodes(self):
        top = TopAggregator()
        top.feed(join_span("j0", 5.0, pairs=10))
        top.feed(join_span("j0", 7.0, pairs=2))
        top.feed(join_span("neg0", 1.0))
        assert top.node_heat["j0"] == {"probes": 2, "pairs": 12, "us": 12.0}
        assert [node for node, _ in top.hottest_nodes()] == ["j0", "neg0"]

    def test_fsync_spans_feed_the_wal_histogram(self):
        top = TopAggregator()
        top.feed(fsync_span(200.0))
        assert top.fsync_hist.count == 1

    def test_wal_lag_from_the_last_cycle(self):
        top = TopAggregator()
        assert top.wal_lag() is None
        top.feed(cycle_event(0, ts=0.0, dur_us=10.0, wal_seq=9,
                             wal_pending=3))
        assert top.wal_lag() == 3


class TestTolerance:
    """Traces from newer schemas must be skipped, never crash."""

    def test_unknown_records_are_ignored(self):
        top = TopAggregator()
        top.feed({"type": "metrics", "counters": {}})
        top.feed({"type": "hologram", "v": 9})
        top.feed("not a dict")
        top.feed(None)
        assert top.total_cycles == 0

    def test_cycle_event_with_futuristic_fields(self):
        top = TopAggregator()
        top.feed({"type": "event", "kind": "cycle", "fires": "many",
                  "dur_us": "fast", "shards": [1, 2]})
        assert top.total_cycles == 1  # counted
        assert top.total_fires == 0  # non-int fires skipped
        assert top.cycle_hist.count == 0  # non-numeric duration skipped

    def test_feed_line_skips_garbage(self):
        top = TopAggregator()
        top.feed_line("{not json")
        top.feed_line("")
        top.feed_line("   \n")
        top.feed_line('[1, 2, 3]')  # valid JSON, wrong shape
        top.feed_line(json.dumps(cycle_event(0, ts=0.0, dur_us=10.0)))
        assert top.total_cycles == 1


class TestSnapshotAndRender:
    def loaded(self):
        top = TopAggregator()
        for n in range(4):
            top.feed(cycle_event(n, ts=float(n) / 10, dur_us=100.0,
                                 wal_seq=5 + n, wal_pending=1))
        top.feed(join_span("j0", 5.0))
        top.feed(fsync_span(300.0))
        return top

    def test_snapshot_is_json_ready(self):
        snap = self.loaded().snapshot()
        json.dumps(snap)  # must not raise
        assert snap["cycles"] == 4
        assert snap["cycle_us"]["p99"] > 0
        assert snap["wal_seq"] == 8
        assert snap["wal_pending"] == 1
        assert snap["hot_nodes"][0]["node"] == "j0"

    def test_render_contains_the_headline_figures(self):
        text = render_top(self.loaded())
        assert "repro top" in text
        assert "cycles 4" in text
        assert "p99" in text
        assert "wal" in text and "seq 8" in text
        assert "hottest join nodes" in text and "j0" in text

    def test_render_of_an_empty_aggregator(self):
        text = render_top(TopAggregator())
        assert "cycles 0" in text
        assert "wal" not in text  # no WAL figures without a wal_seq
