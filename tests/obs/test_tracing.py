"""Span tracer tests: nesting, attributes, ambient context, disabled path."""

from repro.obs import NULL_SPAN, Observability, RingBufferSink
from repro.obs.tracing import Tracer


class TestDisabled:
    def test_span_without_sinks_is_null(self):
        obs = Observability()
        assert obs.span("anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set("k", 1)
            span.add("n")

    def test_metrics_only_mode_still_null_spans(self):
        obs = Observability(collect_metrics=True)
        assert obs.enabled
        assert obs.span("x") is NULL_SPAN

    def test_disabled_by_default(self):
        assert not Observability().enabled


class TestSpans:
    def test_span_emitted_on_exit_with_duration(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        with obs.span("work", op="insert"):
            pass
        [record] = sink.records()
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["dur_us"] >= 0
        assert record["attrs"] == {"op": "insert"}

    def test_nesting_depth_and_postorder(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        names = [r["name"] for r in sink.spans()]
        assert names == ["inner", "outer"]  # child emitted first
        depths = {r["name"]: r["depth"] for r in sink.spans()}
        assert depths == {"outer": 0, "inner": 1}

    def test_set_and_add(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        with obs.span("s") as span:
            span.set("rule", "r1")
            span.add("hits")
            span.add("hits", 2)
        [record] = sink.spans("s")
        assert record["attrs"] == {"rule": "r1", "hits": 3}

    def test_ambient_context_merged_and_overridable(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        tracer.set_context(rule="firing-rule", phase="act")
        with tracer.span("match.work", phase="match"):
            pass
        tracer.clear_context("rule")
        with tracer.span("later"):
            pass
        first, second = sink.spans()
        assert first["attrs"]["rule"] == "firing-rule"
        assert first["attrs"]["phase"] == "match"  # explicit attr wins
        assert "rule" not in second["attrs"]

    def test_clear_context_without_keys_drops_all(self):
        tracer = Tracer([RingBufferSink()])
        tracer.set_context(a=1, b=2)
        tracer.clear_context()
        assert tracer.context == {}


class TestEvents:
    def test_event_reaches_every_sink(self):
        a, b = RingBufferSink(), RingBufferSink()
        obs = Observability(sinks=[a, b])
        obs.event("fire", cycle=3, detail="r1")
        for sink in (a, b):
            [record] = sink.events("fire")
            assert record["cycle"] == 3
            assert record["detail"] == "r1"

    def test_event_extra_fields(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        obs.event("lock_wait", txn=4, mode="X")
        [record] = sink.events("lock_wait")
        assert record["txn"] == 4
        assert record["mode"] == "X"

    def test_event_without_sinks_is_noop(self):
        Observability().event("fire", cycle=1)  # must not raise


class TestSinkManagement:
    def test_add_sink_enables_tracing(self):
        obs = Observability()
        assert not obs.tracer.enabled
        obs.add_sink(RingBufferSink())
        assert obs.tracer.enabled
        assert obs.enabled

    def test_remove_sink_disables_again(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink])
        obs.remove_sink(sink)
        assert not obs.enabled
        assert obs.span("x") is NULL_SPAN
