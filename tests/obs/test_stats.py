"""PhaseStatsSink tests: folding spans into the per-rule phase table."""

from repro.engine import ProductionSystem
from repro.obs import Observability, PhaseStatsSink
from repro.obs.stats import RULE_INIT, RULE_QUIESCENT

SOURCE = """
(literalize T v)
(literalize Log v)
(p step (T ^v <V>) --> (remove 1) (make Log ^v <V>))
"""


def span(name, dur_us, **attrs):
    return {"type": "span", "name": name, "ts": 0.0, "dur_us": dur_us,
            "depth": 0, "attrs": attrs}


class TestFolding:
    def test_match_without_rule_lands_in_init(self):
        sink = PhaseStatsSink()
        sink.emit(span("match.pattern_propagation", 5.0))
        [row] = sink.table_rows()
        assert row["rule"] == RULE_INIT
        assert row["match_us"] == 5.0

    def test_idle_select_lands_in_quiescent(self):
        sink = PhaseStatsSink()
        sink.emit(span("select", 2.0, rule="(none)"))
        [row] = sink.table_rows()
        assert row["rule"] == RULE_QUIESCENT
        assert row["select_us"] == 2.0

    def test_act_excludes_nested_match_time(self):
        sink = PhaseStatsSink()
        sink.emit(span("match.join_recompute", 30.0, rule="r"))
        sink.emit(span("act", 100.0, rule="r", fires=1))
        [row] = sink.table_rows()
        assert row["match_us"] == 30.0
        assert row["act_us"] == 70.0
        assert row["total_us"] == 100.0

    def test_act_never_negative(self):
        sink = PhaseStatsSink()
        sink.emit(span("match.work", 50.0, rule="r"))
        sink.emit(span("act", 10.0, rule="r"))
        [row] = sink.table_rows()
        assert row["act_us"] == 0.0

    def test_non_phase_records_ignored(self):
        sink = PhaseStatsSink()
        sink.emit(span("storage.sql", 1.0))
        sink.emit({"type": "event", "kind": "fire", "cycle": 1})
        assert sink.table_rows() == []

    def test_rows_sorted_by_total_desc(self):
        sink = PhaseStatsSink()
        sink.emit(span("select", 1.0, rule="cheap"))
        sink.emit(span("select", 9.0, rule="dear"))
        assert [r["rule"] for r in sink.table_rows()] == ["dear", "cheap"]


class TestAgainstEngine:
    def test_run_produces_rule_rows_and_totals(self):
        sink = PhaseStatsSink()
        obs = Observability(sinks=[sink])
        system = ProductionSystem(SOURCE, resolution="fifo", obs=obs)
        system.insert("T", (1,))
        system.run()
        rows = {r["rule"]: r for r in sink.table_rows()}
        assert "step" in rows
        assert rows["step"]["fires"] == 1
        assert rows["step"]["total_us"] > 0
        totals = sink.totals()
        assert totals["fires"] == 1
        assert totals["total_us"] >= rows["step"]["total_us"]


class TestSchemaTolerance:
    """Newer-schema trace records must be skipped, never crash the fold."""

    def test_span_without_duration_is_skipped(self):
        sink = PhaseStatsSink()
        sink.emit({"type": "span", "name": "act", "attrs": {"rule": "r"}})
        assert sink.table_rows() == []

    def test_non_string_name_is_skipped(self):
        sink = PhaseStatsSink()
        sink.emit({"type": "span", "name": 7, "dur_us": 5.0, "attrs": {}})
        assert sink.table_rows() == []

    def test_futuristic_record_shapes_are_skipped(self):
        sink = PhaseStatsSink()
        sink.emit({"type": "span", "name": "select", "dur_us": "quick",
                   "rule": "r"})
        sink.emit({"type": "quantum_trace", "dur_us": 5.0})
        sink.emit({"type": "span"})
        assert sink.table_rows() == []

    def test_known_spans_still_fold_amid_unknown_records(self):
        sink = PhaseStatsSink()
        sink.emit({"type": "span", "name": "select", "shards": [1, 2]})
        sink.emit(span("select", 2.0, rule="r"))
        [row] = sink.table_rows()
        assert row["select_us"] == 2.0
