"""End-to-end wiring: engine, storage and txn layers feed one bus."""

from repro.engine import ProductionSystem
from repro.obs import Observability, RingBufferSink
from repro.txn import ConcurrentScheduler
from repro.workload.programs import contended_rules_program

SOURCE = """
(literalize T v)
(literalize Log v)
(p step (T ^v <V>) --> (remove 1) (make Log ^v <V>))
"""


def build(source=SOURCE, **kwargs):
    sink = RingBufferSink()
    obs = Observability(sinks=[sink], collect_metrics=True)
    system = ProductionSystem(source, resolution="fifo", obs=obs, **kwargs)
    return system, sink, obs


class TestEngineSpans:
    def test_cycle_phases_traced(self):
        system, sink, _ = build()
        system.insert("T", (1,))
        system.run()
        assert sink.spans("select")
        [act] = sink.spans("act")
        assert act["attrs"]["rule"] == "step"

    def test_match_work_attributed_to_firing_rule(self):
        system, sink, _ = build()
        system.insert("T", (1,))
        system.run()
        match_spans = [s for s in sink.spans() if s["name"].startswith("match.")]
        assert match_spans
        # the RHS (make Log ...) triggers match work inside step's act span
        assert any(s["attrs"].get("rule") == "step" for s in match_spans)
        # the initial insert has no firing rule
        assert any("rule" not in s["attrs"] for s in match_spans)

    def test_engine_metrics_collected(self):
        system, _, obs = build()
        system.insert("T", (1,))
        system.run()
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["engine.fires"] == 1
        assert snapshot["counters"]["engine.cycles"] >= 1
        assert snapshot["histograms"]["engine.cycle_us"]["count"] >= 1

    def test_snapshot_metrics_includes_ops_and_space(self):
        system, _, _ = build()
        system.insert("T", (1,))
        system.run()
        snapshot = system.snapshot_metrics()
        assert "ops.comparisons" in snapshot["gauges"]
        assert "engine.wm_size" in snapshot["gauges"]
        assert "match.stored_patterns" in snapshot["gauges"]


class TestTraceCompat:
    def test_classic_tracer_rides_the_bus_with_other_sinks(self):
        system, sink, _ = build()
        events = []
        system.add_trace(events.append)
        system.insert("T", (1,))
        assert [e.kind for e in events] == ["insert"]
        assert sink.events("insert")


class TestStorageSpans:
    def test_sqlite_statements_traced(self):
        system, sink, obs = build(backend="sqlite")
        system.insert("T", (1,))
        system.run()
        spans = sink.spans("storage.sql")
        assert spans
        assert {s["attrs"]["verb"] for s in spans} & {"INSERT", "SELECT", "DELETE"}
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["storage.sql_statements"] == len(spans)

    def test_memory_backend_emits_no_sql_spans(self):
        system, sink, _ = build()
        system.insert("T", (1,))
        assert sink.spans("storage.sql") == []


class TestTxnSpans:
    def test_round_and_commit_spans(self):
        system, sink, obs = build(contended_rules_program(3))
        system.insert("Shared", {"x": 0})
        for i in range(3):
            system.insert(f"T{i}", {"x": i})
        result = ConcurrentScheduler(system).run()
        assert result.committed > 0
        rounds = sink.spans("txn.round")
        assert len(rounds) == len(result.rounds)
        assert rounds[0]["attrs"]["committed"] == result.rounds[0].committed
        commits = sink.spans("txn.commit")
        assert len(commits) >= result.committed
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["txn.commits"] == result.committed
        assert snapshot["histograms"]["txn.makespan_ticks"]["count"] == len(
            result.rounds
        )

    def test_lock_waits_mirrored_as_events(self):
        system, sink, obs = build(contended_rules_program(4))
        system.insert("Shared", {"x": 0})
        for i in range(4):
            system.insert(f"T{i}", {"x": i})
        ConcurrentScheduler(system).run()
        waits = sink.events("lock_wait")
        assert len(waits) == system.counters.lock_waits
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"].get("txn.lock_waits", 0) == len(waits)
        if waits:
            assert {"txn", "rule", "target", "mode"} <= set(waits[0])
