"""The maintenance scripts under ``tools/``: gate refresh, bench smoke."""

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestUpdateGateBaseline:
    def test_creates_a_missing_baseline(self, tmp_path, capsys):
        tool = load_tool("update_gate_baseline")
        baseline = tmp_path / "baseline.json"
        assert tool.main(["--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "creating one" in out and "baseline updated" in out
        payload = json.loads(baseline.read_text())
        assert any(k.startswith("hist.") for k in payload["metrics"])

    def test_dry_run_does_not_write(self, tmp_path, capsys):
        tool = load_tool("update_gate_baseline")
        baseline = tmp_path / "baseline.json"
        assert tool.main(["--dry-run", "--baseline", str(baseline)]) == 0
        assert not baseline.exists()

    def test_banked_drift_is_printed(self, tmp_path, capsys):
        from repro.obs.gate import run_gate

        tool = load_tool("update_gate_baseline")
        baseline = tmp_path / "baseline.json"
        run_gate(baseline_path=str(baseline), update=True)
        payload = json.loads(baseline.read_text())
        payload["metrics"]["ops.comparisons"] = 1  # pretend it regressed
        baseline.write_text(json.dumps(payload))
        assert tool.main(["--baseline", str(baseline)]) == 0
        assert "banking:" in capsys.readouterr().out
        ok, _, _ = run_gate(baseline_path=str(baseline))
        assert ok  # the refreshed baseline passes again


class TestBenchSmokeCompare:
    BASE = {"gate": {"a5[rete/batch=1].comparisons": 100,
                     "a6[wal].fsyncs": 10}}

    def current(self, **overrides):
        gate = dict(self.BASE["gate"], **overrides)
        return {"gate": gate}

    def test_identical_passes(self):
        tool = load_tool("bench_smoke")
        assert tool.compare(self.BASE, self.current(), 0.20) == []

    def test_growth_within_tolerance_passes(self):
        tool = load_tool("bench_smoke")
        current = self.current(**{"a5[rete/batch=1].comparisons": 115})
        assert tool.compare(self.BASE, current, 0.20) == []

    def test_growth_beyond_tolerance_fails(self):
        tool = load_tool("bench_smoke")
        current = self.current(**{"a5[rete/batch=1].comparisons": 150})
        [failure] = tool.compare(self.BASE, current, 0.20)
        assert "grew 50.0%" in failure

    def test_improvement_passes(self):
        tool = load_tool("bench_smoke")
        current = self.current(**{"a5[rete/batch=1].comparisons": 10})
        assert tool.compare(self.BASE, current, 0.20) == []

    def test_disappeared_count_fails(self):
        tool = load_tool("bench_smoke")
        current = {"gate": {"a6[wal].fsyncs": 10}}
        [failure] = tool.compare(self.BASE, current, 0.20)
        assert "disappeared" in failure


class TestBenchSmokeEndToEnd:
    def test_artifact_then_gate_roundtrip(self, tmp_path, capsys):
        tool = load_tool("bench_smoke")
        out = tmp_path / "BENCH_obs.json"
        argv = ["--out", str(out), "--stream-length", "24", "--cycles", "12"]
        assert tool.main(argv) == 0
        payload = json.loads(out.read_text())
        assert payload["gate"] and payload["a5"]["rows"]
        assert all(
            isinstance(v, (int, float)) for v in payload["gate"].values()
        )
        # Second night: gate against the first artifact.
        assert tool.main(argv + ["--baseline", str(out)]) == 0
        assert "gate passed" in capsys.readouterr().out
