"""Shared fixtures: the paper's example programs as parse-ready sources.

The sources themselves live in :mod:`repro.workload.programs` so library
users get them too; the fixtures just re-export them for tests.
"""

import pytest

from repro.workload.programs import (
    EXAMPLE2_SOURCE,
    EXAMPLE3_SOURCE,
    EXAMPLE4_SOURCE,
)


@pytest.fixture
def example2_source():
    """Example 2 (§3.1): PlusOX/TimesOX algebraic simplification."""
    return EXAMPLE2_SOURCE


@pytest.fixture
def example3_source():
    """Example 3 (§3.2): the employee deletion rules R1/R2."""
    return EXAMPLE3_SOURCE


@pytest.fixture
def example4_source():
    """Example 4 (§4.2.1): the cyclic three-way join Rule-1."""
    return EXAMPLE4_SOURCE
