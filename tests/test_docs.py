"""The documentation consistency checker stays green.

Runs ``tools/check_docs.py`` (the CI docs job) in-process: every
intra-repo markdown link resolves, every ``repro.*`` dotted code
reference imports, every path-like reference exists, every CLI flag
mentioned in ``docs/*.md``/``README.md`` (inline or in fenced command
blocks) is declared under ``src/`` or ``tools/``, and every file under
``docs/`` is cross-linked from some other markdown file.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_docs.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_are_consistent():
    result = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_architecture_doc_exists_and_is_checked():
    checker = load_checker()
    names = {path.name for path in checker.tracked_markdown()}
    assert "ARCHITECTURE.md" in names
    assert "ALGORITHMS.md" in names
    assert "OBSERVABILITY.md" in names


def test_checker_catches_broken_link(tmp_path):
    checker = load_checker()
    problems = []
    doc = REPO / "docs" / "ARCHITECTURE.md"
    checker.check_links(doc, "[x](no-such-file.md)", problems, set())
    assert problems and "broken link" in problems[0]


def test_checker_records_cross_links():
    checker = load_checker()
    problems, linked = [], set()
    doc = REPO / "docs" / "ARCHITECTURE.md"
    checker.check_links(doc, "[p](PARALLELISM.md)", problems, linked)
    assert not problems
    assert (REPO / "docs" / "PARALLELISM.md").resolve() in linked
    # Backtick file references count as reachability too.
    checker.check_code_refs(doc, "`docs/RECOVERY.md`", "", problems, linked)
    assert not problems
    assert (REPO / "docs" / "RECOVERY.md").resolve() in linked


def test_checker_catches_unknown_flag_in_fenced_block():
    checker = load_checker()
    problems = []
    doc = REPO / "docs" / "ARCHITECTURE.md"
    text = "```bash\npython -m repro.cli run x.ops --no-such-flag\n```\n"
    checker.check_code_refs(doc, text, "", problems, set())
    assert problems and "--no-such-flag" in problems[0]
    # Known external flags stay exempt wherever they appear.
    problems = []
    text = "```sh\npytest benchmarks/ --benchmark-only\n```\n"
    checker.check_code_refs(doc, text, "", problems, set())
    assert not problems


def test_checker_catches_bad_code_ref():
    checker = load_checker()
    problems = []
    doc = REPO / "docs" / "ARCHITECTURE.md"
    checker.check_dotted(doc, "repro.match.base.NoSuchThing", problems)
    assert problems and "NoSuchThing" in problems[0]
    problems = []
    checker.check_dotted(doc, "repro.no_such_module.Thing", problems)
    assert problems and "no_such_module" in problems[0]
