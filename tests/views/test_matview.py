"""Materialized-view maintenance tests, incl. incremental == recomputed."""

import random

import pytest

from repro.engine import WorkingMemory
from repro.errors import RuleError
from repro.storage import RelationSchema
from repro.views import MaterializedView, ViewManager

SCHEMAS = {
    "Emp": RelationSchema("Emp", ("name", "salary", "dno")),
    "Dept": RelationSchema("Dept", ("dno", "dname")),
}


@pytest.fixture
def wm():
    return WorkingMemory(SCHEMAS)


def toy_view(wm, name="toy"):
    return MaterializedView(
        name,
        wm,
        "(Emp ^name <N> ^dno <D>) (Dept ^dno <D> ^dname Toy)",
        select=["N", "D"],
    )


class TestBasicMaintenance:
    def test_view_starts_empty(self, wm):
        assert toy_view(wm).rows() == set()

    def test_insert_adds_row(self, wm):
        view = toy_view(wm)
        wm.insert("Emp", ("Mike", 500, 1))
        wm.insert("Dept", (1, "Toy"))
        assert view.rows() == {("Mike", 1)}

    def test_delete_removes_row(self, wm):
        view = toy_view(wm)
        emp = wm.insert("Emp", ("Mike", 500, 1))
        wm.insert("Dept", (1, "Toy"))
        wm.remove(emp)
        assert view.rows() == set()

    def test_view_over_preexisting_data(self, wm):
        wm.insert("Emp", ("Mike", 500, 1))
        wm.insert("Dept", (1, "Toy"))
        view = toy_view(wm)
        assert view.rows() == {("Mike", 1)}

    def test_bag_semantics_with_duplicates(self, wm):
        # Two Toy departments with the same dno attribute value cannot
        # exist (tids differ), but two different depts named Toy with the
        # same number do produce the same projected row twice.
        view = toy_view(wm)
        wm.insert("Emp", ("Mike", 500, 1))
        d1 = wm.insert("Dept", (1, "Toy"))
        d2 = wm.insert("Dept", (1, "Toy"))
        assert view.rows() == {("Mike", 1)}
        assert view.multiplicity(("Mike", 1)) == 2
        wm.remove(d1)
        assert view.rows() == {("Mike", 1)}  # still supported by d2
        wm.remove(d2)
        assert view.rows() == set()

    def test_stats(self, wm):
        view = toy_view(wm)
        emp = wm.insert("Emp", ("Mike", 500, 1))
        wm.insert("Dept", (1, "Toy"))
        wm.remove(emp)
        assert view.stats.inserts == 1
        assert view.stats.deletes == 1

    def test_select_unbound_variable_rejected(self, wm):
        with pytest.raises(RuleError, match="never binds"):
            MaterializedView(
                "bad", wm, "(Emp ^name <N>)", select=["Z"]
            )

    def test_stored_table_mirrors_rows(self, wm):
        view = toy_view(wm)
        wm.insert("Emp", ("Mike", 500, 1))
        wm.insert("Dept", (1, "Toy"))
        assert {t.values for t in view.table.scan()} == {("Mike", 1)}


class TestIncrementalEqualsRecomputed:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_churn(self, wm, seed):
        view = toy_view(wm)
        rng = random.Random(seed)
        live = []
        for _ in range(120):
            if rng.random() < 0.65 or not live:
                if rng.random() < 0.6:
                    live.append(
                        wm.insert(
                            "Emp",
                            (rng.choice("abc"), rng.randint(1, 9) * 100,
                             rng.randint(1, 3)),
                        )
                    )
                else:
                    live.append(
                        wm.insert(
                            "Dept",
                            (rng.randint(1, 3), rng.choice(["Toy", "Shoe"])),
                        )
                    )
            else:
                wm.remove(live.pop(rng.randrange(len(live))))
            assert view.rows() == view.refresh_from_scratch()


class TestViewManager:
    def test_create_and_get(self, wm):
        manager = ViewManager(wm)
        view = manager.create(
            "toy",
            "(Emp ^name <N> ^dno <D>) (Dept ^dno <D> ^dname Toy)",
            select=["N"],
        )
        assert manager.get("toy") is view
        assert manager.names() == ["toy"]

    def test_duplicate_rejected(self, wm):
        manager = ViewManager(wm)
        manager.create("v", "(Emp ^name <N>)", select=["N"])
        with pytest.raises(RuleError, match="already exists"):
            manager.create("v", "(Emp ^name <N>)", select=["N"])

    def test_drop_stops_maintenance(self, wm):
        manager = ViewManager(wm)
        view = manager.create("v", "(Emp ^name <N>)", select=["N"])
        manager.drop("v")
        wm.insert("Emp", ("Mike", 500, 1))
        assert view.rows() == set()
        with pytest.raises(RuleError):
            manager.get("v")

    def test_multiple_views_independent(self, wm):
        manager = ViewManager(wm)
        names = manager.create("names", "(Emp ^name <N>)", select=["N"])
        rich = manager.create(
            "rich", "(Emp ^name <N> ^salary > 1000)", select=["N"]
        )
        wm.insert("Emp", ("Mike", 500, 1))
        wm.insert("Emp", ("Sam", 2000, 1))
        assert names.rows() == {("Mike",), ("Sam",)}
        assert rich.rows() == {("Sam",)}
