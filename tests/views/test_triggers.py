"""Trigger and alerter tests."""

import pytest

from repro.engine import WorkingMemory
from repro.errors import RuleError
from repro.storage import RelationSchema
from repro.views import TriggerManager

SCHEMAS = {
    "Emp": RelationSchema("Emp", ("name", "salary", "dno")),
    "Dept": RelationSchema("Dept", ("dno", "dname")),
}


@pytest.fixture
def wm():
    return WorkingMemory(SCHEMAS)


@pytest.fixture
def manager(wm):
    return TriggerManager(wm)


class TestTriggers:
    def test_simple_trigger_fires_on_insert(self, wm, manager):
        hits = []
        manager.define(
            "high-salary", "(Emp ^salary > 1000)", on_satisfied=hits.append
        )
        wm.insert("Emp", ("Mike", 500, 1))
        assert hits == []
        wm.insert("Emp", ("Sam", 2000, 1))
        assert len(hits) == 1
        assert hits[0].positive_wmes()[0].values == ("Sam", 2000, 1)

    def test_complex_trigger_with_join(self, wm, manager):
        """Buneman & Clemons' 'complex' triggers: multi-relation joins."""
        hits = []
        manager.define(
            "toy-emp",
            "(Emp ^dno <D>) (Dept ^dno <D> ^dname Toy)",
            on_satisfied=hits.append,
        )
        wm.insert("Emp", ("Mike", 500, 1))
        assert hits == []
        wm.insert("Dept", (1, "Toy"))
        assert len(hits) == 1

    def test_delete_trigger(self, wm, manager):
        violations = []
        manager.define(
            "watched", "(Emp ^salary > 1000)", on_violated=violations.append
        )
        sam = wm.insert("Emp", ("Sam", 2000, 1))
        wm.remove(sam)
        assert len(violations) == 1

    def test_trigger_over_preexisting_data(self, wm):
        wm.insert("Emp", ("Sam", 2000, 1))
        manager = TriggerManager(wm)
        hits = []
        manager.define(
            "late", "(Emp ^salary > 1000)", on_satisfied=hits.append
        )
        assert len(hits) == 1

    def test_counts_tracked(self, wm, manager):
        trigger = manager.define("t", "(Emp ^salary > 1000)")
        sam = wm.insert("Emp", ("Sam", 2000, 1))
        wm.remove(sam)
        assert trigger.fired == 1
        assert trigger.cleared == 1

    def test_duplicate_name_rejected(self, wm, manager):
        manager.define("t", "(Emp ^salary > 1000)")
        with pytest.raises(RuleError, match="already defined"):
            manager.define("t", "(Emp ^salary > 0)")

    def test_drop_stops_monitoring(self, wm, manager):
        hits = []
        manager.define("t", "(Emp ^salary > 1000)", on_satisfied=hits.append)
        manager.drop("t")
        wm.insert("Emp", ("Sam", 2000, 1))
        assert hits == []
        with pytest.raises(RuleError):
            manager.trigger("t")

    def test_satisfied_matches(self, wm, manager):
        manager.define("t", "(Emp ^salary > 1000)")
        wm.insert("Emp", ("Sam", 2000, 1))
        wm.insert("Emp", ("Ann", 3000, 1))
        assert len(manager.satisfied_matches("t")) == 2

    def test_negated_condition_trigger(self, wm, manager):
        hits = []
        manager.define(
            "deptless",
            "(Emp ^dno <D>) -(Dept ^dno <D>)",
            on_satisfied=hits.append,
        )
        wm.insert("Emp", ("Mike", 500, 9))
        assert len(hits) == 1
        wm.insert("Dept", (9, "Toy"))
        assert manager.trigger("deptless").cleared == 1


class TestAlerters:
    def test_alerter_records_messages(self, wm, manager):
        manager.define_alerter("watch", "(Emp ^salary > 1000)")
        sam = wm.insert("Emp", ("Sam", 2000, 1))
        wm.remove(sam)
        kinds = [(a.trigger, a.kind) for a in manager.alerts]
        assert kinds == [("watch", "satisfied"), ("watch", "violated")]
        assert "watch" in str(manager.alerts[0])

    def test_alerters_with_multiple_triggers(self, wm, manager):
        manager.define_alerter("a", "(Emp ^salary > 1000)")
        manager.define_alerter("b", "(Emp ^dno 7)")
        wm.insert("Emp", ("Sam", 2000, 7))
        assert {a.trigger for a in manager.alerts} == {"a", "b"}


@pytest.mark.parametrize("strategy", ["rete", "simplified", "patterns", "markers"])
def test_triggers_work_over_any_strategy(wm, strategy):
    manager = TriggerManager(wm, strategy=strategy)
    hits = []
    manager.define(
        "toy-emp",
        "(Emp ^dno <D>) (Dept ^dno <D> ^dname Toy)",
        on_satisfied=hits.append,
    )
    wm.insert("Emp", ("Mike", 500, 1))
    wm.insert("Dept", (1, "Toy"))
    assert len(hits) == 1
