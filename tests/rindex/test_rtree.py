"""R-tree unit and property tests (vs a naive linear index)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.rindex import (
    FULL_INTERVAL,
    Interval,
    RTree,
    box_contains_point,
    boxes_intersect,
    interval_for,
    key_of,
)


def box1d(low, high):
    return (Interval(key_of(low), key_of(high)),)


def box2d(xlow, xhigh, ylow, yhigh):
    return (
        Interval(key_of(xlow), key_of(xhigh)),
        Interval(key_of(ylow), key_of(yhigh)),
    )


class TestIntervals:
    def test_contains_key(self):
        interval = Interval(key_of(1), key_of(5))
        assert interval.contains_key(key_of(1))
        assert interval.contains_key(key_of(5))
        assert not interval.contains_key(key_of(6))

    def test_empty_interval_rejected(self):
        with pytest.raises(IndexError_):
            Interval(key_of(5), key_of(1))

    def test_intersects(self):
        a = Interval(key_of(1), key_of(5))
        b = Interval(key_of(5), key_of(9))
        c = Interval(key_of(6), key_of(9))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_union(self):
        a = Interval(key_of(1), key_of(3))
        b = Interval(key_of(5), key_of(9))
        assert a.union(b) == Interval(key_of(1), key_of(9))

    def test_interval_for_operators(self):
        assert interval_for("=", 5).contains_key(key_of(5))
        assert not interval_for("=", 5).contains_key(key_of(6))
        assert interval_for("<", 5).contains_key(key_of(-100))
        assert interval_for(">=", 5).contains_key(key_of(5))
        # <> over-approximates to the full axis
        assert interval_for("<>", 5) == FULL_INTERVAL

    def test_mixed_type_ordering(self):
        # None < numbers < strings in key space
        assert key_of(None) < key_of(-1e9) < key_of("a")
        assert Interval(key_of(0), key_of("z")).contains_key(key_of("m"))


class TestRTreeBasics:
    def test_insert_and_point_query(self):
        tree = RTree(1)
        tree.insert(box1d(0, 10), "a")
        tree.insert(box1d(20, 30), "b")
        assert set(tree.search_point((key_of(5),))) == {"a"}
        assert set(tree.search_point((key_of(25),))) == {"b"}
        assert set(tree.search_point((key_of(15),))) == set()

    def test_overlapping_boxes(self):
        tree = RTree(1)
        tree.insert(box1d(0, 10), "a")
        tree.insert(box1d(5, 15), "b")
        assert set(tree.search_point((key_of(7),))) == {"a", "b"}

    def test_box_query(self):
        tree = RTree(2)
        tree.insert(box2d(0, 10, 0, 10), "a")
        tree.insert(box2d(20, 30, 20, 30), "b")
        hits = set(tree.search_box(box2d(5, 25, 5, 25)))
        assert hits == {"a", "b"}
        assert set(tree.search_box(box2d(11, 19, 0, 50))) == set()

    def test_duplicate_payload_rejected(self):
        tree = RTree(1)
        tree.insert(box1d(0, 1), "a")
        with pytest.raises(IndexError_):
            tree.insert(box1d(2, 3), "a")

    def test_dimension_mismatch(self):
        tree = RTree(2)
        with pytest.raises(IndexError_):
            tree.insert(box1d(0, 1), "a")
        with pytest.raises(IndexError_):
            list(tree.search_point((key_of(1),)))

    def test_remove(self):
        tree = RTree(1)
        tree.insert(box1d(0, 10), "a")
        tree.insert(box1d(5, 15), "b")
        tree.remove("a")
        assert set(tree.search_point((key_of(7),))) == {"b"}
        assert len(tree) == 1

    def test_remove_missing(self):
        tree = RTree(1)
        with pytest.raises(IndexError_):
            tree.remove("ghost")

    def test_tree_splits_and_grows(self):
        tree = RTree(1, max_entries=4)
        for i in range(50):
            tree.insert(box1d(i * 10, i * 10 + 5), i)
        assert tree.height > 1
        assert len(tree) == 50
        for i in range(50):
            assert set(tree.search_point((key_of(i * 10 + 2),))) == {i}


class _NaiveIndex:
    def __init__(self):
        self.items = {}

    def insert(self, box, payload):
        self.items[payload] = box

    def remove(self, payload):
        del self.items[payload]

    def search_point(self, point):
        return {
            p for p, b in self.items.items() if box_contains_point(b, point)
        }

    def search_box(self, box):
        return {p for p, b in self.items.items() if boxes_intersect(b, box)}


bounds = st.tuples(st.integers(-50, 50), st.integers(-50, 50)).map(
    lambda t: (min(t), max(t))
)


class TestRTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(bounds, bounds), min_size=1, max_size=60), st.data())
    def test_matches_naive_index(self, raw_boxes, data):
        tree = RTree(2, max_entries=4)
        naive = _NaiveIndex()
        for i, (bx, by) in enumerate(raw_boxes):
            box = box2d(bx[0], bx[1], by[0], by[1])
            tree.insert(box, i)
            naive.insert(box, i)
        # random deletions
        to_delete = data.draw(
            st.lists(
                st.sampled_from(range(len(raw_boxes))),
                unique=True,
                max_size=len(raw_boxes) // 2,
            )
        )
        for payload in to_delete:
            tree.remove(payload)
            naive.remove(payload)
        for _ in range(10):
            x = data.draw(st.integers(-60, 60))
            y = data.draw(st.integers(-60, 60))
            point = (key_of(x), key_of(y))
            assert set(tree.search_point(point)) == naive.search_point(point)
        query = box2d(-10, 10, -10, 10)
        assert set(tree.search_box(query)) == naive.search_box(query)

    def test_random_churn_stays_consistent(self):
        rng = random.Random(5)
        tree = RTree(1, max_entries=4)
        naive = _NaiveIndex()
        alive = []
        for step in range(400):
            if rng.random() < 0.65 or not alive:
                low = rng.randint(-100, 100)
                high = low + rng.randint(0, 30)
                box = box1d(low, high)
                tree.insert(box, step)
                naive.insert(box, step)
                alive.append(step)
            else:
                victim = alive.pop(rng.randrange(len(alive)))
                tree.remove(victim)
                naive.remove(victim)
            point = (key_of(rng.randint(-110, 110)),)
            assert set(tree.search_point(point)) == naive.search_point(point)
        assert len(tree) == len(alive)
