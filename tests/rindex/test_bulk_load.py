"""STR bulk-loading tests."""

import random

import pytest

from repro.errors import IndexError_
from repro.lang import analyze_program, parse_program
from repro.rindex import ConditionIndex, Interval, RTree, key_of
from repro.bench.report import _rules_with_selections


def box1d(low, high):
    return (Interval(key_of(low), key_of(high)),)


def box2d(xl, xh, yl, yh):
    return (Interval(key_of(xl), key_of(xh)), Interval(key_of(yl), key_of(yh)))


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load(1, [])
        assert len(tree) == 0
        assert list(tree.search_point((key_of(1),))) == []

    def test_single(self):
        tree = RTree.bulk_load(1, [(box1d(0, 10), "a")])
        assert set(tree.search_point((key_of(5),))) == {"a"}

    def test_matches_incremental_results(self):
        rng = random.Random(7)
        items = []
        for i in range(200):
            xl = rng.randint(-100, 100)
            yl = rng.randint(-100, 100)
            items.append((box2d(xl, xl + rng.randint(0, 20),
                                yl, yl + rng.randint(0, 20)), i))
        packed = RTree.bulk_load(2, items, max_entries=6)
        incremental = RTree(2, max_entries=6)
        for box, payload in items:
            incremental.insert(box, payload)
        assert len(packed) == len(incremental) == 200
        for _ in range(50):
            point = (key_of(rng.randint(-110, 110)),
                     key_of(rng.randint(-110, 110)))
            assert set(packed.search_point(point)) == set(
                incremental.search_point(point)
            )

    def test_packed_tree_is_shallower_or_equal(self):
        items = [(box1d(i, i + 5), i) for i in range(0, 500, 2)]
        packed = RTree.bulk_load(1, items, max_entries=6)
        incremental = RTree(1, max_entries=6)
        for box, payload in items:
            incremental.insert(box, payload)
        assert packed.height <= incremental.height

    def test_duplicate_payload_rejected(self):
        with pytest.raises(IndexError_):
            RTree.bulk_load(1, [(box1d(0, 1), "a"), (box1d(2, 3), "a")])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            RTree.bulk_load(2, [(box1d(0, 1), "a")])

    def test_mutations_after_bulk_load(self):
        items = [(box1d(i * 10, i * 10 + 5), i) for i in range(40)]
        tree = RTree.bulk_load(1, items, max_entries=4)
        tree.insert(box1d(1000, 1005), "late")
        tree.remove(3)
        assert set(tree.search_point((key_of(1002),))) == {"late"}
        assert set(tree.search_point((key_of(32),))) == set()


class TestConditionIndexBulk:
    def test_bulk_and_incremental_agree(self):
        program = parse_program(_rules_with_selections(120))
        analyses = analyze_program(program.rules, program.schemas)
        bulk = ConditionIndex(analyses, program.schemas, bulk=True)
        incremental = ConditionIndex(analyses, program.schemas, bulk=False)
        assert len(bulk) == len(incremental)
        from repro.engine import WorkingMemory

        wm = WorkingMemory(program.schemas)
        for i in range(40):
            wme = wm.insert("Emp", (i * 23 % 1000, i * 31 % 1000, i % 3))
            assert bulk.conditions_matching(wme) == (
                incremental.conditions_matching(wme)
            )

    def test_bulk_tree_not_taller(self):
        program = parse_program(_rules_with_selections(200))
        analyses = analyze_program(program.rules, program.schemas)
        bulk = ConditionIndex(analyses, program.schemas, bulk=True)
        incremental = ConditionIndex(analyses, program.schemas, bulk=False)
        assert bulk.tree("Emp").height <= incremental.tree("Emp").height
