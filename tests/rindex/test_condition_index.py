"""Condition-index tests, including the paper's rule-base query example."""

import pytest

from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.common import match_condition
from repro.rindex import ConditionIndex, condition_box, key_of

SOURCE = """
(literalize Emp name age salary dno)
(p senior     (Emp ^age > 55) --> (remove 1))
(p wellpaid   (Emp ^salary > 1000) --> (remove 1))
(p young-rich (Emp ^age < 30 ^salary > 2000) --> (remove 1))
(p mike       (Emp ^name Mike) --> (remove 1))
(p dept-pair  (Emp ^dno <D>) (Emp ^dno <D> ^age > 60) --> (remove 1))
"""


@pytest.fixture
def setup():
    program = parse_program(SOURCE)
    analyses = analyze_program(program.rules, program.schemas)
    index = ConditionIndex(analyses, program.schemas)
    return program, analyses, index


def emp(program, **attrs):
    wm = WorkingMemory(program.schemas)
    return wm.insert("Emp", attrs)


class TestConditionsMatching:
    def test_point_lookup_finds_covering_conditions(self, setup):
        program, _, index = setup
        wme = emp(program, name="Ann", age=60, salary=500, dno=1)
        hits = index.conditions_matching(wme)
        rules = {rule for rule, _ in hits}
        assert "senior" in rules
        assert "wellpaid" not in rules
        assert "mike" not in rules

    def test_variable_conditions_span_full_axis(self, setup):
        program, _, index = setup
        wme = emp(program, name="Ann", age=20, salary=100, dno=7)
        rules = {rule for rule, _ in index.conditions_matching(wme)}
        # dept-pair's first condition has only a variable: matches anything.
        assert ("dept-pair") in rules

    def test_index_agrees_with_exact_matching(self, setup):
        program, analyses, index = setup
        cases = [
            {"name": "Mike", "age": 62, "salary": 3000, "dno": 1},
            {"name": "Ann", "age": 25, "salary": 2500, "dno": 2},
            {"name": "Bob", "age": 40, "salary": 100, "dno": 3},
        ]
        for attrs in cases:
            wme = emp(program, **attrs)
            indexed = set(index.conditions_matching(wme))
            exact = set()
            for analysis in analyses.values():
                for condition in analysis.conditions:
                    env = match_condition(
                        condition, program.schemas["Emp"], wme
                    )
                    if env is not None:
                        exact.add((analysis.name, condition.cond_number))
            # The index may over-approximate but never miss.
            assert exact <= indexed

    def test_unknown_class_returns_empty(self, setup):
        program, _, index = setup
        other = parse_program("(literalize Ghost g)")
        wm = WorkingMemory(other.schemas)
        wme = wm.insert("Ghost", (1,))
        assert index.conditions_matching(wme) == []


class TestRuleBaseQueries:
    def test_paper_example_query(self, setup):
        """'Give me all the rules that apply on employees older than 55.'"""
        _, _, index = setup
        rules = index.rules_in_region("Emp", {"age": (">", 55)})
        assert "senior" in rules
        assert "dept-pair" in rules  # its second condition needs age > 60
        assert "mike" in rules  # no age restriction: applies at any age
        assert "young-rich" not in rules  # age < 30 cannot exceed 55

    def test_region_on_two_attributes(self, setup):
        _, _, index = setup
        rules = index.rules_in_region(
            "Emp", {"age": ("<", 25), "salary": (">", 2500)}
        )
        assert "young-rich" in rules
        assert "senior" not in rules

    def test_equality_region(self, setup):
        _, _, index = setup
        rules = index.rules_in_region("Emp", {"name": ("=", "Mike")})
        assert "mike" in rules

    def test_unknown_class(self, setup):
        _, _, index = setup
        assert index.rules_in_region("Ghost", {}) == set()


class TestMaintenance:
    def test_remove_condition(self, setup):
        program, analyses, index = setup
        before = len(index)
        index.remove_condition("Emp", ("senior", 1))
        assert len(index) == before - 1
        rules = index.rules_in_region("Emp", {"age": (">", 70)})
        assert "senior" not in rules

    def test_condition_box_shape(self, setup):
        program, analyses, _ = setup
        condition = analyses["young-rich"].condition(1)
        box = condition_box(condition, program.schemas["Emp"])
        age_axis = box[program.schemas["Emp"].position("age")]
        assert age_axis.contains_key(key_of(29))
        # Strict bounds close over-approximately (the boundary key stays
        # in the box; exact matching filters it downstream).
        assert age_axis.contains_key(key_of(30))
        assert not age_axis.contains_key(key_of(31))
