"""Tests for operation counters and space reports."""

from repro.instrument import Counters, SpaceReport


class TestCounters:
    def test_starts_at_zero(self):
        counters = Counters()
        assert all(v == 0 for v in counters.as_dict().values())

    def test_reset(self):
        counters = Counters(comparisons=5, tokens=2)
        counters.reset()
        assert counters.comparisons == 0
        assert counters.tokens == 0

    def test_snapshot_is_independent(self):
        counters = Counters(comparisons=1)
        snap = counters.snapshot()
        counters.comparisons += 10
        assert snap.comparisons == 1

    def test_diff(self):
        counters = Counters(comparisons=1, tuple_reads=4)
        before = counters.snapshot()
        counters.comparisons += 9
        diff = counters.diff(before)
        assert diff["comparisons"] == 9
        assert diff["tuple_reads"] == 0

    def test_add(self):
        total = Counters(comparisons=1) + Counters(comparisons=2, tokens=3)
        assert total.comparisons == 3
        assert total.tokens == 3

    def test_as_dict_keys_are_stable(self):
        keys = set(Counters().as_dict())
        assert {"comparisons", "false_drops", "lock_waits"} <= keys

    def test_add_leaves_operands_untouched(self):
        left = Counters(comparisons=1)
        right = Counters(comparisons=2)
        total = left + right
        assert (left.comparisons, right.comparisons) == (1, 2)
        assert total is not left and total is not right

    def test_diff_covers_every_counter(self):
        counters = Counters()
        diff = counters.diff(counters.snapshot())
        assert set(diff) == set(counters.as_dict())
        assert all(v == 0 for v in diff.values())


class TestSpaceReport:
    def test_as_dict(self):
        report = SpaceReport(
            strategy="x", wm_tuples=1, stored_tokens=2, estimated_cells=9
        )
        d = report.as_dict()
        assert d["strategy"] == "x"
        assert d["stored_tokens"] == 2
        assert d["estimated_cells"] == 9

    def test_detail_defaults_empty(self):
        assert SpaceReport().detail == {}
