"""Recognize-act cycle tests (Figure 2 of the paper), over every strategy."""

import pytest

from repro.engine import ProductionSystem
from repro.errors import ExecutionError
from repro.match import STRATEGIES

ALL_STRATEGIES = sorted(STRATEGIES)

COUNTER_SOURCE = """
(literalize Counter value limit)
(p count-up
    (Counter ^value <V> ^limit {<L> > <V>})
    -->
    (modify 1 ^value (compute <V> + 1)))
"""


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestCycleAcrossStrategies:
    def test_counter_runs_to_limit(self, strategy):
        ps = ProductionSystem(COUNTER_SOURCE, strategy=strategy)
        ps.insert("Counter", {"value": 0, "limit": 5})
        result = ps.run()
        assert not result.halted
        assert result.cycles == 5
        (counter,) = ps.wm.tuples("Counter")
        assert counter.values == (5, 5)

    def test_example2_simplification(self, strategy, example2_source):
        ps = ProductionSystem(example2_source, strategy=strategy)
        ps.insert("Goal", {"Type": "Simplify", "Object": "e1"})
        ps.insert("Expression", {"Name": "e1", "Arg1": 0, "Op": "+", "Arg2": 42})
        ps.insert("Goal", {"Type": "Simplify", "Object": "e2"})
        ps.insert("Expression", {"Name": "e2", "Arg1": 0, "Op": "*", "Arg2": 9})
        result = ps.run()
        assert sorted(result.fired_rule_names) == ["PlusOX", "TimesOX"]
        values = sorted(t.values for t in ps.wm.tuples("Expression"))
        assert values == [("e1", None, None, 42), ("e2", 0, None, None)]

    def test_example3_removals_fifo(self, strategy, example3_source):
        # FIFO fires the older R1 instantiation first: Mike goes (he earns
        # more than manager Sam), then R2 removes Sam (floor 1, Toy dept).
        ps = ProductionSystem(
            example3_source, strategy=strategy, resolution="fifo"
        )
        ps.insert("Emp", {"name": "Mike", "salary": 200, "dno": 1, "manager": "Sam"})
        ps.insert("Emp", {"name": "Sam", "salary": 100, "dno": 2, "manager": None})
        ps.insert("Dept", {"dno": 2, "dname": "Toy", "floor": 1, "manager": None})
        result = ps.run()
        assert result.fired_rule_names == ["R1", "R2"]
        assert {t.values[0] for t in ps.wm.tuples("Emp")} == set()

    def test_example3_removals_lex(self, strategy, example3_source):
        # LEX fires the most recent instantiation first: R2 removes Sam,
        # which retracts R1's instantiation, so Mike survives — the Select
        # step really does change the outcome (§2.1).
        ps = ProductionSystem(example3_source, strategy=strategy)
        ps.insert("Emp", {"name": "Mike", "salary": 200, "dno": 1, "manager": "Sam"})
        ps.insert("Emp", {"name": "Sam", "salary": 100, "dno": 2, "manager": None})
        ps.insert("Dept", {"dno": 2, "dname": "Toy", "floor": 1, "manager": None})
        result = ps.run()
        assert result.fired_rule_names == ["R2"]
        assert {t.values[0] for t in ps.wm.tuples("Emp")} == {"Mike"}

    def test_halt_action_stops_run(self, strategy):
        src = """
        (literalize T x)
        (p stop (T ^x go) --> (halt))
        (p spin (T ^x go) --> (make T ^x go))
        """
        ps = ProductionSystem(src, strategy=strategy, resolution="priority")
        # give stop the higher salience via direct source change instead:
        ps2 = ProductionSystem(
            """
            (literalize T x)
            (p stop (salience 10) (T ^x go) --> (halt))
            (p spin (T ^x go) --> (make T ^x go))
            """,
            strategy=strategy,
            resolution="priority",
        )
        ps2.insert("T", {"x": "go"})
        result = ps2.run(max_cycles=50)
        assert result.halted
        assert result.cycles == 1

    def test_refraction_prevents_refiring(self, strategy):
        src = """
        (literalize T x)
        (literalize Log x)
        (p note (T ^x <V>) --> (make Log ^x <V>))
        """
        ps = ProductionSystem(src, strategy=strategy)
        ps.insert("T", {"x": 1})
        result = ps.run(max_cycles=10)
        assert result.cycles == 1  # fires once, then refraction holds
        assert len(list(ps.wm.tuples("Log"))) == 1

    def test_exhaustion_reported(self, strategy):
        src = """
        (literalize T x)
        (p spin (T ^x <V>) --> (modify 1 ^x (compute <V> + 1)))
        """
        ps = ProductionSystem(src, strategy=strategy)
        ps.insert("T", {"x": 0})
        result = ps.run(max_cycles=7)
        assert result.exhausted
        assert result.cycles == 7


class TestProductionSystemConstruction:
    def test_needs_source_or_rules(self):
        with pytest.raises(ExecutionError, match="needs"):
            ProductionSystem()

    def test_from_rules_and_schemas(self, example3_source):
        from repro.lang import parse_program

        program = parse_program(example3_source)
        ps = ProductionSystem(rules=program.rules, schemas=program.schemas)
        assert set(ps.analyses) == {"R1", "R2"}

    def test_write_output_collected(self):
        src = """
        (literalize T x)
        (p w (T ^x <V>) --> (write |saw| <V>))
        """
        ps = ProductionSystem(src)
        ps.insert("T", {"x": 3})
        ps.run()
        assert ps.output == [("saw", 3)]

    def test_step_returns_none_when_empty(self):
        ps = ProductionSystem("(literalize T x)(p r (T ^x 1) --> (halt))")
        assert ps.step() is None

    def test_random_resolution_reproducible(self):
        src = """
        (literalize T x)
        (literalize Log x)
        (p a (T ^x <V>) --> (make Log ^x 1))
        (p b (T ^x <V>) --> (make Log ^x 2))
        """

        def run(seed):
            ps = ProductionSystem(src, resolution="random", seed=seed)
            ps.insert("T", {"x": 0})
            return ps.run().fired_rule_names

        assert run(5) == run(5)
