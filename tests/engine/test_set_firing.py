"""Set-at-a-time firing tests (§5.1 of the paper)."""

import pytest

from repro.engine import ProductionSystem
from repro.errors import ExecutionError

PAY = """
(literalize Emp name paid)
(literalize Payout name)
(p pay-all
    (Emp ^name <N> ^paid no)
    -->
    (modify 1 ^paid yes)
    (make Payout ^name <N>))
"""


class TestSetFiring:
    def test_whole_rule_batch_fires_in_one_cycle(self):
        system = ProductionSystem(PAY, firing="set")
        for name in ("a", "b", "c", "d"):
            system.insert("Emp", (name, "no"))
        result = system.run()
        assert result.cycles == 1  # one Select, four Acts
        assert len(result.fired) == 4
        assert len(list(system.wm.tuples("Payout"))) == 4

    def test_instance_mode_takes_one_cycle_each(self):
        system = ProductionSystem(PAY, firing="instance")
        for name in ("a", "b", "c"):
            system.insert("Emp", (name, "no"))
        result = system.run()
        assert result.cycles == 3

    def test_same_final_state_as_instance_mode(self):
        def final(firing):
            system = ProductionSystem(PAY, firing=firing)
            for name in ("a", "b"):
                system.insert("Emp", (name, "no"))
            system.run()
            return sorted(t.values for t in system.wm.tuples("Emp"))

        assert final("set") == final("instance")

    def test_invalidated_batch_members_are_skipped(self):
        # Two rules consume the same token; within one rule's batch, an
        # earlier firing can invalidate a later instantiation.
        source = """
        (literalize T v)
        (literalize L v)
        (p eat (T ^v <V>) (T ^v <> <V>) --> (remove 1) (make L ^v <V>))
        """
        system = ProductionSystem(source, firing="set", resolution="fifo")
        system.insert("T", (1,))
        system.insert("T", (2,))
        result = system.run(max_cycles=10)
        # The batch holds (1,2) and (2,1); firing the first removes T(1),
        # invalidating the second instantiation mid-batch.
        assert len(list(system.wm.tuples("L"))) <= 2
        remaining = [t.values[0] for t in system.wm.tuples("T")]
        assert len(remaining) <= 1
        assert not result.exhausted

    def test_halt_stops_mid_batch(self):
        source = """
        (literalize T v)
        (p stop (T ^v <V>) --> (halt))
        """
        system = ProductionSystem(source, firing="set")
        for i in range(5):
            system.insert("T", (i,))
        result = system.run()
        assert result.halted
        assert len(result.fired) == 1

    def test_unknown_firing_mode_rejected(self):
        with pytest.raises(ExecutionError, match="firing mode"):
            ProductionSystem(PAY, firing="bulk")

    def test_set_mode_still_alternates_rules(self):
        source = """
        (literalize A v)
        (literalize B v)
        (literalize L tag)
        (p ra (A ^v <V>) --> (remove 1) (make L ^tag a))
        (p rb (B ^v <V>) --> (remove 1) (make L ^tag b))
        """
        system = ProductionSystem(source, firing="set", resolution="fifo")
        for i in range(3):
            system.insert("A", (i,))
            system.insert("B", (i,))
        result = system.run()
        assert result.cycles == 2  # one batch per rule
        tags = sorted(t.values[0] for t in system.wm.tuples("L"))
        assert tags == ["a", "a", "a", "b", "b", "b"]
