"""Property tests for conflict-resolution strategies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Instantiation, fifo, lex, make_resolver, mea, priority
from repro.storage.tuples import StoredTuple

RESOLVERS = [lex, mea, priority, fifo]


def make_instantiation(index, timetags, salience):
    wmes = tuple(
        StoredTuple("A", index * 100 + i + 1, tag, (tag,))
        for i, tag in enumerate(timetags)
    )
    return Instantiation(
        rule_name=f"r{index}", wmes=wmes, salience=salience
    )


candidate_lists = st.lists(
    st.tuples(
        st.lists(st.integers(1, 50), min_size=1, max_size=3),
        st.integers(-3, 3),
    ),
    min_size=1,
    max_size=8,
).map(
    lambda specs: [
        make_instantiation(i, tags, salience)
        for i, (tags, salience) in enumerate(specs)
    ]
)


class TestResolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(candidate_lists)
    def test_resolvers_pick_from_the_candidates(self, candidates):
        for resolver in RESOLVERS:
            assert resolver(candidates) in candidates

    @settings(max_examples=60, deadline=None)
    @given(candidate_lists)
    def test_resolvers_are_order_insensitive_on_distinct_keys(self, candidates):
        # With unique recency keys, the pick must not depend on list order
        # (LEX/MEA/FIFO tie-break only on timetags, so those must differ).
        keys = [i.timetags for i in candidates]
        if len(set(keys)) != len(keys):
            return
        for resolver in RESOLVERS:
            forward = resolver(candidates)
            backward = resolver(list(reversed(candidates)))
            assert forward.key == backward.key

    @settings(max_examples=60, deadline=None)
    @given(candidate_lists)
    def test_lex_pick_dominates_by_recency(self, candidates):
        chosen = lex(candidates)
        for other in candidates:
            assert chosen.timetags >= other.timetags

    @settings(max_examples=60, deadline=None)
    @given(candidate_lists)
    def test_priority_never_picks_lower_salience(self, candidates):
        chosen = priority(candidates)
        top = max(i.salience for i in candidates)
        assert chosen.salience == top

    @settings(max_examples=60, deadline=None)
    @given(candidate_lists)
    def test_fifo_is_lex_reversed_extreme(self, candidates):
        oldest = fifo(candidates)
        for other in candidates:
            assert oldest.timetags <= other.timetags

    @settings(max_examples=30, deadline=None)
    @given(candidate_lists, st.integers(0, 99))
    def test_seeded_random_is_reproducible(self, candidates, seed):
        first = make_resolver("random", seed)(candidates)
        second = make_resolver("random", seed)(candidates)
        assert first.key == second.key
