"""Conflict-resolution strategy tests."""

import pytest

from repro.engine import Instantiation, SeededRandom, fifo, lex, make_resolver, mea, priority
from repro.errors import ExecutionError
from repro.storage.tuples import StoredTuple


def wme(tid, timetag):
    return StoredTuple("A", tid, timetag, (tid,))


def inst(rule, timetags, salience=0):
    return Instantiation(
        rule_name=rule,
        wmes=tuple(wme(i + 1, t) for i, t in enumerate(timetags)),
        salience=salience,
    )


class TestLex:
    def test_most_recent_wins(self):
        older = inst("old", [1, 2])
        newer = inst("new", [1, 9])
        assert lex([older, newer]) is newer

    def test_ties_broken_by_second_timetag(self):
        a = inst("a", [9, 3])
        b = inst("b", [9, 4])
        assert lex([a, b]) is b

    def test_specificity_breaks_full_ties(self):
        shorter = Instantiation("s", (wme(1, 9),))
        longer = Instantiation("l", (wme(1, 9), None))
        # identical recency (negated slot has no timetag): longer has same
        # positive count, so compare by positive slots
        assert lex([shorter, longer]) in (shorter, longer)


class TestMea:
    def test_first_element_recency_dominates(self):
        a = inst("a", [1, 100])
        b = inst("b", [2, 3])
        assert mea([a, b]) is b
        assert lex([a, b]) is a  # contrast with LEX


class TestPriority:
    def test_salience_wins_over_recency(self):
        low = inst("low", [9], salience=0)
        high = inst("high", [1], salience=5)
        assert priority([low, high]) is high

    def test_recency_breaks_salience_ties(self):
        a = inst("a", [1], salience=5)
        b = inst("b", [2], salience=5)
        assert priority([a, b]) is b


class TestFifo:
    def test_oldest_first(self):
        older = inst("old", [1, 2])
        newer = inst("new", [1, 9])
        assert fifo([older, newer]) is older


class TestSeededRandom:
    def test_deterministic_for_same_seed(self):
        candidates = [inst(f"r{i}", [i]) for i in range(1, 6)]
        picks_a = [SeededRandom(7)(candidates) for _ in range(10)]
        picks_b = [SeededRandom(7)(candidates) for _ in range(10)]
        assert [p.rule_name for p in picks_a] == [p.rule_name for p in picks_b]

    def test_order_insensitive(self):
        candidates = [inst(f"r{i}", [i]) for i in range(1, 6)]
        a = SeededRandom(3)(candidates)
        b = SeededRandom(3)(list(reversed(candidates)))
        assert a.rule_name == b.rule_name


class TestTotalOrder:
    """Resolvers must be insensitive to conflict-set enumeration order."""

    def exact_tie(self, rule):
        # Same timetags and specificity: only the canonical key differs.
        return Instantiation(rule, (wme(1, 5), wme(2, 3)))

    @pytest.mark.parametrize(
        "resolver", [lex, mea, priority, fifo], ids=lambda r: r.__name__
    )
    def test_exact_ties_resolve_identically_in_any_order(self, resolver):
        a, b, c = (self.exact_tie(r) for r in ("ra", "rb", "rc"))
        picks = {
            resolver(order).rule_name
            for order in ([a, b, c], [c, a, b], [b, c, a], [c, b, a])
        }
        assert len(picks) == 1

    @pytest.mark.parametrize(
        "resolver", [lex, mea, priority, fifo], ids=lambda r: r.__name__
    )
    def test_negated_slots_are_comparable(self, resolver):
        # A None (negated) slot against a positive slot must not TypeError.
        with_neg = Instantiation("n", (wme(1, 5), None))
        without = Instantiation("p", (wme(1, 5), wme(9, 5)))
        assert resolver([with_neg, without]).rule_name in ("n", "p")

    def test_seeded_random_handles_negated_slots(self):
        with_neg = Instantiation("n", (wme(1, 5), None))
        without = Instantiation("p", (wme(1, 5), wme(9, 5)))
        pick = SeededRandom(0)([with_neg, without])
        assert pick.rule_name in ("n", "p")


class TestMakeResolver:
    @pytest.mark.parametrize("name", ["lex", "mea", "priority", "fifo", "random"])
    def test_known_names(self, name):
        resolver = make_resolver(name, seed=1)
        assert resolver([inst("r", [1])]).rule_name == "r"

    def test_unknown_name(self):
        with pytest.raises(ExecutionError, match="unknown conflict-resolution"):
            make_resolver("alphabetical")
