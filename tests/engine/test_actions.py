"""RHS action execution tests."""

import pytest

from repro.engine import (
    ActionExecutor,
    Instantiation,
    WorkingMemory,
    evaluate_expression,
)
from repro.errors import ExecutionError
from repro.lang import analyze_rule, parse_program
from repro.lang.ast import ComputeExpr, ConstExpr, VarExpr
from repro.storage import RelationSchema

SCHEMAS = {
    "Emp": RelationSchema("Emp", ("name", "salary")),
    "Log": RelationSchema("Log", ("msg",)),
}


def setup(rule_source):
    program = parse_program(rule_source)
    schemas = dict(SCHEMAS)
    schemas.update(program.schemas)
    analysis = analyze_rule(program.rules[0], schemas)
    wm = WorkingMemory(schemas)
    executor = ActionExecutor(wm)
    return analysis, wm, executor


def instantiate(analysis, wmes, bindings=()):
    return Instantiation(
        rule_name=analysis.name, wmes=tuple(wmes), bindings=tuple(bindings)
    )


class TestEvaluateExpression:
    def test_constant(self):
        assert evaluate_expression(ConstExpr(5), {}) == 5

    def test_variable(self):
        assert evaluate_expression(VarExpr("x"), {"x": "hi"}) == "hi"

    def test_unbound_variable(self):
        with pytest.raises(ExecutionError, match="unbound"):
            evaluate_expression(VarExpr("x"), {})

    def test_compute(self):
        expr = ComputeExpr("+", VarExpr("x"), ConstExpr(2))
        assert evaluate_expression(expr, {"x": 3}) == 5

    @pytest.mark.parametrize(
        "op,expected", [("+", 7), ("-", 3), ("*", 10), ("/", 2.5), ("mod", 1)]
    )
    def test_arithmetic_operators(self, op, expected):
        assert evaluate_expression(
            ComputeExpr(op, ConstExpr(5), ConstExpr(2)), {}
        ) == expected

    def test_integer_division_stays_int(self):
        assert evaluate_expression(
            ComputeExpr("/", ConstExpr(6), ConstExpr(2)), {}
        ) == 3

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            evaluate_expression(ComputeExpr("/", ConstExpr(1), ConstExpr(0)), {})

    def test_non_numeric_compute(self):
        with pytest.raises(ExecutionError, match="numeric"):
            evaluate_expression(ComputeExpr("+", ConstExpr("a"), ConstExpr(1)), {})


class TestActions:
    def test_make_inserts(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^name <N>) --> (make Log ^msg <N>))"
        )
        emp = wm.insert("Emp", ("Mike", 100))
        outcome = executor.execute(
            analysis, instantiate(analysis, [emp], [("N", "Mike")])
        )
        assert [t.values for t in wm.tuples("Log")] == [("Mike",)]
        assert len(outcome.inserted) == 1

    def test_remove_deletes_matched_element(self):
        analysis, wm, executor = setup("(p R (Emp ^name Mike) --> (remove 1))")
        emp = wm.insert("Emp", ("Mike", 100))
        outcome = executor.execute(analysis, instantiate(analysis, [emp]))
        assert wm.size() == 0
        assert outcome.removed == [emp]

    def test_remove_twice_is_noop(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^name Mike) --> (remove 1) (remove 1))"
        )
        emp = wm.insert("Emp", ("Mike", 100))
        outcome = executor.execute(analysis, instantiate(analysis, [emp]))
        assert len(outcome.removed) == 1

    def test_remove_element_already_gone(self):
        analysis, wm, executor = setup("(p R (Emp ^name Mike) --> (remove 1))")
        emp = wm.insert("Emp", ("Mike", 100))
        wm.remove(emp)  # another rule got there first
        outcome = executor.execute(analysis, instantiate(analysis, [emp]))
        assert outcome.removed == []

    def test_modify_replaces_with_fresh_timetag(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^name Mike ^salary <S>) --> "
            "(modify 1 ^salary (compute <S> + 10)))"
        )
        emp = wm.insert("Emp", ("Mike", 100))
        outcome = executor.execute(
            analysis, instantiate(analysis, [emp], [("S", 100)])
        )
        (updated,) = wm.tuples("Emp")
        assert updated.values == ("Mike", 110)
        assert updated.timetag > emp.timetag
        assert outcome.removed == [emp]
        assert outcome.inserted == [updated]

    def test_halt_stops_and_flags(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^name Mike) --> (halt) (make Log ^msg after))"
        )
        emp = wm.insert("Emp", ("Mike", 100))
        outcome = executor.execute(analysis, instantiate(analysis, [emp]))
        assert outcome.halted
        assert list(wm.tuples("Log")) == []  # nothing after halt

    def test_write_collects_values(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^name <N> ^salary <S>) --> (write <N> |earns| <S>))"
        )
        emp = wm.insert("Emp", ("Mike", 100))
        outcome = executor.execute(
            analysis,
            instantiate(analysis, [emp], [("N", "Mike"), ("S", 100)]),
        )
        assert outcome.written == [("Mike", "earns", 100)]

    def test_bind_extends_environment(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^salary <S>) --> "
            "(bind <T> (compute <S> * 2)) (make Emp ^name new ^salary <T>))"
        )
        emp = wm.insert("Emp", ("Mike", 100))
        executor.execute(analysis, instantiate(analysis, [emp], [("S", 100)]))
        values = {t.values for t in wm.tuples("Emp")}
        assert ("new", 200) in values

    def test_call_invokes_host_function(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^name <N>) --> (call notify <N>))"
        )
        calls = []
        executor.register("notify", lambda *args: calls.append(args))
        emp = wm.insert("Emp", ("Mike", 100))
        executor.execute(analysis, instantiate(analysis, [emp], [("N", "Mike")]))
        assert calls == [("Mike",)]

    def test_call_without_registration(self):
        analysis, wm, executor = setup(
            "(p R (Emp ^name Mike) --> (call missing))"
        )
        emp = wm.insert("Emp", ("Mike", 100))
        with pytest.raises(ExecutionError, match="no registered host function"):
            executor.execute(analysis, instantiate(analysis, [emp]))
