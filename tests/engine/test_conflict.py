"""Conflict set and instantiation tests."""

from repro.engine import ConflictSet, Instantiation
from repro.storage.tuples import StoredTuple


def wme(relation, tid, timetag=None):
    return StoredTuple(relation, tid, timetag or tid, (tid,))


def inst(rule, *wmes, salience=0):
    return Instantiation(rule_name=rule, wmes=tuple(wmes), salience=salience)


class TestInstantiation:
    def test_identity_is_rule_plus_wme_slots(self):
        a = inst("R", wme("Emp", 1), wme("Dept", 2))
        b = Instantiation(
            "R",
            (wme("Emp", 1), wme("Dept", 2)),
            bindings=(("x", 1),),  # bindings do not affect identity
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_negated_slot_is_part_of_identity(self):
        a = inst("R", wme("Emp", 1), None)
        b = inst("R", wme("Emp", 1))
        assert a != b

    def test_timetags_descending(self):
        i = inst("R", wme("A", 1, 5), wme("B", 2, 9), None)
        assert i.timetags == (9, 5)

    def test_positive_wmes_skips_negated(self):
        i = inst("R", wme("A", 1), None, wme("B", 2))
        assert [w.tid for w in i.positive_wmes()] == [1, 2]

    def test_str(self):
        assert str(inst("R", wme("A", 1), None)) == "R[A#1, -]"


class TestConflictSet:
    def test_add_remove(self):
        cs = ConflictSet()
        i = inst("R", wme("A", 1))
        assert cs.add(i)
        assert not cs.add(i)  # dedupe
        assert i in cs
        assert len(cs) == 1
        assert cs.remove(i)
        assert not cs.remove(i)
        assert len(cs) == 0

    def test_remove_wme_retracts_every_referencing_instantiation(self):
        cs = ConflictSet()
        shared = wme("A", 1)
        i1 = inst("R1", shared, wme("B", 2))
        i2 = inst("R2", shared)
        i3 = inst("R3", wme("B", 2))
        for i in (i1, i2, i3):
            cs.add(i)
        removed = cs.remove_wme(shared)
        assert {r.rule_name for r in removed} == {"R1", "R2"}
        assert len(cs) == 1
        assert i3 in cs

    def test_remove_wme_on_unreferenced_element(self):
        cs = ConflictSet()
        assert cs.remove_wme(wme("A", 99)) == []

    def test_for_rule(self):
        cs = ConflictSet()
        cs.add(inst("R1", wme("A", 1)))
        cs.add(inst("R1", wme("A", 2)))
        cs.add(inst("R2", wme("A", 3)))
        assert len(cs.for_rule("R1")) == 2

    def test_counters(self):
        cs = ConflictSet()
        i = inst("R", wme("A", 1))
        cs.add(i)
        cs.remove(i)
        assert cs.additions == 1
        assert cs.removals == 1

    def test_clear(self):
        cs = ConflictSet()
        cs.add(inst("R", wme("A", 1)))
        cs.clear()
        assert len(cs) == 0
        assert cs.remove_wme(wme("A", 1)) == []

    def test_same_wme_in_two_slots(self):
        cs = ConflictSet()
        shared = wme("A", 1)
        i = inst("R", shared, shared)
        cs.add(i)
        assert cs.remove_wme(shared) == [i]
        assert len(cs) == 0
