"""Set-at-a-time WM mutation: apply_batch and deferred notification."""

import pytest

from repro.delta import DELETE, INSERT, Delta, DeltaBatch
from repro.engine import WorkingMemory
from repro.errors import MatchError
from repro.storage import RelationSchema

SCHEMAS = {
    "Emp": RelationSchema("Emp", ("name", "salary")),
    "Dept": RelationSchema("Dept", ("dno",)),
}


class Recorder:
    """Per-tuple listener (no on_delta): exercises the fallback path."""

    def __init__(self):
        self.events = []

    def on_insert(self, wme):
        self.events.append(("+", wme.relation, wme.tid))

    def on_delete(self, wme):
        self.events.append(("-", wme.relation, wme.tid))


class BatchRecorder(Recorder):
    """Listener with on_delta: receives batches whole."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def on_delta(self, batch):
        self.batches.append(batch)
        for delta in batch:
            sign = "+" if delta.op == INSERT else "-"
            self.events.append((sign, delta.relation, delta.tid))


@pytest.fixture(params=["memory", "sqlite"])
def wm(request):
    wm = WorkingMemory(SCHEMAS, backend=request.param)
    yield wm
    wm.catalog.close()


class TestApplyBatch:
    def test_ops_realized_in_order(self, wm):
        victim = wm.insert("Emp", ("Old", 1))
        batch = wm.apply_batch([
            ("insert", "Emp", ("Mike", 100)),
            ("delete", victim),
            ("insert", "Dept", (7,)),
        ])
        assert [d.op for d in batch] == [INSERT, DELETE, INSERT]
        assert [d.relation for d in batch] == ["Emp", "Emp", "Dept"]
        assert wm.size() == 2

    def test_modify_expands_to_delete_plus_insert(self, wm):
        old = wm.insert("Emp", ("Mike", 100))
        batch = wm.apply_batch([("modify", old, {"salary": 200})])
        assert [d.op for d in batch] == [DELETE, INSERT]
        new = batch.deltas[1].wme
        assert new.values == ("Mike", 200)
        assert new.tid != old.tid
        assert new.timetag > old.timetag

    def test_timetags_follow_op_order_across_relations(self, wm):
        batch = wm.apply_batch([
            ("insert", "Emp", ("A", 1)),
            ("insert", "Dept", (1,)),
            ("insert", "Emp", ("B", 2)),
        ])
        timetags = [d.wme.timetag for d in batch]
        assert timetags == sorted(timetags)
        assert len(set(timetags)) == 3

    def test_mapping_values_accepted(self, wm):
        batch = wm.apply_batch([("insert", "Emp", {"name": "Sam"})])
        assert batch.deltas[0].wme.values == ("Sam", None)

    def test_single_notification_per_batch(self, wm):
        listener = BatchRecorder()
        wm.add_listener(listener)
        wm.apply_batch([
            ("insert", "Emp", ("Mike", 100)),
            ("insert", "Dept", (7,)),
        ])
        assert len(listener.batches) == 1
        assert len(listener.batches[0]) == 2

    def test_fallback_for_listeners_without_on_delta(self, wm):
        listener = Recorder()
        wm.add_listener(listener)
        batch = wm.apply_batch([
            ("insert", "Emp", ("Mike", 100)),
            ("insert", "Dept", (7,)),
        ])
        assert listener.events == [
            ("+", "Emp", batch.deltas[0].tid),
            ("+", "Dept", batch.deltas[1].tid),
        ]

    def test_unknown_op_kind_rejected(self, wm):
        with pytest.raises(MatchError, match="unknown batch op kind"):
            wm.apply_batch([("upsert", "Emp", ("Mike", 100))])
        assert wm.size() == 0

    def test_rejected_inside_open_batch(self, wm):
        wm.begin_batch()
        with pytest.raises(MatchError, match="open WM batch"):
            wm.apply_batch([("insert", "Emp", ("Mike", 100))])
        wm.end_batch()

    def test_empty_batch_is_silent(self, wm):
        listener = BatchRecorder()
        wm.add_listener(listener)
        batch = wm.apply_batch([])
        assert len(batch) == 0
        assert listener.batches == []


class TestDeferredNotification:
    def test_notifications_buffer_until_flush(self, wm):
        listener = BatchRecorder()
        wm.add_listener(listener)
        wm.begin_batch()
        a = wm.insert("Emp", ("Mike", 100))
        assert wm.batching and wm.pending_deltas() == 1
        assert listener.events == []
        # the staged overlay serves point reads before the flush
        assert wm.get("Emp", a.tid).values == ("Mike", 100)
        wm.flush_batch()
        assert listener.events == [("+", "Emp", a.tid)]
        assert wm.batching  # flush stays in batch mode
        wm.end_batch()
        assert not wm.batching

    def test_net_annihilates_insert_then_delete(self, wm):
        listener = BatchRecorder()
        wm.add_listener(listener)
        with wm.batch():
            ghost = wm.insert("Emp", ("Ghost", 0))
            keeper = wm.insert("Emp", ("Keeper", 1))
            wm.remove(ghost)
        assert listener.events == [("+", "Emp", keeper.tid)]

    def test_begin_twice_rejected(self, wm):
        wm.begin_batch()
        with pytest.raises(MatchError, match="already open"):
            wm.begin_batch()
        wm.end_batch()

    def test_flush_without_batch_rejected(self, wm):
        with pytest.raises(MatchError, match="no WM batch"):
            wm.flush_batch()

    def test_context_manager_is_reentrant(self, wm):
        listener = BatchRecorder()
        wm.add_listener(listener)
        with wm.batch():
            wm.insert("Emp", ("Mike", 100))
            with wm.batch():  # joins the outer scope, no early flush
                wm.insert("Emp", ("Sam", 200))
            assert listener.batches == []
        assert len(listener.batches) == 1
        assert len(listener.batches[0]) == 2

    def test_modify_inside_batch_orders_delete_before_insert(self, wm):
        listener = BatchRecorder()
        wm.add_listener(listener)
        old = wm.insert("Emp", ("Mike", 100))
        listener.events.clear()
        with wm.batch():
            new = wm.modify(old, {"salary": 200})
        assert listener.events == [
            ("-", "Emp", old.tid),
            ("+", "Emp", new.tid),
        ]


class TestDeltaBatchNet:
    def _wme(self, wm, values):
        return wm.insert("Emp", values)

    def test_net_drops_matched_pairs_only(self, wm):
        a = self._wme(wm, ("A", 1))
        b = self._wme(wm, ("B", 2))
        batch = DeltaBatch([
            Delta(INSERT, a),
            Delta(INSERT, b),
            Delta(DELETE, a),
        ]).net()
        assert [(d.op, d.tid) for d in batch] == [(INSERT, b.tid)]

    def test_net_keeps_delete_of_preexisting_tuple(self, wm):
        a = self._wme(wm, ("A", 1))
        batch = DeltaBatch([Delta(DELETE, a)]).net()
        assert [(d.op, d.tid) for d in batch] == [(DELETE, a.tid)]

    def test_net_without_pairs_returns_same_deltas(self, wm):
        a = self._wme(wm, ("A", 1))
        batch = DeltaBatch([Delta(INSERT, a)])
        assert batch.net() is batch

    def test_relations_first_appearance_order(self, wm):
        emp = self._wme(wm, ("A", 1))
        dept = wm.insert("Dept", (1,))
        batch = DeltaBatch([
            Delta(INSERT, emp),
            Delta(INSERT, dept),
            Delta(DELETE, emp),
        ])
        assert batch.relations() == ["Emp", "Dept"]
        groups = batch.by_relation()
        assert [len(g) for g in groups.values()] == [2, 1]
