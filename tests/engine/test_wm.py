"""Working-memory tests."""

import pytest

from repro.engine import WorkingMemory
from repro.errors import MatchError
from repro.storage import RelationSchema

SCHEMAS = {
    "Emp": RelationSchema("Emp", ("name", "salary")),
    "Dept": RelationSchema("Dept", ("dno",)),
}


class Recorder:
    def __init__(self):
        self.events = []

    def on_insert(self, wme):
        self.events.append(("+", wme.relation, wme.tid))

    def on_delete(self, wme):
        self.events.append(("-", wme.relation, wme.tid))


@pytest.fixture
def wm():
    return WorkingMemory(SCHEMAS)


class TestWorkingMemory:
    def test_insert_tuple_and_mapping(self, wm):
        a = wm.insert("Emp", ("Mike", 100))
        b = wm.insert("Emp", {"name": "Sam"})
        assert a.values == ("Mike", 100)
        assert b.values == ("Sam", None)

    def test_unknown_class_rejected(self, wm):
        with pytest.raises(MatchError, match="unknown WM class"):
            wm.insert("Ghost", (1,))
        with pytest.raises(MatchError):
            wm.relation("Ghost")

    def test_listeners_notified_in_order(self, wm):
        rec = Recorder()
        wm.add_listener(rec)
        a = wm.insert("Emp", ("Mike", 100))
        wm.remove(a)
        assert rec.events == [("+", "Emp", a.tid), ("-", "Emp", a.tid)]

    def test_remove_listener(self, wm):
        rec = Recorder()
        wm.add_listener(rec)
        wm.remove_listener(rec)
        wm.insert("Emp", ("Mike", 100))
        assert rec.events == []

    def test_modify_is_delete_plus_insert(self, wm):
        rec = Recorder()
        wm.add_listener(rec)
        old = wm.insert("Emp", ("Mike", 100))
        new = wm.modify(old, {"salary": 200})
        assert new.values == ("Mike", 200)
        assert new.tid != old.tid
        assert new.timetag > old.timetag
        assert rec.events == [
            ("+", "Emp", old.tid),
            ("-", "Emp", old.tid),
            ("+", "Emp", new.tid),
        ]

    def test_size_counts_all_classes(self, wm):
        wm.insert("Emp", ("Mike", 100))
        wm.insert("Dept", (1,))
        assert wm.size() == 2

    def test_get(self, wm):
        a = wm.insert("Emp", ("Mike", 100))
        assert wm.get("Emp", a.tid).values == ("Mike", 100)

    def test_sqlite_backend(self):
        wm = WorkingMemory(SCHEMAS, backend="sqlite")
        a = wm.insert("Emp", ("Mike", 100))
        assert wm.get("Emp", a.tid).values == ("Mike", 100)
        wm.catalog.close()
