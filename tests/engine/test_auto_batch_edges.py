"""Edge cases of ``batch_size="auto"`` and its manifest plumbing.

The tuner only learns from flushed act-phase batches; runs that never
flush one (empty conflict set on the first cycle, rule bases that never
fire) must leave it at the initial budget rather than crash or drift.
"""

import json

from repro.cli import main
from repro.engine import BatchSizeTuner, ProductionSystem
from repro.delta import DeltaBatch

EMPTY_MATCH = """
(literalize Item kind)
(p impossible (Item ^kind 0) (Item ^kind 1) -->
    (write never))
(make Item ^kind 2)
"""

COUNTER = """
(literalize Counter value limit)
(p count-up
    (Counter ^value <V> ^limit {<L> > <V>})
    -->
    (modify 1 ^value (compute <V> + 1)))
(make Counter ^value 0 ^limit 3)
"""


class TestTunerUnfed:
    def test_untouched_without_observations(self):
        tuner = BatchSizeTuner()
        assert tuner.size == 8

    def test_empty_batch_leaves_size_alone(self):
        tuner = BatchSizeTuner()
        tuner.observe(DeltaBatch())
        assert tuner.size == 8


class TestAutoFirstCycle:
    def test_empty_conflict_set_on_first_cycle(self):
        system = ProductionSystem(EMPTY_MATCH, batch_size="auto")
        result = system.run(max_cycles=10)
        assert result.cycles == 0
        assert not result.fired
        # match.batch_group_max was never emitted — the tuner must still
        # report its initial budget, not 0 or garbage.
        assert system.effective_batch_size == 8

    def test_quiescent_run_keeps_initial_budget(self):
        system = ProductionSystem(COUNTER, batch_size="auto")
        system.run(max_cycles=50)
        # Tiny per-cycle batches never justify growth; the resolved size
        # must stay inside the tuner's [floor, ceiling] band.
        assert 2 <= system.effective_batch_size <= 256

    def test_fixed_batch_size_reports_itself(self):
        system = ProductionSystem(COUNTER, batch_size=4)
        system.run(max_cycles=50)
        assert system.effective_batch_size == 4


class TestManifestRecordsResolvedSize:
    def write_program(self, tmp_path):
        path = tmp_path / "counter.ops"
        path.write_text(COUNTER)
        return str(path)

    def read_manifest(self, base):
        runs = sorted(base.iterdir())
        assert len(runs) == 1
        return json.loads((runs[0] / "manifest.json").read_text())

    def test_auto_records_resolved_integer(self, tmp_path, capsys):
        base = tmp_path / "runs"
        assert main(
            ["run", self.write_program(tmp_path), "--quiet",
             "--batch-size", "auto", "--manifest", str(base)]
        ) == 0
        manifest = self.read_manifest(base)
        assert manifest["config"]["batch_size"] == "auto"
        resolved = manifest["result"]["resolved_batch_size"]
        assert isinstance(resolved, int) and 2 <= resolved <= 256

    def test_fixed_size_round_trips(self, tmp_path, capsys):
        base = tmp_path / "runs"
        assert main(
            ["run", self.write_program(tmp_path), "--quiet",
             "--batch-size", "4", "--manifest", str(base)]
        ) == 0
        manifest = self.read_manifest(base)
        assert manifest["result"]["resolved_batch_size"] == 4
