"""Engine trace stream tests (OPS5 'watch')."""

import pytest

from repro.engine import ProductionSystem, TraceEvent

SOURCE = """
(literalize T v)
(literalize Log v)
(p step (T ^v <V>) --> (remove 1) (make Log ^v <V>))
(p stop (Log ^v 2) --> (halt))
"""


@pytest.fixture
def traced_system():
    system = ProductionSystem(SOURCE, resolution="fifo")
    events = []
    system.add_trace(events.append)
    return system, events


class TestTrace:
    def test_wm_changes_traced(self, traced_system):
        system, events = traced_system
        wme = system.insert("T", (1,))
        system.remove(wme)
        assert [e.kind for e in events] == ["insert", "remove"]
        assert events[0].detail is wme

    def test_fire_events_carry_cycle_and_record(self, traced_system):
        system, events = traced_system
        system.insert("T", (1,))
        system.run()
        fires = [e for e in events if e.kind == "fire"]
        assert len(fires) == 1
        assert fires[0].cycle == 1
        assert fires[0].detail.instantiation.rule_name == "step"

    def test_rhs_changes_appear_in_stream(self, traced_system):
        system, events = traced_system
        system.insert("T", (1,))
        system.run()
        kinds = [e.kind for e in events]
        # insert T, fire step (remove T + make Log interleaved before the
        # fire event completes the Act step)
        assert kinds.count("remove") == 1
        assert kinds.count("insert") == 2

    def test_halt_event(self, traced_system):
        system, events = traced_system
        system.insert("T", (2,))
        system.run()
        assert events[-1].kind == "halt"

    def test_event_rendering(self, traced_system):
        system, events = traced_system
        system.insert("T", (1,))
        system.run()
        rendered = [str(e) for e in events]
        assert any(r.startswith("=>WM:") for r in rendered)
        assert any(r.startswith("<=WM:") for r in rendered)
        assert any(r.startswith("FIRE") for r in rendered)

    def test_remove_trace(self, traced_system):
        system, events = traced_system
        system.remove_trace(events.append)
        system.insert("T", (1,))
        assert events == []

    def test_multiple_tracers(self):
        system = ProductionSystem(SOURCE)
        a, b = [], []
        system.add_trace(a.append)
        system.add_trace(b.append)
        system.insert("T", (1,))
        assert len(a) == len(b) == 1

    def test_no_tracer_no_overhead(self):
        system = ProductionSystem(SOURCE)
        system.insert("T", (1,))
        assert system._tracers == []


def test_trace_event_is_immutable():
    event = TraceEvent(kind="insert", cycle=0, detail=None)
    with pytest.raises(AttributeError):
        event.kind = "remove"


class TestEventRendering:
    """__str__ coverage for all four public kinds."""

    def test_insert(self):
        assert str(TraceEvent("insert", 0, "T#1(1)")) == "=>WM: T#1(1)"

    def test_remove(self):
        assert str(TraceEvent("remove", 3, "T#1(1)")) == "<=WM: T#1(1)"

    def test_fire_carries_cycle(self, traced_system):
        system, events = traced_system
        system.insert("T", (1,))
        system.run()
        fire = next(e for e in events if e.kind == "fire")
        assert str(fire).startswith(f"FIRE {fire.cycle}: ")
        assert "step" in str(fire)

    def test_halt_carries_cycle_and_rule(self, traced_system):
        system, events = traced_system
        system.insert("T", (2,))
        system.run()
        halt = events[-1]
        assert halt.kind == "halt"
        assert str(halt) == f"HALT {halt.cycle}: stop"

    def test_halt_without_record_still_shows_cycle(self):
        assert str(TraceEvent("halt", 7, None)) == "HALT 7"

    def test_unknown_kind_falls_back(self):
        assert str(TraceEvent("probe", 2, "x")) == "PROBE 2: x"
