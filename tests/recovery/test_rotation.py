"""Segmented WALs: rotation, compaction, chain reading, torn rotation.

PR 9's serving layer keeps tenant logs alive for days, so the WAL learned
to archive its active file into ``<path>.<first>-<last>.seg`` segments
and delete the prefix a checkpoint supersedes.  These tests pin the
mechanics at the writer level and the recovery contract end to end.
"""

import os

import pytest

from repro.engine import ProductionSystem
from repro.errors import RecoveryError, WalCorruptError
from repro.recovery import (
    Crashpoints,
    DurableRun,
    SimulatedCrash,
    WalWriter,
    list_segments,
    read_wal_chain,
    recover,
)
from repro.recovery.wal import (
    META_SIDECAR_SUFFIX,
    read_meta_sidecar,
    segment_path,
    write_meta_sidecar,
)

PROGRAM = """
(literalize counter n)
(literalize limit max)
(p bump
    (counter ^n <x>)
    (limit ^max > <x>)
    -->
    (modify 1 ^n (compute <x> + 1))
    (write (compute <x> + 1)))
(p stop
    (counter ^n <x>)
    (limit ^max <x>)
    -->
    (halt))
(make counter ^n 0)
(make limit ^max 12)
"""

META = {"version": 1, "program": "(p ...)", "backend": "memory"}

CONFIG = {
    "strategy": "rete",
    "resolution": "lex",
    "backend": "memory",
    "seed": 0,
    "batch_size": 1,
    "firing": "instance",
}


def build_system():
    return ProductionSystem(PROGRAM, **CONFIG)


def fill(writer, n, start=1):
    """Commit *n* one-record boundaries (each commit syncs)."""
    for i in range(start, start + n):
        writer.commit("boundary", {"cycle": i, "pad": "x" * 64})


class TestWriterRotation:
    def test_rotation_archives_segments_and_chain_reads_them(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path, rotate_bytes=200, wal_meta=META)
        writer.append("meta", META)
        fill(writer, 10)
        writer.close()
        assert writer.rotations >= 2
        segments = list_segments(path)
        assert len(segments) == writer.rotations
        # Segments tile the sequence space contiguously from 1.
        expected = 1
        for first, last, file in segments:
            assert first == expected
            assert last >= first
            assert os.path.exists(file)
            expected = last + 1
        chain = read_wal_chain(path)
        assert not chain.torn
        assert chain.meta == META
        assert [r.seq for r in chain.records] == list(range(1, 12))
        assert chain.first_seq == 1
        assert chain.active_base_seq == expected
        assert chain.active_exists

    def test_no_rotation_without_budget_or_meta(self, tmp_path):
        plain = str(tmp_path / "plain.wal")
        writer = WalWriter.create(plain, rotate_bytes=0, wal_meta=META)
        fill(writer, 10)
        writer.close()
        assert writer.rotations == 0 and not list_segments(plain)
        # Without a meta body to persist, rotation is skipped (the run's
        # configuration would not survive deletion of segment one).
        anon = str(tmp_path / "anon.wal")
        writer = WalWriter.create(anon, rotate_bytes=100)
        fill(writer, 10)
        writer.close()
        assert writer.rotations == 0 and not list_segments(anon)

    def test_meta_sidecar_round_trip_and_damage(self, tmp_path):
        path = str(tmp_path / "run.wal")
        write_meta_sidecar(path, META)
        assert read_meta_sidecar(path) == META
        # Idempotent: rewriting with different content keeps the original.
        write_meta_sidecar(path, {"other": True})
        assert read_meta_sidecar(path) == META
        with open(path + META_SIDECAR_SUFFIX, "a", encoding="utf-8") as f:
            f.write("garbage")
        with pytest.raises(WalCorruptError):
            read_meta_sidecar(path)


class TestCompaction:
    def _rotated(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path, rotate_bytes=200, wal_meta=META)
        writer.append("meta", META)
        fill(writer, 10)
        return path, writer

    def test_compact_deletes_only_superseded_segments(self, tmp_path):
        path, writer = self._rotated(tmp_path)
        segments = list_segments(path)
        assert len(segments) >= 2
        cut = segments[0][1]  # last seq of segment one
        removed = writer.compact(cut)
        assert removed == 1
        assert writer.segments_deleted == 1
        remaining = list_segments(path)
        assert [s[2] for s in segments[1:]] == [s[2] for s in remaining]
        # The chain now starts past 1 and pulls meta from the sidecar.
        chain = read_wal_chain(path)
        assert chain.first_seq == cut + 1
        assert chain.meta == META
        writer.close()

    def test_compact_never_deletes_partially_covered_or_active(
        self, tmp_path
    ):
        path, writer = self._rotated(tmp_path)
        segments = list_segments(path)
        mid = segments[0][1] - 1  # strictly inside segment one
        assert writer.compact(mid) == 0
        assert writer.compact(10_000) == len(segments)
        writer.close()
        assert os.path.exists(path)  # active file always survives

    def test_compact_requires_meta_sidecar(self, tmp_path):
        path, writer = self._rotated(tmp_path)
        os.remove(path + META_SIDECAR_SUFFIX)
        assert writer.compact(10_000) == 0
        writer.close()

    def test_full_compaction_chain_still_reads(self, tmp_path):
        """Every archived segment deleted: the sidecar's base_seq marker
        is all that anchors the active file's sequence numbers.  (The
        long-lived-server bug: without the marker the chain read the
        active file with base 0 and refused the whole log.)"""
        path, writer = self._rotated(tmp_path)
        segments = list_segments(path)
        last_archived = segments[-1][1]
        assert writer.compact(last_archived) == len(segments)
        assert list_segments(path) == []
        writer.close()
        chain = read_wal_chain(path)
        assert chain.first_seq == last_archived + 1
        assert chain.active_base_seq == last_archived + 1
        assert chain.meta == META

    def test_full_compaction_survives_further_rotations(self, tmp_path):
        """Compact everything, keep writing and rotating, read it back —
        the serve soak's steady state."""
        path, writer = self._rotated(tmp_path)
        writer.compact(10_000)
        fill(writer, 10, start=writer.last_seq + 1)
        last = writer.last_seq
        writer.close()
        chain = read_wal_chain(path)
        assert chain.records[-1].seq == last
        assert chain.records[0].seq == chain.first_seq

    def test_missing_segment_after_compaction_refuses(self, tmp_path):
        path, writer = self._rotated(tmp_path)
        segments = list_segments(path)
        assert len(segments) >= 2
        writer.compact(segments[0][1])  # legitimately drop segment one
        os.remove(list_segments(path)[0][2])  # then lose the next one
        writer.close()
        with pytest.raises(WalCorruptError, match="missing"):
            read_wal_chain(path)


class TestChainDamage:
    def _rotated_path(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path, rotate_bytes=200, wal_meta=META)
        writer.append("meta", META)
        fill(writer, 10)
        writer.close()
        return path

    def test_missing_middle_segment_refuses(self, tmp_path):
        path = self._rotated_path(tmp_path)
        segments = list_segments(path)
        assert len(segments) >= 2
        os.remove(segments[1][2])
        with pytest.raises(WalCorruptError, match="missing"):
            read_wal_chain(path)

    def test_truncated_archived_segment_refuses(self, tmp_path):
        path = self._rotated_path(tmp_path)
        first, last, file = list_segments(path)[0]
        size = os.path.getsize(file)
        with open(file, "r+b") as handle:
            handle.truncate(size - 10)
        with pytest.raises(WalCorruptError, match="damaged or truncated"):
            read_wal_chain(path)

    def test_renamed_segment_with_wrong_range_refuses(self, tmp_path):
        path = self._rotated_path(tmp_path)
        first, last, file = list_segments(path)[0]
        os.rename(file, segment_path(path, first + 1, last + 1))
        with pytest.raises(WalCorruptError):
            read_wal_chain(path)

    def test_missing_active_is_the_torn_rotation_window(self, tmp_path):
        path = self._rotated_path(tmp_path)
        os.remove(path)
        chain = read_wal_chain(path)
        assert not chain.active_exists
        assert chain.records  # the archived chain is still durable
        assert chain.meta == META
        # A writer resuming at the chain's next_seq recreates the active
        # file (durable offset 0 = nothing durable lived in it).
        writer = WalWriter.continue_log(path, 0, chain.next_seq)
        writer.commit("boundary", {"cycle": 99})
        writer.close()
        tail = read_wal_chain(path)
        assert tail.records[-1].seq == chain.next_seq

    def test_empty_directory_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_wal_chain(str(tmp_path / "never.wal"))


class TestRecoveryAcrossSegments:
    def _run_crashed(self, tmp_path, checkpoint=True, site="commit.post",
                     after=6):
        wal_path = str(tmp_path / "run.wal")
        ckpt_path = str(tmp_path / "run.ckpt") if checkpoint else None
        crashpoints = Crashpoints()
        crashpoints.arm(site, after=after)
        system = build_system()
        run = DurableRun.start(
            system,
            wal_path,
            PROGRAM,
            dict(CONFIG),
            crashpoints=crashpoints,
            checkpoint_path=ckpt_path,
            checkpoint_every=3 if checkpoint else 0,
            fsync_every=1,
            wal_rotate_bytes=256,
        )
        with pytest.raises(SimulatedCrash):
            run.run()
            raise AssertionError("crashpoint never fired")
        run.abandon()
        return wal_path, ckpt_path

    def _reference_output(self):
        system = build_system()
        system.run()
        return list(system.output)

    def test_recover_across_segments_matches_reference(self, tmp_path):
        wal_path, ckpt_path = self._run_crashed(tmp_path)
        assert list_segments(wal_path)  # the crash really spanned segments
        state = recover(wal_path, ckpt_path)
        run = DurableRun.resume(
            state,
            checkpoint_path=ckpt_path,
            checkpoint_every=3,
            wal_rotate_bytes=256,
        )
        run.run()
        run.close()
        assert list(state.system.output) == self._reference_output()

    def test_checkpoint_compacts_and_recovery_still_works(self, tmp_path):
        wal_path, ckpt_path = self._run_crashed(tmp_path, after=10)
        state = recover(wal_path, ckpt_path)
        # Compaction happened (the chain no longer starts at seq 1) —
        # recovery went through the checkpoint fast path.
        chain = read_wal_chain(wal_path)
        if chain.first_seq > 1:
            assert state.checkpoint_used
        run = DurableRun.resume(
            state, checkpoint_path=ckpt_path, checkpoint_every=3,
            wal_rotate_bytes=256,
        )
        run.run()
        run.close()
        assert list(state.system.output) == self._reference_output()

    def test_compacted_log_without_checkpoint_refuses(self, tmp_path):
        wal_path, _ = self._run_crashed(tmp_path, checkpoint=True, after=10)
        chain = read_wal_chain(wal_path)
        if chain.first_seq == 1:  # force the condition deterministically
            writer = WalWriter.continue_log(
                wal_path, chain.active_offset(chain.records[-1].seq),
                chain.next_seq, rotate_bytes=256, wal_meta=META,
                _segment_first_seq=chain.active_base_seq,
            )
            writer.compact(list_segments(wal_path)[0][1])
            writer.close()
        segments = list_segments(wal_path)
        if segments:
            cut = segments[0][1]
            writer = WalWriter.continue_log(
                wal_path, read_wal_chain(wal_path).active_offset(10**9),
                read_wal_chain(wal_path).next_seq, wal_meta=META,
            )
            writer.compact(cut)
            writer.close()
        assert read_wal_chain(wal_path).first_seq > 1
        with pytest.raises(RecoveryError, match="checkpoint"):
            recover(wal_path, None)

    def test_crash_in_rotation_window_recovers(self, tmp_path):
        # The first rotations happen while the setup records are written;
        # arming the third leaves committed boundaries behind the crash.
        wal_path, ckpt_path = self._run_crashed(
            tmp_path, site="wal.rotate", after=3
        )
        assert not os.path.exists(wal_path)  # archived but no new active
        state = recover(wal_path, ckpt_path)
        run = DurableRun.resume(
            state, checkpoint_path=ckpt_path, checkpoint_every=3,
            wal_rotate_bytes=256,
        )
        run.run()
        run.close()
        assert list(state.system.output) == self._reference_output()
