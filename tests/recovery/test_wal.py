"""The write-ahead log: record codecs, durability model, damage handling."""

import json

import pytest

from repro.delta import Delta, DeltaBatch
from repro.errors import RecoveryError, WalCorruptError
from repro.recovery import WalWriter, read_wal
from repro.recovery.wal import (
    decode_batch,
    decode_fired,
    encode_batch,
    encode_fired,
)
from repro.storage.tuples import StoredTuple


def wme(relation="item", tid=1, timetag=1, values=(1, 2)):
    return StoredTuple(
        relation=relation, tid=tid, timetag=timetag, values=tuple(values)
    )


class TestCodecs:
    def test_batch_round_trip(self):
        batch = DeltaBatch(
            [
                Delta("insert", wme(tid=1)),
                Delta("delete", wme(tid=2, values=("x", 3.5))),
            ]
        )
        decoded = decode_batch(json.loads(json.dumps(encode_batch(batch))))
        assert list(decoded) == list(batch)

    def test_fired_round_trip_preserves_key_tuples(self):
        triple = (4, "r1", ("r1", (("item", 7), None, ("other", 2))))
        wire = json.loads(json.dumps(encode_fired(triple)))
        assert decode_fired(wire) == triple


class TestWriterAndReader:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path)
        writer.append("meta", {"version": 1, "program": "(p ...)"})
        writer.log_batch(DeltaBatch([Delta("insert", wme())]))
        writer.commit("boundary", {"cycle": 1})
        writer.close()
        result = read_wal(path)
        assert not result.torn
        assert [r.kind for r in result.records] == [
            "meta", "batch", "boundary",
        ]
        assert [r.seq for r in result.records] == [1, 2, 3]
        assert result.next_seq == 4

    def test_unsynced_appends_are_not_durable(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path, fsync_every=100)
        writer.commit("boundary", {"cycle": 0})
        writer.append("batch", {"deltas": []})
        writer.append("batch", {"deltas": []})
        writer.abandon()  # process death: buffered records are lost
        result = read_wal(path)
        assert [r.kind for r in result.records] == ["boundary"]

    def test_fsync_every_batches_syncs(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path, fsync_every=3)
        for _ in range(7):
            writer.append("batch", {"deltas": []})
        assert writer.syncs == 2  # at records 3 and 6; the 7th is buffered
        assert len(read_wal(path).records) == 6
        writer.close()
        assert len(read_wal(path).records) == 7

    def test_commit_always_syncs(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path, fsync_every=1000)
        writer.append("batch", {"deltas": []})
        writer.commit("boundary", {"cycle": 1})
        assert len(read_wal(path).records) == 2
        writer.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path)
        writer.commit("boundary", {"cycle": 1})
        writer.commit("boundary", {"cycle": 2})
        writer.close()
        with open(path, "r+b") as handle:
            handle.truncate(handle.seek(0, 2) - 10)
        result = read_wal(path)
        assert result.torn
        assert [r.body["cycle"] for r in result.records] == [1]
        assert result.durable_offset == result.records[-1].end_offset

    def test_final_record_without_newline_is_torn(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path)
        writer.commit("boundary", {"cycle": 1})
        writer.close()
        with open(path, "r+b") as handle:
            handle.truncate(handle.seek(0, 2) - 1)  # strip the newline only
        result = read_wal(path)
        assert result.torn
        assert result.records == []

    def test_bad_checksum_mid_log_is_corrupt(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path)
        writer.commit("boundary", {"cycle": 1})
        writer.commit("boundary", {"cycle": 2})
        writer.commit("boundary", {"cycle": 3})
        writer.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"cycle":2', b'"cycle":9')
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(WalCorruptError):
            read_wal(path)

    def test_sequence_gap_mid_log_is_corrupt(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path)
        for cycle in range(1, 5):
            writer.commit("boundary", {"cycle": cycle})
        writer.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.writelines([lines[0], lines[2], lines[3]])
        with pytest.raises(WalCorruptError):
            read_wal(path)

    def test_trailing_record_with_wrong_seq_is_debris(self, tmp_path):
        """A valid-checksum record with the wrong sequence number at the
        very tail (nothing valid after it) is dropped like a torn tail —
        only damage *inside* the log is refused."""
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path)
        for cycle in range(1, 4):
            writer.commit("boundary", {"cycle": cycle})
        writer.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.writelines([lines[0], lines[2]])
        result = read_wal(path)
        assert result.torn
        assert [r.body["cycle"] for r in result.records] == [1]

    def test_continue_log_truncates_dead_suffix(self, tmp_path):
        path = str(tmp_path / "run.wal")
        writer = WalWriter.create(path)
        writer.commit("boundary", {"cycle": 1})
        writer.close()
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "garbage...')
        result = read_wal(path)
        assert result.torn
        writer = WalWriter.continue_log(
            path, result.durable_offset, result.next_seq
        )
        writer.commit("boundary", {"cycle": 2})
        writer.close()
        reread = read_wal(path)
        assert not reread.torn
        assert [r.body["cycle"] for r in reread.records] == [1, 2]

    def test_continue_log_beyond_eof_refused(self, tmp_path):
        path = str(tmp_path / "run.wal")
        WalWriter.create(path).close()
        with pytest.raises(RecoveryError):
            WalWriter.continue_log(path, durable_offset=999, next_seq=1)
