"""Fault-injection registry semantics and the writer's play-dead rule."""

import pytest

from repro.recovery import (
    CRASH_SITES,
    Crashpoints,
    SimulatedCrash,
    WalWriter,
    read_wal,
)


class TestRegistry:
    def test_unarmed_sites_count_without_raising(self):
        crashpoints = Crashpoints()
        for _ in range(3):
            crashpoints.hit("wal.pre_sync")
        assert crashpoints.hits("wal.pre_sync") == 3
        assert crashpoints.crashed is None

    def test_armed_site_fires_on_nth_hit(self):
        crashpoints = Crashpoints()
        crashpoints.arm("commit.pre", after=2)
        crashpoints.hit("commit.pre")
        with pytest.raises(SimulatedCrash) as excinfo:
            crashpoints.hit("commit.pre")
        assert excinfo.value.site == "commit.pre"
        assert crashpoints.crashed == "commit.pre"

    def test_hits_after_the_crash_are_ignored(self):
        crashpoints = Crashpoints()
        crashpoints.arm("wal.pre_append")
        with pytest.raises(SimulatedCrash):
            crashpoints.hit("wal.pre_append")
        crashpoints.hit("wal.pre_append")  # the process is already dead
        assert crashpoints.hits("wal.pre_append") == 1

    def test_unknown_site_refused(self):
        with pytest.raises(ValueError):
            Crashpoints().arm("wal.nonsense")

    def test_after_must_be_positive(self):
        with pytest.raises(ValueError):
            Crashpoints().arm("commit.pre", after=0)

    def test_every_documented_site_is_armable(self):
        crashpoints = Crashpoints()
        for site in CRASH_SITES:
            crashpoints.arm(site, after=10_000)


class TestWriterPlaysDead:
    def test_crashed_writer_drops_everything_silently(self, tmp_path):
        path = str(tmp_path / "run.wal")
        crashpoints = Crashpoints()
        writer = WalWriter.create(
            path, crashpoints=crashpoints, fsync_every=100
        )
        writer.commit("boundary", {"cycle": 1})
        writer.append("batch", {"deltas": []})  # buffered, never synced
        crashpoints.arm("wal.pre_sync")
        with pytest.raises(SimulatedCrash):
            writer.sync()
        assert writer.dead
        # finally-block style cleanup after the crash must not leak
        # anything onto disk: appends no-op, sync no-ops, close is safe.
        writer.append("batch", {"deltas": []})
        writer.commit("boundary", {"cycle": 2})
        writer.abandon()
        assert [r.body["cycle"] for r in read_wal(path).records] == [1]
