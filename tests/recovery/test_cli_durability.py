"""The durability verbs on the CLI: ``run --wal``, ``resume``,
``stats --flamegraph`` and ``check --crash`` / ``--resolutions``."""

import os

import pytest

from repro.cli import main

PROGRAM = """
(literalize Counter value limit)
(p count-up
    (Counter ^value <V> ^limit {<L> > <V>})
    -->
    (modify 1 ^value (compute <V> + 1))
    (write |now at| (compute <V> + 1)))
(make Counter ^value 0 ^limit 3)
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "counter.ops"
    path.write_text(PROGRAM)
    return str(path)


class TestRunWithWal:
    def test_wal_run_behaves_like_plain_run(self, program_file, tmp_path,
                                            capsys):
        wal = str(tmp_path / "run.wal")
        assert main(["run", program_file, "--wal", wal]) == 0
        out = capsys.readouterr().out
        assert "3 cycles" in out
        assert "write: now at 3" in out
        assert os.path.exists(wal)

    def test_checkpoint_lands_next_to_the_wal(self, program_file, tmp_path,
                                              capsys):
        wal = str(tmp_path / "run.wal")
        assert main(
            ["run", program_file, "--wal", wal, "--checkpoint-every", "1"]
        ) == 0
        assert os.path.exists(wal + ".ckpt")

    def test_checkpoint_flags_without_wal_rejected(self, program_file,
                                                   capsys):
        assert main(
            ["run", program_file, "--checkpoint-every", "2"]
        ) == 2
        assert "--wal" in capsys.readouterr().err


class TestResume:
    def test_resume_a_finished_run_is_quiescent(self, program_file,
                                                tmp_path, capsys):
        wal = str(tmp_path / "run.wal")
        assert main(["run", program_file, "--wal", wal, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["resume", wal]) == 0
        out = capsys.readouterr().out
        assert f"recovered {wal}" in out
        assert "0 cycles after recovery, quiescent" in out
        # The recovered WM matches the finished run's.
        assert "Counter" in out and "3" in out

    def test_resume_uses_the_checkpoint(self, program_file, tmp_path,
                                        capsys):
        wal = str(tmp_path / "run.wal")
        assert main(
            ["run", program_file, "--wal", wal, "--checkpoint-every", "1",
             "--quiet"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["resume", wal, "--checkpoint", wal + ".ckpt", "--quiet"]
        ) == 0
        assert "checkpoint" in capsys.readouterr().out

    def test_resume_without_a_log_fails_cleanly(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "absent.wal")]) == 2
        assert "error" in capsys.readouterr().err


class TestFlamegraph:
    def test_program_run_folds_to_stacks(self, program_file, capsys):
        assert main(["stats", program_file, "--flamegraph"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines, "expected collapsed stacks on stdout"
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        roots = {line.split(" ")[0].split(";")[0] for line in lines}
        assert {"act", "select"} <= roots

    def test_trace_file_folds_and_shows_fsync(self, program_file, tmp_path,
                                              capsys):
        wal = str(tmp_path / "run.wal")
        trace = str(tmp_path / "t.jsonl")
        assert main(
            ["run", program_file, "--wal", wal, "--trace-out", trace,
             "--quiet"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", trace, "--flamegraph"]) == 0
        out = capsys.readouterr().out
        assert "recovery.fsync" in out

    def test_output_file_target(self, program_file, tmp_path, capsys):
        folded = str(tmp_path / "out.folded")
        assert main(
            ["stats", program_file, "--flamegraph", folded]
        ) == 0
        assert "stacks ->" in capsys.readouterr().out
        assert os.path.getsize(folded) > 0


class TestCheckAxes:
    def test_unknown_resolution_rejected(self, capsys):
        assert main(
            ["check", "--budget", "1", "--resolutions", "nonesuch"]
        ) == 2
        assert "nonesuch" in capsys.readouterr().err

    def test_resolutions_axis_runs(self, capsys):
        assert main(
            ["check", "--budget", "2", "--resolutions", "mea,fifo",
             "--strategies", "rete", "--backends", "memory",
             "--batch-sizes", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "2/2 traces" in out and "OK" in out

    def test_crash_campaign_runs(self, capsys):
        assert main(
            ["check", "--budget", "2", "--crash", "--backends", "memory",
             "--batch-sizes", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "2/2 traces" in out
        assert "recover" in out
        assert "OK" in out
