"""Crash-recovery equivalence: every crashpoint site, both backends.

Each case runs one generated trace three ways — plain reference, an
uninterrupted WAL-attached dry run, and a run crashed at a pinned site
then recovered and finished — and asserts the harness found no
divergence in checkpoints, fired sequence, output, final WM or final
conflict set.
"""

import pytest

from repro.check import run_crash_check, run_crash_trace
from repro.check.generator import generate_trace
from repro.recovery import CRASH_SITES

BACKENDS = ("memory", "sqlite")


@pytest.fixture(scope="module")
def trace():
    return generate_trace(3, 1)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("site", sorted(CRASH_SITES))
def test_every_site_recovers_equivalently(trace, backend, site, tmp_path):
    # txn.* sites only exist inside §5.2 scheduler rounds; wal.rotate
    # needs a segment budget small enough that this trace's log rotates.
    exec_mode = "txn" if site.startswith("txn.") else "cycle"
    rotate = 256 if site == "wal.rotate" else None
    finding, stats = run_crash_trace(
        trace,
        backend=backend,
        batch_size=8,
        site=site,
        after=1,
        checkpoint_every=2,
        workdir=str(tmp_path),
        exec_mode=exec_mode,
        wal_rotate_bytes=rotate,
    )
    assert finding is None, finding.describe()
    assert stats["crashed"] == site
    assert stats["recovered"] or stats["restarted"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batch_size", (1, "auto"))
def test_batch_size_axis_recovers_equivalently(
    trace, backend, batch_size, tmp_path
):
    finding, stats = run_crash_trace(
        trace,
        backend=backend,
        batch_size=batch_size,
        site="commit.pre",
        after=3,
        checkpoint_every=2,
        workdir=str(tmp_path),
    )
    assert finding is None, finding.describe()
    assert stats["crashed"] == "commit.pre"
    assert stats["recovered"]


def test_late_crash_hits_checkpoint_fast_path(trace, tmp_path):
    """A crash well past the first checkpoint recovers through the
    checkpoint + log-tail path rather than full replay."""
    finding, stats = run_crash_trace(
        trace,
        backend="memory",
        batch_size=8,
        site="commit.post",
        after=4,
        checkpoint_every=1,
        workdir=str(tmp_path),
    )
    assert finding is None, finding.describe()
    assert stats["crashed"] == "commit.post"
    assert stats["recovered"]


def test_campaign_smoke():
    report = run_crash_check(budget=4, seed=11)
    assert report.ok
    assert report.traces_run == 4
    assert report.crashes_fired >= 1
    assert "OK" in report.summary()
