"""Write-ahead ordering between the WAL and a SQLite-backed catalog.

A file-backed database is a second durable store; without coordination a
crash between the SQLite COMMIT and the WAL append leaves rows in the
database the log never heard of — recovery would then double-apply them
on replay.  ``Catalog.transaction(pre_commit=...)`` closes the window:
the working memory appends *and fsyncs* each batch's WAL record inside
the hook, before the backend COMMIT, so at every crashpoint the database
is at or behind the durable log, never ahead of it.
"""

import json
import sqlite3

import pytest

from repro.engine import ProductionSystem
from repro.recovery.crashpoints import Crashpoints, SimulatedCrash
from repro.recovery.wal import WalWriter

PROGRAM = """
(literalize ev n)
"""


def make_system(tmp_path, backend="sqlite"):
    path = str(tmp_path / "wm.db") if backend == "sqlite" else None
    return ProductionSystem(PROGRAM, backend=backend, path=path)


def attach_wal(system, tmp_path, crashpoints=None, fsync_every=10_000):
    writer = WalWriter.create(
        str(tmp_path / "run.wal"),
        fsync_every=fsync_every,
        crashpoints=crashpoints,
    )
    system.wm.wal = writer
    return writer


def flush_one(system, n):
    # A crashed flush leaves the batch scope open (a killed process has
    # no one to close it); re-enter it rather than re-opening.
    if not system.wm.batching:
        system.wm.begin_batch()
    system.wm.insert("ev", {"n": n})
    system.wm.end_batch()


def db_rows(tmp_path):
    with sqlite3.connect(str(tmp_path / "wm.db")) as connection:
        return connection.execute(
            "SELECT COUNT(*) FROM t_ev"
        ).fetchone()[0]


def wal_batches(tmp_path):
    records = []
    with open(tmp_path / "run.wal", encoding="utf-8") as handle:
        for line in handle:
            records.append(json.loads(line))
    return [r for r in records if r["kind"] == "batch"]


class TestWriteAheadOrdering:
    def test_commit_waits_on_the_wal_fsync(self, tmp_path):
        """The batch record is durable on disk by the time the SQLite
        transaction commits — even under a lazy fsync cadence."""
        system = make_system(tmp_path)
        writer = attach_wal(system, tmp_path, fsync_every=10_000)
        flush_one(system, 1)
        # the pre-commit hook forced the sync; nothing is buffered
        assert writer.syncs == 1
        assert writer.pending_records == 0
        assert len(wal_batches(tmp_path)) == 1
        assert db_rows(tmp_path) == 1

    def test_pre_commit_runs_inside_the_open_transaction(self, tmp_path):
        """The hook fires after the writes, before COMMIT."""
        system = make_system(tmp_path)
        catalog = system.wm.catalog
        seen = {}

        def probe():
            seen["in_transaction"] = catalog._connection.in_transaction

        with catalog.transaction(pre_commit=probe):
            pass
        assert seen == {"in_transaction": True}
        assert not catalog._connection.in_transaction

    def test_memory_backend_keeps_lazy_group_cadence(self, tmp_path):
        """No second durable store, no forced fsync: the memory backend
        leaves sync scheduling to fsync_every / the group barrier."""
        system = make_system(tmp_path, backend="memory")
        writer = attach_wal(system, tmp_path, fsync_every=10_000)
        flush_one(system, 1)
        assert writer.syncs == 0
        assert writer.pending_records == 1


class TestCrashpointOrdering:
    """Walk the crash sites inside the write-ahead window and assert the
    database never ends up ahead of the durable log."""

    @pytest.mark.parametrize(
        "site", ["wal.pre_append", "wal.post_append", "wal.pre_sync"]
    )
    def test_crash_before_durability_rolls_the_database_back(
        self, tmp_path, site
    ):
        """Dying while the batch record is still non-durable (before its
        fsync completed) must abort the SQLite transaction too."""
        crashpoints = Crashpoints()
        system = make_system(tmp_path)
        attach_wal(system, tmp_path, crashpoints=crashpoints)
        flush_one(system, 1)  # batch 1 is fully durable
        crashpoints.arm(site, after={"wal.pre_append": 2,
                                     "wal.post_append": 2,
                                     "wal.pre_sync": 2}[site])
        with pytest.raises(SimulatedCrash):
            flush_one(system, 2)
        # the crashed batch reached neither store: DB == durable log
        assert db_rows(tmp_path) == 1
        assert len(wal_batches(tmp_path)) == 1

    def test_crash_after_fsync_commits_both_stores(self, tmp_path):
        """Past the fsync the record is durable; the COMMIT that follows
        may land (crash here is *after* the write-ahead window)."""
        crashpoints = Crashpoints()
        system = make_system(tmp_path)
        attach_wal(system, tmp_path, crashpoints=crashpoints)
        flush_one(system, 1)
        crashpoints.arm("wal.post_sync", after=2)
        with pytest.raises(SimulatedCrash):
            flush_one(system, 2)
        # the log kept the record — recovery replays it; whether the
        # database also kept the rows is immaterial (it is rebuilt from
        # the log), but it must never exceed the log
        assert len(wal_batches(tmp_path)) == 2
        assert db_rows(tmp_path) <= 2

    def test_dead_log_refuses_the_commit_silently(self, tmp_path):
        """After the simulated crash the writer is dead: later flushes
        (finally-block cleanups and the like) append nothing durable, so
        the database must not commit their rows either."""
        crashpoints = Crashpoints()
        system = make_system(tmp_path)
        attach_wal(system, tmp_path, crashpoints=crashpoints)
        flush_one(system, 1)
        crashpoints.arm("wal.pre_sync", after=2)
        with pytest.raises(SimulatedCrash):
            flush_one(system, 2)
        flush_one(system, 3)  # no raise: the dead log swallows it
        assert db_rows(tmp_path) == 1
        assert len(wal_batches(tmp_path)) == 1
