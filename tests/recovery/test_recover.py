"""Durable runs end to end: crash, recover, resume, and edge cases."""

import json
import zlib

import pytest

from repro.engine import ProductionSystem
from repro.errors import RecoveryError
from repro.recovery import (
    CheckpointError,
    Crashpoints,
    DurableRun,
    SimulatedCrash,
    load_checkpoint,
    recover,
    resume_run,
)

PROGRAM = """
(literalize counter n)
(literalize limit max)
(p bump
    (counter ^n <x>)
    (limit ^max > <x>)
    -->
    (modify 1 ^n (compute <x> + 1))
    (write (compute <x> + 1)))
(p stop
    (counter ^n <x>)
    (limit ^max <x>)
    -->
    (halt))
(make counter ^n 0)
(make limit ^max 5)
"""

BACKENDS = ("memory", "sqlite")


def config(backend="memory", **overrides):
    base = {
        "strategy": "rete",
        "resolution": "lex",
        "backend": backend,
        "seed": 0,
        "batch_size": 1,
        "firing": "instance",
    }
    base.update(overrides)
    return base


def build(backend="memory", **overrides):
    cfg = config(backend, **overrides)
    return ProductionSystem(
        PROGRAM,
        strategy=cfg["strategy"],
        resolution=cfg["resolution"],
        backend=cfg["backend"],
        seed=cfg["seed"],
        batch_size=cfg["batch_size"],
    ), cfg


def wm_rows(system):
    return {
        name: sorted(
            (wme.tid, wme.timetag, wme.values)
            for wme in system.wm.tuples(name)
        )
        for name in system.wm.schemas
    }


def fired_triples(records):
    return [
        (r.cycle, r.instantiation.rule_name, r.instantiation.key)
        for r in records
    ]


def reference(backend="memory", **overrides):
    system, _ = build(backend, **overrides)
    result = system.run()
    return {
        "output": list(system.output),
        "wm": wm_rows(system),
        "fired": fired_triples(result.fired),
        "halted": result.halted,
    }


@pytest.mark.parametrize("backend", BACKENDS)
class TestCrashRecoverResume:
    def test_resumed_run_matches_uninterrupted(self, tmp_path, backend):
        expected = reference(backend)
        wal = str(tmp_path / "run.wal")
        crashpoints = Crashpoints()
        crashpoints.arm("commit.pre", after=3)  # mid-run boundary
        system, cfg = build(backend)
        run = DurableRun.start(
            system, wal, PROGRAM, cfg, crashpoints=crashpoints
        )
        with pytest.raises(SimulatedCrash):
            run.run()
        run.abandon()

        state = recover(wal)
        assert state.cycle >= 1  # some progress survived
        result = resume_run(state)
        assert result.halted
        resumed = state.system
        assert list(resumed.output) == expected["output"]
        assert wm_rows(resumed) == expected["wm"]
        assert (
            list(state.fired) + fired_triples(result.fired)
            == expected["fired"]
        )

    def test_checkpoint_fast_path_matches_full_replay(self, tmp_path, backend):
        expected = reference(backend)
        wal = str(tmp_path / "run.wal")
        ckpt = str(tmp_path / "run.ckpt")
        crashpoints = Crashpoints()
        crashpoints.arm("wal.pre_sync", after=5)
        system, cfg = build(backend)
        run = DurableRun.start(
            system, wal, PROGRAM, cfg,
            crashpoints=crashpoints,
            checkpoint_path=ckpt,
            checkpoint_every=2,
            include_rete=True,
        )
        with pytest.raises(SimulatedCrash):
            run.run()
        run.abandon()

        with_ckpt = recover(wal, ckpt)
        assert with_ckpt.checkpoint_used
        without = recover(wal)
        assert not without.checkpoint_used
        assert wm_rows(with_ckpt.system) == wm_rows(without.system)
        assert with_ckpt.fired == without.fired

        result = resume_run(with_ckpt, checkpoint_path=ckpt)
        assert result.halted
        assert list(with_ckpt.system.output) == expected["output"]
        assert wm_rows(with_ckpt.system) == expected["wm"]

    def test_ghost_tids_and_timetags_survive_recovery(self, tmp_path, backend):
        """A netted insert+delete consumes a tid and a timetag without ever
        touching storage; a resumed run must not re-issue them."""
        wal = str(tmp_path / "run.wal")
        system, cfg = build(backend)
        run = DurableRun.start(system, wal, PROGRAM, cfg)
        with system.wm.batch():
            ghost = system.wm.insert("counter", (77,))
            system.wm.remove(ghost)
        run.ops_boundary(1)
        keeper = system.wm.insert("counter", (88,))
        run.ops_boundary(2)
        run.close()

        state = recover(wal)
        fresh = state.system.wm.insert("counter", (99,))
        assert fresh.tid not in (ghost.tid, keeper.tid)
        assert fresh.tid > keeper.tid > ghost.tid
        assert fresh.timetag > keeper.timetag


class TestRecoveryRefusals:
    def test_log_without_a_boundary_is_unrecoverable(self, tmp_path):
        wal = str(tmp_path / "run.wal")
        crashpoints = Crashpoints()
        crashpoints.arm("commit.pre", after=1)  # die at the setup boundary
        system, cfg = build()
        with pytest.raises(SimulatedCrash):
            DurableRun.start(system, wal, PROGRAM, cfg, crashpoints=crashpoints)
        with pytest.raises(RecoveryError):
            recover(wal)

    def test_checkpoint_from_another_program_refused(self, tmp_path):
        wal = str(tmp_path / "run.wal")
        ckpt = str(tmp_path / "run.ckpt")
        system, cfg = build()
        run = DurableRun.start(
            system, wal, PROGRAM, cfg, checkpoint_path=ckpt,
            checkpoint_every=1,
        )
        run.run()
        run.close()
        # Rewrite the checkpoint's program binding (with a fresh crc, so
        # only the cross-check against the log can catch it).
        body = load_checkpoint(ckpt)
        body["program_crc"] = body["program_crc"] ^ 1
        payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
        with open(ckpt, "w", encoding="utf-8") as handle:
            json.dump(
                {"body": body, "crc": zlib.crc32(payload.encode("utf-8"))},
                handle,
            )
        with pytest.raises(CheckpointError):
            recover(wal, ckpt)

    def test_checkpoint_newer_than_log_refused(self, tmp_path):
        """A checkpoint pointing past the durable log (e.g. the log was
        restored from an older backup) must be refused, not trusted."""
        wal = str(tmp_path / "run.wal")
        ckpt = str(tmp_path / "run.ckpt")
        system, cfg = build()
        run = DurableRun.start(
            system, wal, PROGRAM, cfg, checkpoint_path=ckpt,
            checkpoint_every=1,
        )
        run.run()
        run.close()
        body = load_checkpoint(ckpt)
        body["wal_seq"] = body["wal_seq"] + 1000
        payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
        with open(ckpt, "w", encoding="utf-8") as handle:
            json.dump(
                {"body": body, "crc": zlib.crc32(payload.encode("utf-8"))},
                handle,
            )
        with pytest.raises(CheckpointError):
            recover(wal, ckpt)


class TestLifecycle:
    def test_double_recovery_of_a_finished_log(self, tmp_path):
        wal = str(tmp_path / "run.wal")
        expected = reference()
        system, cfg = build()
        run = DurableRun.start(system, wal, PROGRAM, cfg)
        result = run.run()
        assert result.halted
        run.close()

        first = recover(wal)
        assert first.halted
        assert resume_run(first).cycles == 0  # nothing left to do
        second = recover(wal)  # recovery itself must be repeatable
        assert second.halted
        assert wm_rows(second.system) == expected["wm"]
        assert list(second.system.output) == expected["output"]
        assert second.fired == expected["fired"]

    def test_wal_attachment_changes_nothing(self, tmp_path):
        expected = reference()
        system, cfg = build()
        run = DurableRun.start(
            system, str(tmp_path / "run.wal"), PROGRAM, cfg
        )
        result = run.run()
        run.close()
        assert result.halted
        assert list(system.output) == expected["output"]
        assert wm_rows(system) == expected["wm"]
        assert fired_triples(result.fired) == expected["fired"]

    def test_txn_scheduler_commits_flow_into_the_wal(self, tmp_path):
        """§5 commit points: each concurrent firing's batched act flushes
        through ``wm.batch()``, so an attached WAL records one batch per
        committed transaction with no txn-layer changes."""
        from repro.txn import ConcurrentScheduler

        source = """
(literalize Seed x)
(literalize Done x)
(p promote (Seed ^x <v>) --> (remove 1) (make Done ^x <v>))
"""
        system = ProductionSystem(source)
        for i in range(3):
            system.insert("Seed", (i,))
        run = DurableRun.start(
            system,
            str(tmp_path / "txn.wal"),
            source,
            config(strategy="patterns"),
        )
        ConcurrentScheduler(system).run()
        run.ops_boundary(0)
        run.close()

        state = recover(str(tmp_path / "txn.wal"))
        assert state.replayed_batches >= 3  # setup + one per commit
        assert wm_rows(state.system) == wm_rows(system)
