"""Checkpoint files: round trip, damage refusal, atomic replacement."""

import json
import os

import pytest

from repro.engine import ProductionSystem
from repro.recovery import (
    Crashpoints,
    SimulatedCrash,
    CheckpointError,
    load_checkpoint,
    write_checkpoint,
)

PROGRAM = """
(literalize item n)
(p keep (item ^n <x>) --> (write <x>))
(make item ^n 1)
(make item ^n 2)
"""


def system(**kwargs):
    return ProductionSystem(PROGRAM, **kwargs)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        state = {"phase": "cycle", "cycle": 3, "fired": []}
        body = write_checkpoint(
            system(), path, wal_seq=7, state=state, program_crc=123
        )
        loaded = load_checkpoint(path)
        assert loaded == json.loads(json.dumps(body))
        assert loaded["wal_seq"] == 7
        assert loaded["program_crc"] == 123
        assert loaded["state"]["cycle"] == 3
        rows = loaded["relations"]["item"]
        assert [row[2] for row in rows] == [[1], [2]]
        assert loaded["tids"]["item"] >= max(row[0] for row in rows)

    def test_rete_snapshot_included_on_request(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        body = write_checkpoint(
            system(strategy="rete"), path, wal_seq=1, state={},
            include_rete=True,
        )
        assert "rete" in body
        assert any(body["rete"]["alpha"].values())

    def test_missing_file_loads_as_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent.ckpt")) is None


class TestDamage:
    def test_bad_checksum_refused(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(system(), path, wal_seq=1, state={})
        data = json.loads(open(path, encoding="utf-8").read())
        data["body"]["wal_seq"] = 99  # tamper without refreshing the crc
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_unparseable_file_refused(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_unknown_version_refused(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(system(), path, wal_seq=1, state={})
        data = json.loads(open(path, encoding="utf-8").read())
        data["body"]["version"] = 999
        import zlib

        payload = json.dumps(
            data["body"], sort_keys=True, separators=(",", ":")
        )
        data["crc"] = zlib.crc32(payload.encode("utf-8"))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestAtomicity:
    def test_crash_mid_checkpoint_keeps_previous(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        write_checkpoint(system(), path, wal_seq=1, state={"cycle": 1})
        crashpoints = Crashpoints()
        crashpoints.arm("checkpoint.mid")
        with pytest.raises(SimulatedCrash):
            write_checkpoint(
                system(), path, wal_seq=2, state={"cycle": 2},
                crashpoints=crashpoints,
            )
        # The rename never ran: the old checkpoint is intact, the new
        # content is stranded in the temp file.
        assert load_checkpoint(path)["wal_seq"] == 1
        assert os.path.exists(path + ".tmp")

    def test_write_is_refused_after_a_crash(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        crashpoints = Crashpoints()
        crashpoints.arm("checkpoint.mid")
        with pytest.raises(SimulatedCrash):
            write_checkpoint(
                system(), path, wal_seq=1, state={}, crashpoints=crashpoints
            )
        assert (
            write_checkpoint(
                system(), path, wal_seq=2, state={}, crashpoints=crashpoints
            )
            is None
        )
        assert load_checkpoint(path) is None  # nothing ever landed
