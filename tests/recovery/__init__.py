"""Tier-1 tests for repro.recovery: WAL, checkpoints, crash recovery."""
