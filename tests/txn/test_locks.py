"""Lock-manager tests: modes, granularities, upgrades, deadlock."""

import pytest

from repro.errors import TransactionError
from repro.txn import LockManager, relation_target, tuple_target

T1, T2, T3 = 1, 2, 3
EMP1 = tuple_target("Emp", 1)
EMP2 = tuple_target("Emp", 2)
EMP = relation_target("Emp")


@pytest.fixture
def locks():
    return LockManager()


class TestTupleLocks:
    def test_shared_locks_compatible(self, locks):
        assert locks.try_acquire(T1, EMP1, "S")
        assert locks.try_acquire(T2, EMP1, "S")

    def test_exclusive_blocks_shared(self, locks):
        assert locks.try_acquire(T1, EMP1, "X")
        assert not locks.try_acquire(T2, EMP1, "S")
        assert locks.waits_for[T2] == {T1}

    def test_shared_blocks_exclusive(self, locks):
        assert locks.try_acquire(T1, EMP1, "S")
        assert not locks.try_acquire(T2, EMP1, "X")

    def test_different_tuples_independent(self, locks):
        assert locks.try_acquire(T1, EMP1, "X")
        assert locks.try_acquire(T2, EMP2, "X")

    def test_reacquire_is_noop(self, locks):
        assert locks.try_acquire(T1, EMP1, "S")
        assert locks.try_acquire(T1, EMP1, "S")

    def test_upgrade_when_sole_holder(self, locks):
        assert locks.try_acquire(T1, EMP1, "S")
        assert locks.try_acquire(T1, EMP1, "X")
        assert locks.mode_of(T1, EMP1) == "X"

    def test_upgrade_blocked_by_other_reader(self, locks):
        assert locks.try_acquire(T1, EMP1, "S")
        assert locks.try_acquire(T2, EMP1, "S")
        assert not locks.try_acquire(T1, EMP1, "X")

    def test_x_implies_s(self, locks):
        assert locks.try_acquire(T1, EMP1, "X")
        assert locks.try_acquire(T1, EMP1, "S")  # no downgrade needed

    def test_unknown_mode(self, locks):
        with pytest.raises(TransactionError):
            locks.try_acquire(T1, EMP1, "Z")


class TestRelationLocks:
    def test_relation_s_blocks_insert_intent(self, locks):
        """§5.2: the negative-dependency read lock delays inserters."""
        assert locks.try_acquire(T1, EMP, "S")
        assert not locks.try_acquire(T2, EMP, "IX")

    def test_insert_intent_blocks_relation_s(self, locks):
        assert locks.try_acquire(T1, EMP, "IX")
        assert not locks.try_acquire(T2, EMP, "S")

    def test_insert_intents_compatible(self, locks):
        assert locks.try_acquire(T1, EMP, "IX")
        assert locks.try_acquire(T2, EMP, "IX")

    def test_relation_s_blocks_tuple_x(self, locks):
        assert locks.try_acquire(T1, EMP, "S")
        assert not locks.try_acquire(T2, EMP1, "X")

    def test_tuple_x_blocks_relation_s(self, locks):
        assert locks.try_acquire(T1, EMP1, "X")
        assert not locks.try_acquire(T2, EMP, "S")

    def test_relation_s_compatible_with_tuple_s(self, locks):
        assert locks.try_acquire(T1, EMP, "S")
        assert locks.try_acquire(T2, EMP1, "S")

    def test_other_relations_unaffected(self, locks):
        assert locks.try_acquire(T1, EMP, "S")
        assert locks.try_acquire(T2, relation_target("Dept"), "IX")


class TestRelease:
    def test_release_unblocks(self, locks):
        locks.try_acquire(T1, EMP1, "X")
        assert not locks.try_acquire(T2, EMP1, "S")
        locks.release_all(T1)
        assert locks.try_acquire(T2, EMP1, "S")

    def test_release_clears_waits_for(self, locks):
        locks.try_acquire(T1, EMP1, "X")
        locks.try_acquire(T2, EMP1, "S")
        locks.release_all(T2)
        assert T2 not in locks.waits_for

    def test_release_clears_cross_granularity_state(self, locks):
        locks.try_acquire(T1, EMP1, "X")
        locks.release_all(T1)
        assert locks.try_acquire(T2, EMP, "S")

    def test_held_by(self, locks):
        locks.try_acquire(T1, EMP1, "S")
        locks.try_acquire(T1, EMP, "IX")
        assert locks.held_by(T1) == {EMP1, EMP}


class TestDeadlockDetection:
    def test_no_deadlock_when_no_waiting(self, locks):
        locks.try_acquire(T1, EMP1, "X")
        assert locks.deadlocked() is None

    def test_simple_cycle_detected(self, locks):
        locks.try_acquire(T1, EMP1, "X")
        locks.try_acquire(T2, EMP2, "X")
        locks.try_acquire(T1, EMP2, "S")  # T1 waits on T2
        locks.try_acquire(T2, EMP1, "S")  # T2 waits on T1
        cycle = locks.deadlocked()
        assert cycle is not None
        assert set(cycle) == {T1, T2}

    def test_wait_chain_without_cycle(self, locks):
        locks.try_acquire(T1, EMP1, "X")
        locks.try_acquire(T2, EMP1, "S")  # T2 waits on T1
        locks.try_acquire(T3, EMP2, "X")
        assert locks.deadlocked() is None

    def test_three_way_cycle(self, locks):
        targets = [tuple_target("Emp", i) for i in (1, 2, 3)]
        for txn, target in zip((T1, T2, T3), targets):
            locks.try_acquire(txn, target, "X")
        locks.try_acquire(T1, targets[1], "S")
        locks.try_acquire(T2, targets[2], "S")
        locks.try_acquire(T3, targets[0], "S")
        cycle = locks.deadlocked()
        assert cycle is not None
        assert set(cycle) == {T1, T2, T3}

    def test_abort_breaks_cycle(self, locks):
        locks.try_acquire(T1, EMP1, "X")
        locks.try_acquire(T2, EMP2, "X")
        locks.try_acquire(T1, EMP2, "S")
        locks.try_acquire(T2, EMP1, "S")
        locks.release_all(T2)
        assert locks.deadlocked() is None
        assert locks.try_acquire(T1, EMP2, "S")
