"""Multi-round concurrent execution: Δadd across rounds (§5.2)."""

from repro.engine import ProductionSystem
from repro.txn import ConcurrentScheduler, is_serializable

CASCADE = """
(literalize Seed x)
(literalize Stage1 x)
(literalize Stage2 x)
(p first  (Seed ^x <V>)   --> (remove 1) (make Stage1 ^x <V>))
(p second (Stage1 ^x <V>) --> (remove 1) (make Stage2 ^x <V>))
"""


class TestRounds:
    def test_delta_add_forms_the_next_round(self):
        """Ψ2 is exactly the transactions the Ψ1 commits enabled."""
        system = ProductionSystem(CASCADE)
        for i in range(3):
            system.insert("Seed", (i,))
        scheduler = ConcurrentScheduler(system)
        result = scheduler.run()
        assert [r.transactions for r in result.rounds] == [3, 3]
        assert [r.committed for r in result.rounds] == [3, 3]
        assert len(list(system.wm.tuples("Stage2"))) == 3
        assert is_serializable(result.history)

    def test_round_snapshot_excludes_mid_round_additions(self):
        """Transactions added by Ψ1's own commits run in Ψ2, matching the
        paper's staging: 'the second conflict set will be identical to the
        set Ψ_{f1+1}'."""
        system = ProductionSystem(CASCADE)
        system.insert("Seed", (1,))
        scheduler = ConcurrentScheduler(system)
        first = scheduler.run_round()
        assert first.transactions == 1
        # the Stage1 rule instantiation exists but was NOT run in round 1
        assert len(system.eligible()) == 1
        second = scheduler.run_round()
        assert second.transactions == 1
        assert scheduler.run_round().transactions == 0

    def test_cross_round_history_is_serializable(self):
        system = ProductionSystem(CASCADE)
        for i in range(4):
            system.insert("Seed", (i,))
        result = ConcurrentScheduler(system).run()
        assert is_serializable(result.history)
        # commits ordered: all firsts precede the seconds they enabled
        order = result.history.commit_order
        assert len(order) == 8

    def test_max_rounds_cap(self):
        system = ProductionSystem(CASCADE)
        system.insert("Seed", (1,))
        result = ConcurrentScheduler(system).run(max_rounds=1)
        assert len(result.rounds) == 1
        assert len(system.eligible()) == 1  # the enabled second stage waits
