"""E5: serializability of concurrent conflict-set execution (§5.2).

The paper's claim: with 2PL on WM and COND relations and commit points
after maintenance, the interleaved execution of a conflict set is
equivalent to *some* serial execution of the same set.  We verify the
conflict graph is acyclic, and that the concurrent final WM state equals
the final state of replaying the equivalent serial order.
"""

import itertools

import pytest

from repro.engine import ProductionSystem
from repro.txn import (
    ConcurrentScheduler,
    History,
    Operation,
    conflict_graph,
    count_equivalent_serial_orders,
    equivalent_serial_order,
    is_serializable,
    tuple_target,
)

INDEPENDENT_SOURCE = """
(literalize T0 x)
(literalize T1 x)
(literalize L x)
(p r0 (T0 ^x <V>) --> (remove 1) (make L ^x <V>))
(p r1 (T1 ^x <V>) --> (remove 1) (make L ^x <V>))
"""

CONFLICT_SOURCE = """
(literalize Acct id bal)
(p drain (Acct ^id <I> ^bal {<B> > 0}) --> (modify 1 ^bal 0))
"""


def wm_state(ps):
    state = {}
    for name in ps.wm.schemas:
        state[name] = sorted(t.values for t in ps.wm.tuples(name))
    return state


class TestHistoryPrimitives:
    def test_conflict_requires_write(self):
        a = Operation(1, "r", tuple_target("E", 1))
        b = Operation(2, "r", tuple_target("E", 1))
        c = Operation(2, "w", tuple_target("E", 1))
        assert not a.conflicts_with(b)
        assert a.conflicts_with(c)
        assert not a.conflicts_with(Operation(1, "w", tuple_target("E", 1)))

    def test_conflict_requires_same_target(self):
        a = Operation(1, "w", tuple_target("E", 1))
        b = Operation(2, "w", tuple_target("E", 2))
        assert not a.conflicts_with(b)

    def test_serializable_history(self):
        history = History()
        history.record(1, "w", tuple_target("E", 1))
        history.record(2, "r", tuple_target("E", 1))
        assert is_serializable(history)
        assert equivalent_serial_order(history) == [1, 2]

    def test_non_serializable_history(self):
        history = History()
        history.record(1, "w", tuple_target("E", 1))
        history.record(2, "w", tuple_target("E", 1))
        history.record(2, "w", tuple_target("E", 2))
        history.record(1, "w", tuple_target("E", 2))
        assert not is_serializable(history)
        with pytest.raises(ValueError):
            equivalent_serial_order(history)

    def test_count_orders_independent(self):
        history = History()
        for txn in (1, 2, 3):
            history.record(txn, "w", tuple_target("E", txn))
        assert count_equivalent_serial_orders(history) == 6

    def test_count_orders_chain(self):
        history = History()
        history.record(1, "w", tuple_target("E", 1))
        history.record(2, "r", tuple_target("E", 1))
        history.record(2, "w", tuple_target("E", 2))
        history.record(3, "r", tuple_target("E", 2))
        assert count_equivalent_serial_orders(history) == 1

    def test_count_orders_cap(self):
        history = History()
        for txn in range(20):
            history.record(txn, "w", tuple_target("E", txn))
        with pytest.raises(ValueError, match="too many"):
            count_equivalent_serial_orders(history)


class TestConcurrentExecution:
    def test_independent_transactions_fully_parallel(self):
        ps = ProductionSystem(INDEPENDENT_SOURCE)
        ps.insert("T0", {"x": 0})
        ps.insert("T1", {"x": 1})
        scheduler = ConcurrentScheduler(ps)
        result = scheduler.run()
        (stats,) = result.rounds
        assert stats.committed == 2
        assert stats.makespan_ticks < stats.serial_steps
        assert is_serializable(result.history)

    def test_history_always_serializable(self, example3_source):
        ps = ProductionSystem(example3_source)
        ps.insert("Emp", {"name": "Mike", "salary": 200, "dno": 1, "manager": "Sam"})
        ps.insert("Emp", {"name": "Sam", "salary": 100, "dno": 2, "manager": None})
        ps.insert("Dept", {"dno": 2, "dname": "Toy", "floor": 1, "manager": None})
        result = ConcurrentScheduler(ps).run()
        assert is_serializable(result.history)

    def test_concurrent_state_matches_some_serial_execution(self):
        def serial_final(order):
            ps = ProductionSystem(CONFLICT_SOURCE)
            for i in order:
                ps.insert("Acct", {"id": i, "bal": 10})
            ps.run()
            return wm_state(ps)

        ps = ProductionSystem(CONFLICT_SOURCE)
        for i in (1, 2, 3):
            ps.insert("Acct", {"id": i, "bal": 10})
        result = ConcurrentScheduler(ps).run()
        assert is_serializable(result.history)
        concurrent_state = wm_state(ps)
        serial_states = [
            serial_final(order) for order in itertools.permutations((1, 2, 3))
        ]
        assert concurrent_state in serial_states

    def test_delta_del_skips_invalidated_transactions(self):
        """§5.2: transactions in Δdel of an earlier commit must not run."""
        source = """
        (literalize T x)
        (p eat-a (T ^x <V>) --> (remove 1))
        (p eat-b (T ^x <V>) --> (remove 1))
        """
        ps = ProductionSystem(source)
        ps.insert("T", {"x": 1})
        result = ConcurrentScheduler(ps).run()
        total_committed = result.committed
        total_skipped = sum(r.skipped for r in result.rounds)
        assert total_committed == 1  # only one rule consumed the tuple
        assert total_skipped == 1
        assert len(list(ps.wm.tuples("T"))) == 0

    def test_mutual_delete_deadlock_resolved(self):
        """§5.2: 'This could lead to a deadlock of the two transactions.'"""
        source = """
        (literalize A x)
        (literalize B x)
        (p delA (A ^x <V>) (B ^x <V>) --> (remove 1))
        (p delB (A ^x <V>) (B ^x <V>) --> (remove 2))
        """
        ps = ProductionSystem(source)
        ps.insert("A", {"x": 1})
        ps.insert("B", {"x": 1})
        result = ConcurrentScheduler(ps).run()
        assert sum(r.deadlock_aborts for r in result.rounds) >= 1
        assert is_serializable(result.history)
        # Equivalent to one of the two serial outcomes.
        a_left = len(list(ps.wm.tuples("A")))
        b_left = len(list(ps.wm.tuples("B")))
        assert (a_left, b_left) in {(0, 1), (1, 0)}

    def test_negative_dependency_blocks_inserter(self):
        """§5.2: negatively dependent txns take relation read locks that
        delay inserters, keeping the schedule serializable."""
        source = """
        (literalize Emp dno)
        (literalize Audit dno)
        (literalize Flag dno)
        (p protect (Emp ^dno <D>) -(Audit ^dno <D>) --> (remove 1) (make Flag ^dno <D>))
        (p audit-everything (Emp ^dno <D>) --> (make Audit ^dno <D>))
        """
        ps = ProductionSystem(source)
        ps.insert("Emp", {"dno": 1})
        result = ConcurrentScheduler(ps).run()
        assert is_serializable(result.history)

    def test_refraction_across_rounds(self):
        ps = ProductionSystem(INDEPENDENT_SOURCE)
        ps.insert("T0", {"x": 0})
        scheduler = ConcurrentScheduler(ps)
        first = scheduler.run()
        second = scheduler.run()
        assert first.committed == 1
        assert second.committed == 0


class TestSpeedupMeasures:
    def test_speedup_grows_with_independent_parallelism(self):
        def run_with(n):
            parts = []
            for i in range(n):
                parts.append(f"(literalize T{i} x)")
                parts.append(f"(literalize L{i} x)")
                parts.append(
                    f"(p r{i} (T{i} ^x <V>) --> (remove 1) (make L{i} ^x <V>))"
                )
            ps = ProductionSystem("\n".join(parts))
            for i in range(n):
                ps.insert(f"T{i}", {"x": i})
            result = ConcurrentScheduler(ps).run()
            return result.rounds[0].speedup

        assert run_with(6) > run_with(2) >= 1.0

    def test_critical_path_bound_reported(self):
        ps = ProductionSystem(INDEPENDENT_SOURCE)
        ps.insert("T0", {"x": 0})
        ps.insert("T1", {"x": 1})
        result = ConcurrentScheduler(ps).run()
        (stats,) = result.rounds
        assert stats.total_updates == 4  # 2 removes + 2 makes
        assert stats.critical_path_bound <= stats.total_updates
