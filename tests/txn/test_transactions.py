"""Unit tests for lock planning and transaction stepping (§5.1–5.2)."""

import pytest

from repro.engine import ProductionSystem
from repro.txn import (
    COMMITTED,
    History,
    LockManager,
    RuleTransaction,
    SKIPPED,
    plan_locks,
    relation_target,
    tuple_target,
)

SOURCE = """
(literalize Emp name dno)
(literalize Audit dno)
(literalize Log x)
(p guard
    (Emp ^name <N> ^dno <D>)
    -(Audit ^dno <D>)
    -->
    (remove 1)
    (make Log ^x <N>))
"""


@pytest.fixture
def system():
    ps = ProductionSystem(SOURCE)
    ps.insert("Emp", ("Mike", 1))
    return ps


def the_instantiation(ps):
    (inst,) = ps.conflict_set.instantiations()
    return inst


class TestPlanLocks:
    def test_plan_contents(self, system):
        inst = the_instantiation(system)
        analysis = system.analyses["guard"]
        requests = plan_locks(analysis, inst)
        targets = [(r.target, r.mode) for r in requests]
        emp = inst.wmes[0]
        # S on the retrieved tuple, relation-S for the negative dependency,
        # X upgrade for the remove, IX for the insert into Log.
        assert (tuple_target("Emp", emp.tid), "S") in targets
        assert (relation_target("Audit"), "S") in targets
        assert (tuple_target("Emp", emp.tid), "X") in targets
        assert (relation_target("Log"), "IX") in targets

    def test_s_locks_precede_x_upgrades(self, system):
        inst = the_instantiation(system)
        requests = plan_locks(system.analyses["guard"], inst)
        modes = [r.mode for r in requests]
        assert modes.index("S") < modes.index("X")

    def test_no_duplicate_requests(self, system):
        inst = the_instantiation(system)
        requests = plan_locks(system.analyses["guard"], inst)
        assert len(requests) == len({(r.target, r.mode) for r in requests})


class TestRuleTransaction:
    def _txn(self, system, txn_id=1):
        inst = the_instantiation(system)
        return RuleTransaction.build(
            txn_id, inst, system.analyses["guard"]
        )

    def test_steps_acquire_then_execute(self, system):
        txn = self._txn(system)
        locks = LockManager()
        history = History()
        lock_steps = len(txn.requests)
        for _ in range(lock_steps):
            assert txn.step(system, locks, history)
            assert not txn.finished
        assert txn.step(system, locks, history)  # the execute step
        assert txn.state == COMMITTED
        assert locks.held_by(txn.txn_id) == set()
        assert history.commit_order == [1]
        assert len(list(system.wm.tuples("Log"))) == 1

    def test_blocked_step_reports_no_progress(self, system):
        txn = self._txn(system)
        locks = LockManager()
        history = History()
        emp = txn.instantiation.wmes[0]
        locks.try_acquire(99, tuple_target("Emp", emp.tid), "X")
        assert not txn.step(system, locks, history)
        assert txn.state == "blocked"
        assert system.counters.lock_waits == 1

    def test_delta_del_skips_at_execute(self, system):
        txn = self._txn(system)
        locks = LockManager()
        history = History()
        for _ in range(len(txn.requests)):
            txn.step(system, locks, history)
        # Invalidate before the execute step (simulating another commit).
        system.insert("Audit", (1,))
        assert txn.step(system, locks, history)
        assert txn.state == SKIPPED
        assert history.commit_order == []
        assert len(list(system.wm.tuples("Log"))) == 0
        assert locks.held_by(txn.txn_id) == set()

    def test_abort_rewinds_for_retry(self, system):
        txn = self._txn(system)
        locks = LockManager()
        history = History()
        for _ in range(2):
            txn.step(system, locks, history)
        txn.abort(locks)
        assert txn.pc == 0
        assert txn.retries_left == 2
        assert locks.held_by(txn.txn_id) == set()
        # Can run to completion after the rewind.
        while not txn.finished:
            txn.step(system, locks, history)
        assert txn.state == COMMITTED

    def test_retries_exhaust_to_skipped(self, system):
        txn = self._txn(system)
        locks = LockManager()
        for _ in range(3):
            txn.abort(locks)
        assert txn.state == SKIPPED

    def test_history_records_reads_and_writes(self, system):
        txn = self._txn(system)
        locks = LockManager()
        history = History()
        while not txn.finished:
            txn.step(system, locks, history)
        kinds = {(op.kind, op.target[0]) for op in history.operations}
        assert ("r", "tuple") in kinds  # the retrieved Emp tuple
        assert ("r", "rel") in kinds    # the negative dependency on Audit
        assert ("w", "tuple") in kinds  # the remove and the Log insert
        assert ("w", "rel") in kinds
