"""Deadlock-handling policy tests: detect vs wound-wait vs wait-die."""


import pytest

from repro.engine import ProductionSystem
from repro.txn import POLICIES, ConcurrentScheduler, is_serializable

MUTUAL_DELETE = """
(literalize A x)
(literalize B x)
(p delA (A ^x <V>) (B ^x <V>) --> (remove 1))
(p delB (A ^x <V>) (B ^x <V>) --> (remove 2))
"""


def mutual_delete_system():
    system = ProductionSystem(MUTUAL_DELETE)
    system.insert("A", {"x": 1})
    system.insert("B", {"x": 1})
    return system


class TestPolicies:
    def test_policy_registry(self):
        assert set(POLICIES) == {"detect", "wound-wait", "wait-die"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown deadlock policy"):
            ConcurrentScheduler(mutual_delete_system(), policy="ostrich")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_mutual_delete_resolves_serializably(self, policy):
        system = mutual_delete_system()
        result = ConcurrentScheduler(system, policy=policy).run()
        assert is_serializable(result.history)
        a_left = len(list(system.wm.tuples("A")))
        b_left = len(list(system.wm.tuples("B")))
        assert (a_left, b_left) in {(0, 1), (1, 0)}
        assert result.committed == 1

    @pytest.mark.parametrize("policy", POLICIES)
    def test_independent_workload_never_aborts(self, policy):
        from repro.workload import independent_rules_program

        system = ProductionSystem(independent_rules_program(4))
        for i in range(4):
            system.insert(f"T{i}", {"x": i})
        result = ConcurrentScheduler(system, policy=policy).run()
        assert sum(r.deadlock_aborts for r in result.rounds) == 0
        assert result.committed == 4

    def test_prevention_restarts_do_not_consume_retries(self):
        # With wait-die, the young transaction may die many times while the
        # old one progresses; it must still commit eventually.
        system = mutual_delete_system()
        scheduler = ConcurrentScheduler(system, retries=1, policy="wait-die")
        result = scheduler.run()
        # one commits, one Δdel-skips; no transaction is lost to retry
        # exhaustion even with retries=1.
        assert result.committed == 1

    @pytest.mark.parametrize("policy", POLICIES)
    def test_contended_updates_stay_correct(self, policy):
        from repro.workload import contended_rules_program

        system = ProductionSystem(contended_rules_program(5))
        system.insert("Shared", {"x": 0})
        for i in range(5):
            system.insert(f"T{i}", {"x": i})
        result = ConcurrentScheduler(system, policy=policy).run()
        assert is_serializable(result.history)
        (shared,) = system.wm.tuples("Shared")
        assert shared.values == (5,)

    def test_policies_reach_equivalent_final_states(self):
        def final(policy):
            system = mutual_delete_system()
            ConcurrentScheduler(system, policy=policy).run()
            return (
                len(list(system.wm.tuples("A"))),
                len(list(system.wm.tuples("B"))),
            )

        outcomes = {final(policy) for policy in POLICIES}
        # Every policy lands on one of the two serial outcomes.
        assert outcomes <= {(0, 1), (1, 0)}
