"""Batched vs tuple-at-a-time parity: the delta pipeline changes the
granularity of change propagation, never its outcome.

The same logical WM stream is driven three ways — tuple-at-a-time, as many
small :class:`~repro.delta.DeltaBatch` deliveries, and as maximally large
batches — through every registered strategy.  Conflict sets and space
reports must be identical in all cases: §4.2.3's set-orientation is a
performance property, not a semantic one.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.drivers import drive_stream
from repro.check.oracle import rete_memory_snapshot
from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match import STRATEGIES
from repro.parallel import WorkerPool

from tests.match.test_equivalence import RULES, assert_all_agree

STRATEGY_NAMES = sorted(STRATEGIES)

BATCH_SIZES = (1, 5, 10_000)


def make_events(seed: int, length: int = 100):
    """A reproducible insert/delete stream in bench-driver event format."""
    rng = random.Random(seed)
    names = ["Mike", "Sam", "Ann"]
    events = []
    live = 0
    for _ in range(length):
        if live > 0 and rng.random() >= 0.6:
            events.append(("delete", rng.randrange(1 << 30)))
            live -= 1
            continue
        cls = rng.choice(["Emp", "Emp", "Dept", "Audit"])
        if cls == "Emp":
            values = {
                "name": rng.choice(names),
                "salary": rng.randint(1, 4) * 50,
                "dno": rng.randint(1, 3),
                "manager": rng.choice(names),
            }
        elif cls == "Dept":
            values = {
                "dno": rng.randint(1, 3),
                "dname": rng.choice(["Toy", "Shoe"]),
                "floor": rng.randint(1, 2),
                "manager": rng.choice(names),
            }
        else:
            values = {"dno": rng.randint(1, 3)}
        events.append(("insert", (cls, values)))
        live += 1
    return events


def run_all_strategies(events, batch_size, backend="memory",
                       compile_mode="off"):
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas, backend=backend)
    strategies = [
        STRATEGIES[name](
            wm, analyses, counters=Counters(), compile_mode=compile_mode
        )
        for name in STRATEGY_NAMES
    ]
    drive_stream(wm, events, batch_size=batch_size)
    return strategies


@pytest.mark.parametrize("seed", range(4))
def test_batch_sizes_agree_per_strategy(seed):
    events = make_events(seed)
    outcomes = {}
    for batch_size in BATCH_SIZES:
        strategies = run_all_strategies(events, batch_size)
        assert_all_agree(strategies, f"seed={seed} batch={batch_size}")
        outcomes[batch_size] = {
            s.strategy_name: (s.conflict_set_keys(), s.space_report())
            for s in strategies
        }
    reference = outcomes[BATCH_SIZES[0]]
    for batch_size in BATCH_SIZES[1:]:
        for name, (keys, space) in outcomes[batch_size].items():
            ref_keys, ref_space = reference[name]
            assert keys == ref_keys, (
                f"{name}: conflict set diverged at batch={batch_size}"
            )
            assert space == ref_space, (
                f"{name}: space report diverged at batch={batch_size}"
            )


def test_batch_parity_on_sqlite_backend():
    events = make_events(99, length=60)
    outcomes = {}
    for batch_size in (1, 7):
        strategies = run_all_strategies(events, batch_size, backend="sqlite")
        outcomes[batch_size] = {
            s.strategy_name: s.conflict_set_keys() for s in strategies
        }
    assert outcomes[1] == outcomes[7]


@pytest.mark.parametrize("seed", [3, 5])
def test_deferred_notification_scope_agrees(seed):
    """The act-phase mechanism — storage applied eagerly, notification
    deferred via ``wm.batch()`` — also preserves the conflict sets."""
    events = make_events(seed, length=80)

    def apply_scoped(wm, chunk_size):
        live = []
        position = 0
        while position < len(events):
            chunk = events[position:position + chunk_size]
            position += chunk_size
            with wm.batch():
                for kind, payload in chunk:
                    if kind == "insert":
                        class_name, values = payload
                        live.append(wm.insert(class_name, values))
                    else:
                        live and wm.remove(live.pop(payload % len(live)))

    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    outcomes = {}
    for chunk_size in (1, 9, len(events)):
        wm = WorkingMemory(program.schemas)
        strategies = [
            STRATEGIES[name](wm, analyses, counters=Counters())
            for name in STRATEGY_NAMES
        ]
        apply_scoped(wm, chunk_size)
        assert_all_agree(strategies, f"seed={seed} chunk={chunk_size}")
        outcomes[chunk_size] = {
            s.strategy_name: s.conflict_set_keys() for s in strategies
        }
    assert outcomes[1] == outcomes[9] == outcomes[len(events)]


RETE_FAMILY = ("rete", "rete-shared", "rete-dbms")

RETE_BATCH_SIZES = (1, 8, 64)


def _rete_memory_snapshot(strategy):
    """Delegates to :func:`repro.check.oracle.rete_memory_snapshot` — the
    differential fuzz oracle and this parity test must compare the exact
    same canonical network state."""
    return rete_memory_snapshot(strategy)


@pytest.mark.parametrize("compile_mode", ["off", "on"])
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_rete_memory_contents_agree_across_batch_sizes(
    backend, compile_mode
):
    """Token-batched propagation leaves the network in the exact state
    tuple-at-a-time propagation does: same conflict sets, same alpha/beta
    memory contents, same negative-node witness sets, same LEFT/RIGHT
    mirror relations — at batch sizes 1, 8 and 64, on both backends,
    whether the join kernels are interpreted or compiled."""
    events = make_events(11, length=90)
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    snapshots = {}
    for batch_size in RETE_BATCH_SIZES:
        wm = WorkingMemory(program.schemas, backend=backend)
        strategies = {
            name: STRATEGIES[name](
                wm, analyses, counters=Counters(),
                compile_mode=compile_mode,
            )
            for name in RETE_FAMILY
        }
        drive_stream(wm, events, batch_size=batch_size)
        snapshots[batch_size] = {
            name: (s.conflict_set_keys(), _rete_memory_snapshot(s))
            for name, s in strategies.items()
        }
    reference = snapshots[RETE_BATCH_SIZES[0]]
    for batch_size in RETE_BATCH_SIZES[1:]:
        for name, (keys, memories) in snapshots[batch_size].items():
            ref_keys, ref_memories = reference[name]
            assert keys == ref_keys, (
                f"{name}: conflict set diverged at batch={batch_size}"
            )
            assert memories == ref_memories, (
                f"{name}: memory contents diverged at batch={batch_size}"
            )


@pytest.mark.parametrize("seed", range(3))
def test_compiled_mode_is_bit_identical_to_interpreted(seed):
    """The compiled kernels are a pure lowering: for the same stream at
    every batch size, conflict sets, space reports and the rete family's
    canonical memory snapshots agree bit-for-bit with the interpreted
    reference."""
    events = make_events(seed)
    for batch_size in BATCH_SIZES:
        interpreted = run_all_strategies(events, batch_size)
        compiled = run_all_strategies(events, batch_size, compile_mode="on")
        for ref, cand in zip(interpreted, compiled):
            label = f"{ref.strategy_name} seed={seed} batch={batch_size}"
            assert cand.conflict_set_keys() == ref.conflict_set_keys(), (
                f"{label}: compiled conflict set diverged"
            )
            assert cand.space_report() == ref.space_report(), (
                f"{label}: compiled space report diverged"
            )
            if ref.strategy_name in RETE_FAMILY:
                assert (
                    _rete_memory_snapshot(cand)
                    == _rete_memory_snapshot(ref)
                ), f"{label}: compiled memory contents diverged"


WORKER_COUNTS = (1, 2, 4)


def run_rete_family(events, workers, batch_size=16, compile_mode="off"):
    """Drive one stream through the rete family with a shared worker pool;
    returns ``{name: (conflict_keys, memory_snapshot)}``."""
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    pool = WorkerPool(workers) if workers > 1 else None
    strategies = {
        name: STRATEGIES[name](
            wm, analyses, counters=Counters(),
            compile_mode=compile_mode, pool=pool,
        )
        for name in RETE_FAMILY
    }
    drive_stream(wm, events, batch_size=batch_size)
    snapshot = {
        name: (s.conflict_set_keys(), _rete_memory_snapshot(s))
        for name, s in strategies.items()
    }
    if pool is not None:
        pool.close()
    return snapshot


@pytest.mark.parametrize("compile_mode", ["off", "on"])
def test_rete_memory_contents_agree_across_worker_counts(compile_mode):
    """The determinism contract (docs/PARALLELISM.md): a worker pool of
    any size leaves the network bit-identical to the serial reference —
    same conflict sets, same alpha/beta/negative memory contents, same
    mirrors — whether the join kernels are interpreted or compiled."""
    events = make_events(17, length=120)
    snapshots = {
        workers: run_rete_family(events, workers, compile_mode=compile_mode)
        for workers in WORKER_COUNTS
    }
    reference = snapshots[1]
    for workers in WORKER_COUNTS[1:]:
        for name, (keys, memories) in snapshots[workers].items():
            ref_keys, ref_memories = reference[name]
            assert keys == ref_keys, (
                f"{name}: conflict set diverged at workers={workers}"
            )
            assert memories == ref_memories, (
                f"{name}: memory contents diverged at workers={workers}"
            )


@st.composite
def op_streams(draw):
    """Random insert/delete streams in bench-driver event format."""
    names = ["Mike", "Sam", "Ann"]
    length = draw(st.integers(5, 60))
    events = []
    live = 0
    for _ in range(length):
        kind = draw(st.integers(0, 4)) if live > 0 else draw(st.integers(1, 4))
        if kind == 0:
            events.append(("delete", draw(st.integers(0, 1 << 16))))
            live -= 1
            continue
        if kind in (1, 2):
            values = {
                "name": names[draw(st.integers(0, 2))],
                "salary": draw(st.integers(1, 4)) * 50,
                "dno": draw(st.integers(1, 3)),
                "manager": names[draw(st.integers(0, 2))],
            }
            events.append(("insert", ("Emp", values)))
        elif kind == 3:
            values = {
                "dno": draw(st.integers(1, 3)),
                "dname": draw(st.sampled_from(["Toy", "Shoe"])),
                "floor": draw(st.integers(1, 2)),
                "manager": names[draw(st.integers(0, 2))],
            }
            events.append(("insert", ("Dept", values)))
        else:
            events.append(("insert", ("Audit", {"dno": draw(st.integers(1, 3))})))
        live += 1
    return events


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    events=op_streams(),
    batch_size=st.sampled_from([1, 8, 64]),
    workers=st.sampled_from([2, 3, 4]),
    compile_mode=st.sampled_from(["off", "on"]),
)
def test_parallel_match_parity_property(
    events, batch_size, workers, compile_mode
):
    """Property form of the determinism contract: for arbitrary op
    streams, batch sizes and pool sizes, parallel match is bit-identical
    to the serial reference."""
    serial = run_rete_family(
        events, 1, batch_size=batch_size, compile_mode=compile_mode
    )
    parallel = run_rete_family(
        events, workers, batch_size=batch_size, compile_mode=compile_mode
    )
    assert parallel == serial


def test_annihilated_elements_never_reach_strategies():
    """An element born and destroyed inside one deferred batch is invisible
    to listeners (DeltaBatch.net), so e.g. markers never touch the dead
    tuple's storage row."""
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    strategies = [
        STRATEGIES[name](wm, analyses, counters=Counters())
        for name in STRATEGY_NAMES
    ]
    with wm.batch():
        ghost = wm.insert("Emp", ("Mike", 200, 1, "Sam"))
        keeper = wm.insert("Emp", ("Sam", 100, 1, "Ann"))
        wm.remove(ghost)
    assert wm.size() == 1
    assert_all_agree(strategies, "after annihilating batch")
    # The surviving element is matched normally.
    wm.insert("Dept", (1, "Toy", 1, "Sam"))
    assert_all_agree(strategies, "after follow-up insert")
    assert keeper.tid != ghost.tid
