"""Negative-node witness maintenance under batched delta groups.

Regression guard for the subtlest batching hazard: one deferred batch
that simultaneously *completes a join* (producing new tokens that must
consult the negative node) and *inserts/removes witnesses of the negated
class* (changing which of those tokens may pass).  Tuple-at-a-time
propagation interleaves these effects naturally; set-at-a-time delivery
must reach the identical fixpoint regardless of how the batch groups by
relation.
"""

import pytest

from repro.bench.drivers import drive_stream
from repro.check.oracle import rete_memory_snapshot
from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match import STRATEGIES

from tests.match.test_equivalence import assert_all_agree

RULES = """
(literalize Task owner state)
(literalize Worker name)
(literalize Hold owner)
(literalize Note owner)
(p assign
    (Task ^owner <w> ^state 0)
    (Worker ^name <w>)
    - (Hold ^owner <w>)
    -->
    (make Note ^owner <w>))
"""

STRATEGY_NAMES = sorted(STRATEGIES)
RETE_FAMILY = ("rete", "rete-shared", "rete-dbms")


def witness_events():
    """Join completions and negated-class churn interleaved so several
    land in the same 64-op batch: Worker inserts complete Task joins in
    the same group that Hold rows (the negated class) appear and
    disappear for the same owners."""
    events = []
    owners = list(range(6))
    # Tasks first: join-left rows waiting for their Worker.
    for owner in owners:
        events.append(("insert", ("Task", (owner, 0))))
    # One batch group mixing join-output (Worker) and negated (Hold) rows.
    hold_slots = {}
    for owner in owners:
        events.append(("insert", ("Worker", (owner,))))
        if owner % 2 == 0:
            hold_slots[owner] = len(events)
            events.append(("insert", ("Hold", (owner,))))
    # Remove some witnesses in the same stream: their instantiations must
    # (re)appear identically at every batch size.  Delete indexes address
    # the live list maintained by drive_stream; compute them directly.
    live_len = len(events)
    for owner in (0, 2):
        events.append(("delete", hold_slots[owner]))
        live_len -= 1
        hold_slots = {
            o: (s - 1 if s > hold_slots[owner] else s)
            for o, s in hold_slots.items()
        }
    # And re-add one witness so a previously-unblocked token re-blocks.
    events.append(("insert", ("Hold", (0,))))
    return events


def build(batch_size, backend="memory", compile_mode="off"):
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas, backend=backend)
    strategies = {
        name: STRATEGIES[name](
            wm, analyses, counters=Counters(), compile_mode=compile_mode
        )
        for name in STRATEGY_NAMES
    }
    drive_stream(wm, witness_events(), batch_size=batch_size)
    return strategies


class TestNegativeWitnessBatching:
    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_all_strategies_agree_within_batch_size(self, batch_size):
        strategies = build(batch_size)
        assert_all_agree(
            list(strategies.values()), f"batch={batch_size}"
        )

    def test_conflict_sets_identical_across_batch_sizes(self):
        small = build(1)
        large = build(64)
        for name in STRATEGY_NAMES:
            assert (
                small[name].conflict_set_keys()
                == large[name].conflict_set_keys()
            ), f"{name}: batch=64 diverged from batch=1"

    def test_blocked_owners_are_exactly_the_held_ones(self):
        # Hold rows survive for owners 0 (deleted then re-added) and 4;
        # owners 1, 2, 3 and 5 are unheld, so exactly their four
        # instantiations must be live — at any batch size.
        keys = build(64)["rete"].conflict_set_keys()
        assert len(keys) == 4
        assert keys == build(1)["rete"].conflict_set_keys()

    def test_hash_probe_matches_nested_scan(self):
        """The equality-keyed hash index on the batch paths must reach
        the same witness sets as the O(T×R) nested scan it replaces."""

        def build_forced(batch_size, hash_eligible):
            program = parse_program(RULES)
            analyses = analyze_program(program.rules, program.schemas)
            wm = WorkingMemory(program.schemas)
            strategy = STRATEGIES["rete"](wm, analyses, counters=Counters())
            for node in strategy.network.negative_nodes:
                assert node.hash_eligible, "equality tests expected"
                node.hash_eligible = hash_eligible
            drive_stream(wm, witness_events(), batch_size=batch_size)
            return strategy

        for batch_size in (1, 8, 64):
            hashed = build_forced(batch_size, True)
            scanned = build_forced(batch_size, False)
            assert (
                rete_memory_snapshot(hashed) == rete_memory_snapshot(scanned)
            ), f"batch={batch_size}: hash probe diverged from nested scan"
            assert (
                hashed.conflict_set_keys() == scanned.conflict_set_keys()
            ), f"batch={batch_size}: conflict sets diverged"

    @pytest.mark.parametrize("batch_size", [1, 8, 64])
    def test_compiled_witness_maintenance_matches_interpreted(
        self, batch_size
    ):
        """The compiled negative-node kernels (witness_lists/index_right/
        bucket_hits) must reach the exact witness sets and result tokens
        the interpreted walk does, at every batch size."""
        interpreted = build(batch_size)
        compiled = build(batch_size, compile_mode="on")
        for name in RETE_FAMILY:
            ref = rete_memory_snapshot(interpreted[name])
            cand = rete_memory_snapshot(compiled[name])
            assert cand["negative"] == ref["negative"], (
                f"{name}/batch={batch_size}: compiled witness state diverged"
            )
            assert cand == ref, (
                f"{name}/batch={batch_size}: compiled memories diverged"
            )
            assert (
                compiled[name].conflict_set_keys()
                == interpreted[name].conflict_set_keys()
            ), f"{name}/batch={batch_size}: compiled conflict set diverged"

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_negative_node_state_matches_across_batch_sizes(self, backend):
        """Beyond the conflict set: the negative nodes' witness sets and
        result tokens themselves must be bit-identical."""
        for name in RETE_FAMILY:
            small = build(1, backend)[name]
            large = build(64, backend)[name]
            small_snapshot = rete_memory_snapshot(small)
            large_snapshot = rete_memory_snapshot(large)
            assert small_snapshot["negative"] == large_snapshot["negative"], (
                f"{name}/{backend}: negative-node state diverged"
            )
            assert small_snapshot == large_snapshot, (
                f"{name}/{backend}: memory contents diverged"
            )
