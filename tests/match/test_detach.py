"""Detaching a strategy is idempotent and leaves no stale state."""

import pytest

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match import STRATEGIES

RULES = """
(literalize Emp name salary dno)
(literalize Audit dno)
(p well-paid
    (Emp ^name <N> ^salary > 100)
    --> (remove 1))
(p unaudited
    (Emp ^dno <D>)
    -(Audit ^dno <D>)
    --> (remove 1))
"""

STRATEGY_NAMES = sorted(STRATEGIES)


def build(strategy_name):
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    strategy = STRATEGIES[strategy_name](wm, analyses, counters=Counters())
    return wm, strategy


@pytest.mark.parametrize("strategy_name", STRATEGY_NAMES)
class TestDetach:
    def test_detach_clears_conflict_set(self, strategy_name):
        wm, strategy = build(strategy_name)
        wm.insert("Emp", ("Mike", 200, 1))
        assert len(strategy.conflict_set) > 0
        strategy.detach()
        assert len(strategy.conflict_set) == 0
        assert strategy.instantiations() == []

    def test_detach_twice_is_a_noop(self, strategy_name):
        wm, strategy = build(strategy_name)
        wm.insert("Emp", ("Mike", 200, 1))
        strategy.detach()
        strategy.detach()  # must not raise
        assert len(strategy.conflict_set) == 0

    def test_detached_strategy_ignores_wm_changes(self, strategy_name):
        wm, strategy = build(strategy_name)
        strategy.detach()
        wm.insert("Emp", ("Sam", 300, 2))
        assert len(strategy.conflict_set) == 0

    def test_detach_does_not_disturb_other_listeners(self, strategy_name):
        wm, strategy = build(strategy_name)
        other = STRATEGIES[strategy_name](wm, strategy.analyses,
                                          counters=Counters())
        strategy.detach()
        strategy.detach()
        wm.insert("Emp", ("Mike", 200, 1))
        assert len(other.conflict_set) > 0
        assert len(strategy.conflict_set) == 0

    def test_reattach_after_detach_rebuilds_by_replay(self, strategy_name):
        wm, strategy = build(strategy_name)
        wm.insert("Emp", ("Mike", 200, 1))
        expected = strategy.conflict_set_keys()
        strategy.detach()
        fresh = STRATEGIES[strategy_name](wm, strategy.analyses,
                                          counters=Counters())
        assert fresh.conflict_set_keys() == expected
