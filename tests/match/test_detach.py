"""Detaching a strategy is idempotent and leaves no stale state."""

import pytest

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match import STRATEGIES
from repro.parallel import WorkerPool

RULES = """
(literalize Emp name salary dno)
(literalize Audit dno)
(p well-paid
    (Emp ^name <N> ^salary > 100)
    --> (remove 1))
(p unaudited
    (Emp ^dno <D>)
    -(Audit ^dno <D>)
    --> (remove 1))
"""

STRATEGY_NAMES = sorted(STRATEGIES)


def build(strategy_name):
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    strategy = STRATEGIES[strategy_name](wm, analyses, counters=Counters())
    return wm, strategy


@pytest.mark.parametrize("strategy_name", STRATEGY_NAMES)
class TestDetach:
    def test_detach_clears_conflict_set(self, strategy_name):
        wm, strategy = build(strategy_name)
        wm.insert("Emp", ("Mike", 200, 1))
        assert len(strategy.conflict_set) > 0
        strategy.detach()
        assert len(strategy.conflict_set) == 0
        assert strategy.instantiations() == []

    def test_detach_twice_is_a_noop(self, strategy_name):
        wm, strategy = build(strategy_name)
        wm.insert("Emp", ("Mike", 200, 1))
        strategy.detach()
        strategy.detach()  # must not raise
        assert len(strategy.conflict_set) == 0

    def test_detached_strategy_ignores_wm_changes(self, strategy_name):
        wm, strategy = build(strategy_name)
        strategy.detach()
        wm.insert("Emp", ("Sam", 300, 2))
        assert len(strategy.conflict_set) == 0

    def test_detach_does_not_disturb_other_listeners(self, strategy_name):
        wm, strategy = build(strategy_name)
        other = STRATEGIES[strategy_name](wm, strategy.analyses,
                                          counters=Counters())
        strategy.detach()
        strategy.detach()
        wm.insert("Emp", ("Mike", 200, 1))
        assert len(other.conflict_set) > 0
        assert len(strategy.conflict_set) == 0

    def test_reattach_after_detach_rebuilds_by_replay(self, strategy_name):
        wm, strategy = build(strategy_name)
        wm.insert("Emp", ("Mike", 200, 1))
        expected = strategy.conflict_set_keys()
        strategy.detach()
        fresh = STRATEGIES[strategy_name](wm, strategy.analyses,
                                          counters=Counters())
        assert fresh.conflict_set_keys() == expected


@pytest.mark.parametrize("strategy_name", STRATEGY_NAMES)
class TestDetachWithLivePool:
    """Topology changes must drain the worker pool first: no worker may
    still be probing a memory that detach is about to tear down, and a
    freshly attached strategy must see a quiet pool (docs/PARALLELISM.md
    lists this as the attach/detach barrier)."""

    def test_detach_drains_and_leaves_pool_usable(self, strategy_name):
        program = parse_program(RULES)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        pool = WorkerPool(3)
        strategy = STRATEGIES[strategy_name](
            wm, analyses, counters=Counters(), pool=pool
        )
        # Enough elements that batched propagation actually fans out.
        with wm.batch():
            for i in range(24):
                wm.insert("Emp", (f"E{i}", 150 + i, 1 + i % 3))
        assert len(strategy.conflict_set) > 0
        strategy.detach()
        assert pool._pending == 0
        assert pool.active
        assert len(strategy.conflict_set) == 0
        # The drained pool still serves fan-outs after the detach.
        assert pool.map_tasks([lambda: 1, lambda: 2]) == [1, 2]
        pool.close()

    def test_reattach_with_pool_matches_serial_rebuild(self, strategy_name):
        program = parse_program(RULES)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        pool = WorkerPool(4)
        strategy = STRATEGIES[strategy_name](
            wm, analyses, counters=Counters(), pool=pool
        )
        with wm.batch():
            for i in range(30):
                wm.insert("Emp", (f"E{i}", 50 + i * 10, 1 + i % 3))
                if i % 4 == 0:
                    wm.insert("Audit", (1 + i % 3,))
        strategy.detach()
        fresh = STRATEGIES[strategy_name](
            wm, analyses, counters=Counters(), pool=pool
        )
        serial = STRATEGIES[strategy_name](wm, analyses, counters=Counters())
        assert fresh.conflict_set_keys() == serial.conflict_set_keys()
        fresh.detach()
        serial.detach()
        pool.close()
