"""Unit tests for the PatternStore (COND relation container)."""


from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match.patterns.store import PatternStore, make_stores


def build_store():
    program = parse_program(
        """
        (literalize A a1 a2)
        (literalize B b1 b2)
        (p R (A ^a1 <x> ^a2 k) (B ^b1 <x>) --> (halt))
        """
    )
    analyses = analyze_program(program.rules, program.schemas)
    stores = make_stores(analyses, program.schemas, Counters())
    return stores, analyses["R"]


class TestStoreBasics:
    def test_templates_installed(self):
        stores, _ = build_store()
        assert stores["A"].pattern_count() == 1
        assert stores["B"].pattern_count() == 1
        assert stores["A"].template("R", 1).original
        assert stores["A"].derived_count() == 0

    def test_group_lists_all_variants(self):
        stores, _ = build_store()
        template = stores["A"].template("R", 1)
        created, was_new = stores["A"].find_or_create(
            template, (("const", 4), ("const", "k"))
        )
        assert was_new
        assert len(stores["A"].group("R", 1)) == 2
        again, was_new2 = stores["A"].find_or_create(
            template, (("const", 4), ("const", "k"))
        )
        assert not was_new2
        assert again is created

    def test_find_or_create_copies_supports(self):
        stores, _ = build_store()
        template = stores["A"].template("R", 1)
        template.add_support(1, ("B", 9))
        created, _ = stores["A"].find_or_create(
            template, (("const", 4), ("const", "k"))
        )
        assert created.count(1) == 1
        # ... as an independent copy
        created.add_support(1, ("B", 10))
        assert template.count(1) == 1

    def test_discard_only_removes_derived(self):
        stores, _ = build_store()
        template = stores["A"].template("R", 1)
        created, _ = stores["A"].find_or_create(
            template, (("const", 4), ("const", "k"))
        )
        stores["A"].discard(template)  # no-op
        assert stores["A"].pattern_count() == 2
        stores["A"].discard(created)
        assert stores["A"].pattern_count() == 1

    def test_cell_count_scales_with_patterns(self):
        stores, _ = build_store()
        base = stores["A"].cell_count()
        template = stores["A"].template("R", 1)
        stores["A"].find_or_create(template, (("const", 4), ("const", "k")))
        assert stores["A"].cell_count() > base


class TestStoreCompaction:
    def _with_specializations(self):
        stores, analysis = build_store()
        store = stores["A"]
        template = store.template("R", 1)
        general, _ = store.find_or_create(
            template, (("var", "x"), ("const", "k"))
        )
        specific, _ = store.find_or_create(
            template, (("const", 4), ("const", "k"))
        )
        return store, template, specific

    def test_subsumption_requires_support_coverage(self):
        store, template, specific = self._with_specializations()
        specific.add_support(1, ("B", 1))
        removed = store.compact()
        # the specialization holds support its cover lacks: kept
        assert removed == 0
        assert store.pattern_count() == 2

    def test_subsumed_pattern_removed_when_covered(self):
        store, template, specific = self._with_specializations()
        specific.add_support(1, ("B", 1))
        template.add_support(1, ("B", 1))
        removed = store.compact()
        assert removed == 1
        assert specific.restrictions not in {
            p.restrictions for p in store.group("R", 1)
        }

    def test_folding_respects_cap_and_transfers_support(self):
        store, template, specific = self._with_specializations()
        specific.add_support(1, ("B", 7))
        transfers = []
        removed = store.compact(
            max_per_condition=1,
            on_transfer=lambda target, k, contributors: transfers.append(
                (target, k, set(contributors))
            ),
        )
        assert removed == 1
        assert len(store.group("R", 1)) == 1
        (survivor,) = store.group("R", 1)
        assert survivor.original
        assert survivor.count(1) == 1  # folded support arrived
        assert transfers and transfers[0][2] == {("B", 7)}

    def test_folding_never_drops_originals(self):
        store, template, _ = self._with_specializations()
        store.compact(max_per_condition=0)
        assert any(p.original for p in store.group("R", 1))
