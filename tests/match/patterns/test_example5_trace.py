"""T3/T4: the paper's Example 4 initial COND relations and Example 5 trace.

This is the reproduction's golden test: §4.2.1 gives the initial COND-A,
COND-B and COND-C rows for Rule-1, and Example 5 inserts B(4,5,b), C(c,7,8),
A(4,a,8), B(4,7,b) and tabulates the matching patterns accumulated in COND-A
and COND-B, noting that "when B(4,7,b) is inserted, the last tuple in COND-B
causes Rule-1 to be put in the conflict set because all Mark bits are set."
"""

import pytest

from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.patterns import MatchingPatternsStrategy


@pytest.fixture
def system(example4_source):
    program = parse_program(example4_source)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    return wm, MatchingPatternsStrategy(wm, analyses)


def rows(strategy, class_name, attrs):
    return {
        tuple(row[a] for a in attrs) + (row["Mark"],)
        for row in strategy.cond_rows(class_name)
    }


class TestExample4InitialState:
    """T3: the initial contents of the three COND relations."""

    def test_cond_a_initial(self, system):
        _, strategy = system
        assert rows(strategy, "A", ("A1", "A2", "A3")) == {
            ("<x>", "a", "<z>", "00"),
        }

    def test_cond_b_initial(self, system):
        _, strategy = system
        assert rows(strategy, "B", ("B1", "B2", "B3")) == {
            ("<x>", "<y>", "b", "00"),
        }

    def test_cond_c_initial(self, system):
        _, strategy = system
        assert rows(strategy, "C", ("C1", "C2", "C3")) == {
            ("c", "<y>", "<z>", "00"),
        }

    def test_rce_lists(self, system):
        _, strategy = system
        (row_a,) = strategy.cond_rows("A")
        assert row_a["RCE"] == "2,3"
        (row_b,) = strategy.cond_rows("B")
        assert row_b["RCE"] == "1,3"
        (row_c,) = strategy.cond_rows("C")
        assert row_c["RCE"] == "1,2"


class TestExample5Trace:
    """T4: replaying the paper's insert sequence step by step."""

    def test_after_b45(self, system):
        wm, strategy = system
        wm.insert("B", (4, 5, "b"))
        assert rows(strategy, "A", ("A1", "A2", "A3")) == {
            ("<x>", "a", "<z>", "00"),
            ("4", "a", "<z>", "10"),  # "By tuple B(4,5,b)"
        }
        assert len(strategy.conflict_set) == 0

    def test_after_c78(self, system):
        wm, strategy = system
        wm.insert("B", (4, 5, "b"))
        wm.insert("C", ("c", 7, 8))
        assert rows(strategy, "A", ("A1", "A2", "A3")) == {
            ("<x>", "a", "<z>", "00"),
            ("4", "a", "<z>", "10"),
            ("<x>", "a", "8", "01"),  # "By tuple C(c,7,8)"
        }
        assert rows(strategy, "B", ("B1", "B2", "B3")) == {
            ("<x>", "<y>", "b", "00"),
            ("<x>", "7", "b", "01"),  # "By tuple C(c,7,8)"
        }
        assert len(strategy.conflict_set) == 0

    def test_after_a4a8(self, system):
        wm, strategy = system
        wm.insert("B", (4, 5, "b"))
        wm.insert("C", ("c", 7, 8))
        wm.insert("A", (4, "a", 8))
        b_rows = rows(strategy, "B", ("B1", "B2", "B3"))
        assert ("4", "<y>", "b", "10") in b_rows  # "By tuple A(4,a,8)"
        assert ("4", "7", "b", "11") in b_rows  # "By tuple A(4,a,8)"
        assert len(strategy.conflict_set) == 0

    def test_final_tables_and_conflict_set(self, system):
        wm, strategy = system
        wm.insert("B", (4, 5, "b"))
        wm.insert("C", ("c", 7, 8))
        wm.insert("A", (4, "a", 8))
        wm.insert("B", (4, 7, "b"))
        # The paper's final COND-A table.
        assert rows(strategy, "A", ("A1", "A2", "A3")) == {
            ("<x>", "a", "<z>", "00"),
            ("4", "a", "<z>", "10"),
            ("<x>", "a", "8", "01"),
            ("4", "a", "8", "11"),  # "By tuple B(4,7,b)"
        }
        # The paper's final COND-B table.
        assert rows(strategy, "B", ("B1", "B2", "B3")) == {
            ("<x>", "<y>", "b", "00"),
            ("<x>", "7", "b", "01"),
            ("4", "<y>", "b", "10"),
            ("4", "7", "b", "11"),
        }
        # "the last tuple in COND-B causes Rule-1 to be put in the conflict
        # set because all Mark bits are set"
        assert len(strategy.conflict_set) == 1
        (inst,) = strategy.instantiations()
        assert inst.rule_name == "Rule-1"
        assert inst.binding_map() == {"x": 4, "y": 7, "z": 8}

    def test_instantiation_references_the_right_tuples(self, system):
        wm, strategy = system
        b1 = wm.insert("B", (4, 5, "b"))
        c = wm.insert("C", ("c", 7, 8))
        a = wm.insert("A", (4, "a", 8))
        b2 = wm.insert("B", (4, 7, "b"))
        (inst,) = strategy.instantiations()
        assert inst.key == (
            "Rule-1",
            (("A", a.tid), ("B", b2.tid), ("C", c.tid)),
        )

    def test_deleting_a_contributor_retracts_and_unmarks(self, system):
        wm, strategy = system
        wm.insert("B", (4, 5, "b"))
        c = wm.insert("C", ("c", 7, 8))
        wm.insert("A", (4, "a", 8))
        wm.insert("B", (4, 7, "b"))
        wm.remove(c)
        assert len(strategy.conflict_set) == 0
        # every pattern whose support came (only) from C loses its C mark
        for row in strategy.cond_rows("A"):
            assert row["Mark"][1] == "0"  # second mark is C's

    def test_reinserting_contributor_restores(self, system):
        wm, strategy = system
        wm.insert("B", (4, 5, "b"))
        c = wm.insert("C", ("c", 7, 8))
        wm.insert("A", (4, "a", 8))
        wm.insert("B", (4, 7, "b"))
        wm.remove(c)
        wm.insert("C", ("c", 7, 8))
        assert len(strategy.conflict_set) == 1
