"""Tests for the §4.2.3 extensions: compaction and parallel maintenance."""

import random

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match.patterns import MatchingPatternsStrategy
from repro.match.rete import ReteStrategy

JOIN_SOURCE = """
(literalize Emp name dno)
(literalize Dept dno dname)
(p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
"""

THREE_WAY = """
(literalize A v)
(literalize B v)
(literalize C v)
(p tri (A ^v <x>) (B ^v <x>) (C ^v <x>) --> (remove 1))
"""


def build(source, cls=MatchingPatternsStrategy):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    return wm, cls(wm, analyses, counters=Counters())


class TestCompaction:
    def test_compaction_removes_subsumed_patterns(self):
        wm, strategy = build(JOIN_SOURCE)
        # Many departments with the same dno pattern create redundant rows
        # once a fully-pinned sibling exists.
        for i in range(5):
            wm.insert("Dept", (1, f"d{i}"))
        wm.insert("Emp", ("Mike", 1))
        before = strategy.space_report().stored_patterns
        removed = strategy.compact()
        after = strategy.space_report().stored_patterns
        assert after == before - removed

    def test_compaction_never_removes_templates(self):
        wm, strategy = build(JOIN_SOURCE)
        wm.insert("Dept", (1, "Toy"))
        strategy.compact()
        for class_name in ("Emp", "Dept"):
            names = {
                (p.rid, p.cen)
                for _, group in strategy.stores[class_name].groups()
                for p in group
                if p.original
            }
            assert names  # original rows survive

    def test_conflict_set_unchanged_by_compaction(self):
        wm, strategy = build(THREE_WAY)
        rng = random.Random(3)
        live = []
        for step in range(150):
            if rng.random() < 0.65 or not live:
                cls = rng.choice(["A", "B", "C"])
                live.append(wm.insert(cls, (rng.randint(1, 4),)))
            else:
                wm.remove(live.pop(rng.randrange(len(live))))
            if step % 10 == 0:
                strategy.compact()
        # Cross-check against a fresh Rete over the same final WM.
        program = parse_program(THREE_WAY)
        analyses = analyze_program(program.rules, program.schemas)
        reference = ReteStrategy(wm, analyses, counters=Counters())
        assert strategy.conflict_set_keys() == reference.conflict_set_keys()

    def test_matching_still_works_after_compaction(self):
        wm, strategy = build(THREE_WAY)
        wm.insert("A", (1,))
        wm.insert("B", (1,))
        strategy.compact()
        wm.insert("C", (1,))
        assert len(strategy.conflict_set) == 1


class TestParallelMaintenanceEstimate:
    def test_no_maintenance_means_speedup_one(self):
        _, strategy = build(JOIN_SOURCE)
        assert strategy.parallel_speedup_estimate() == 1.0

    def test_multi_target_propagation_is_parallelizable(self):
        wm, strategy = build(THREE_WAY)
        # An A insert propagates to both COND-B and COND-C: serial ops
        # exceed the per-event max.
        wm.insert("A", (1,))
        assert strategy.maintenance_serial_ops > strategy.maintenance_parallel_ops
        assert strategy.parallel_speedup_estimate() > 1.0

    def test_single_target_propagation_is_serial(self):
        wm, strategy = build(JOIN_SOURCE)
        wm.insert("Dept", (1, "Toy"))  # propagates only to COND-Emp
        assert strategy.parallel_speedup_estimate() == 1.0
