"""Behavioural tests for the matching-pattern strategy."""

from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.patterns import MatchingPatternsStrategy


def build(source):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    return wm, MatchingPatternsStrategy(wm, analyses)


JOIN_SOURCE = """
(literalize Emp name dno)
(literalize Dept dno dname)
(p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
"""

NEGATION_SOURCE = """
(literalize Emp name dno)
(literalize Audit dno)
(p unaudited (Emp ^name <N> ^dno <D>) -(Audit ^dno <D>) --> (remove 1))
"""


class TestBasicMatching:
    def test_join_completion_either_order(self):
        for order in (("Emp", "Dept"), ("Dept", "Emp")):
            wm, strategy = build(JOIN_SOURCE)
            for cls in order:
                if cls == "Emp":
                    wm.insert("Emp", ("Mike", 1))
                else:
                    wm.insert("Dept", (1, "Toy"))
            assert len(strategy.conflict_set) == 1, order

    def test_non_joining_tuples_accumulate_patterns_only(self):
        wm, strategy = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (2, "Toy"))
        assert len(strategy.conflict_set) == 0
        report = strategy.space_report()
        assert report.detail["derived_patterns"] >= 2

    def test_matching_is_single_cond_search(self):
        """§4.2.3 Time: 'only a single search over a COND relation'."""
        wm, strategy = build(JOIN_SOURCE)
        wm.insert("Dept", (1, "Toy"))
        before = strategy.counters.snapshot()
        wm.insert("Emp", ("Sam", 99))  # matches nothing joinable
        diff = strategy.counters.diff(before)
        assert diff["cond_searches"] == 1

    def test_deletion_withdraws_support_exactly(self):
        wm, strategy = build(JOIN_SOURCE)
        d1 = wm.insert("Dept", (1, "Toy"))
        d2 = wm.insert("Dept", (1, "Shoe"))
        wm.insert("Emp", ("Mike", 1))
        assert len(strategy.conflict_set) == 2
        wm.remove(d1)
        assert len(strategy.conflict_set) == 1
        wm.remove(d2)
        assert len(strategy.conflict_set) == 0
        # derived patterns whose support vanished are garbage-collected
        emp_store = strategy.stores["Emp"]
        assert emp_store.derived_count() == 0

    def test_templates_never_garbage_collected(self):
        wm, strategy = build(JOIN_SOURCE)
        dept = wm.insert("Dept", (1, "Toy"))
        wm.remove(dept)
        assert strategy.stores["Emp"].pattern_count() == 1  # the template


class TestNegation:
    def test_blocker_prevents_fire(self):
        wm, strategy = build(NEGATION_SOURCE)
        wm.insert("Audit", (1,))
        wm.insert("Emp", ("Mike", 1))
        assert len(strategy.conflict_set) == 0

    def test_late_blocker_retracts(self):
        wm, strategy = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        assert len(strategy.conflict_set) == 1
        wm.insert("Audit", (1,))
        assert len(strategy.conflict_set) == 0

    def test_blocker_removal_fires_via_pattern_transition(self):
        wm, strategy = build(NEGATION_SOURCE)
        audit = wm.insert("Audit", (1,))
        wm.insert("Emp", ("Mike", 1))
        wm.remove(audit)
        assert len(strategy.conflict_set) == 1

    def test_blocker_counts_require_all_witnesses_gone(self):
        wm, strategy = build(NEGATION_SOURCE)
        a1 = wm.insert("Audit", (1,))
        a2 = wm.insert("Audit", (1,))
        wm.insert("Emp", ("Mike", 1))
        wm.remove(a1)
        assert len(strategy.conflict_set) == 0
        wm.remove(a2)
        assert len(strategy.conflict_set) == 1

    def test_blocker_scoped_by_bindings(self):
        wm, strategy = build(NEGATION_SOURCE)
        wm.insert("Audit", (1,))
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Emp", ("Sam", 2))
        (inst,) = strategy.instantiations()
        assert inst.binding_map()["N"] == "Sam"

    def test_negated_mark_bits_render_inverted(self):
        wm, strategy = build(NEGATION_SOURCE)
        (template_row,) = strategy.cond_rows("Emp")
        assert template_row["Mark"] == "1"  # satisfied while no blocker
        wm.insert("Audit", (1,))
        marks = {row["Mark"] for row in strategy.cond_rows("Emp")}
        assert "0" in marks  # the specialized blocked pattern


class TestFalseDrops:
    def test_false_drop_counted_not_acted_on(self):
        source = """
        (literalize A v w)
        (literalize B v w)
        (p R (A ^v <x> ^w <p>) (B ^v <x> ^w <q>) --> (halt))
        """
        wm, strategy = build(source)
        # Create support so A's patterns look complete on <x>, while the
        # actual combination later fails on nothing — engineered drop: the
        # pattern fires but selection validates, so CS stays correct.
        wm.insert("B", (1, "b1"))
        wm.insert("A", (1, "a1"))
        assert len(strategy.conflict_set) == 1
        assert strategy.counters.false_drops == 0
        # Now a rule whose union-full gate passes but whose join fails:
        source2 = """
        (literalize A x y)
        (literalize B x y)
        (literalize C x y)
        (p R (A ^x <i> ^y <j>) (B ^x <i> ^y <k>) (C ^x <k> ^y <j>) --> (halt))
        """
        wm2, strategy2 = build(source2)
        wm2.insert("B", (1, 5))
        wm2.insert("C", (9, 7))
        wm2.insert("A", (1, 7))  # i,j supported separately but no combo
        assert len(strategy2.conflict_set) == 0
        assert strategy2.counters.false_drops >= 1

    def test_conflict_set_never_contains_unvalidated_entries(self):
        wm, strategy = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (2, "Toy"))
        for inst in strategy.instantiations():
            for wme in inst.positive_wmes():
                assert wm.get(wme.relation, wme.tid)


class TestSpaceAccounting:
    def test_patterns_trade_space_for_time(self):
        """§4.2.3: 'our approach consumes a lot of space for storing
        matching patterns' — space grows with propagated bindings."""
        wm, strategy = build(JOIN_SOURCE)
        empty_cells = strategy.space_report().estimated_cells
        for i in range(10):
            wm.insert("Dept", (i, "Toy"))
        assert strategy.space_report().estimated_cells > empty_cells

    def test_report_fields(self):
        wm, strategy = build(JOIN_SOURCE)
        wm.insert("Dept", (1, "Toy"))
        report = strategy.space_report()
        assert report.strategy == "patterns"
        assert report.stored_patterns == report.detail["templates"] + \
            report.detail["derived_patterns"]
