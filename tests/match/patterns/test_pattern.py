"""Unit tests for pattern slots, specialization, merging, and marks."""

from repro.lang import analyze_program, parse_program
from repro.match.patterns import (
    PatternTuple,
    merge,
    slot_display,
    specialize,
    template_restrictions,
)


def condition_of(source, rule, cen):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    return analyses[rule].condition(cen), program.schemas


SOURCE = """
(literalize A A1 A2 A3)
(p R (A ^A1 <x> ^A2 a ^A3 > 5) --> (halt))
"""


class TestTemplates:
    def test_template_slots(self):
        condition, schemas = condition_of(SOURCE, "R", 1)
        template = template_restrictions(condition, schemas["A"])
        # <x> is a variable slot, 'a' a pinned constant, '> 5' renders as
        # a don't-care slot (the operator test applies via the condition).
        assert template == (("var", "x"), ("const", "a"), None)

    def test_specialize_pins_bound_variables(self):
        condition, schemas = condition_of(SOURCE, "R", 1)
        template = template_restrictions(condition, schemas["A"])
        assert specialize(template, {"x": 4}) == (
            ("const", 4),
            ("const", "a"),
            None,
        )

    def test_specialize_ignores_unbound(self):
        condition, schemas = condition_of(SOURCE, "R", 1)
        template = template_restrictions(condition, schemas["A"])
        assert specialize(template, {"q": 9}) == template


class TestMerge:
    def test_merge_constants_must_agree(self):
        assert merge((("const", 1),), (("const", 1),)) == (("const", 1),)
        assert merge((("const", 1),), (("const", 2),)) is None

    def test_merge_keeps_most_specific(self):
        left = (("var", "x"), ("const", "a"), None)
        right = (("const", 4), ("const", "a"), None)
        assert merge(left, right) == (("const", 4), ("const", "a"), None)
        assert merge(right, left) == (("const", 4), ("const", "a"), None)

    def test_merge_var_with_none(self):
        assert merge((("var", "x"),), (None,)) == (("var", "x"),)


class TestSlotDisplay:
    def test_display_forms(self):
        assert slot_display(None) == "*"
        assert slot_display(("var", "x")) == "<x>"
        assert slot_display(("const", 4)) == "4"
        assert slot_display(("const", None)) == "nil"


class TestMarks:
    def make(self, rce=(1, 2)):
        return PatternTuple(
            rid="R", cen=1, restrictions=(None,), rce=rce
        )

    def test_support_add_remove(self):
        pattern = self.make()
        assert pattern.add_support(1, ("B", 1))
        assert not pattern.add_support(1, ("B", 1))  # dedupe
        assert pattern.count(1) == 1
        assert pattern.remove_support(1, ("B", 1))
        assert not pattern.remove_support(1, ("B", 1))
        assert pattern.count(1) == 0

    def test_mark_bits_positive(self):
        pattern = self.make()
        pattern.add_support(1, ("B", 1))
        assert pattern.mark_bits(frozenset()) == "10"
        pattern.add_support(2, ("C", 1))
        assert pattern.mark_bits(frozenset()) == "11"

    def test_mark_bits_negated_inverted(self):
        pattern = self.make()
        # rce index 2 negated: mark set while count == 0
        assert pattern.mark_bits(frozenset({2})) == "01"
        pattern.add_support(2, ("N", 1))
        assert pattern.mark_bits(frozenset({2})) == "00"

    def test_is_full(self):
        pattern = self.make()
        assert not pattern.is_full(frozenset())
        pattern.add_support(1, ("B", 1))
        pattern.add_support(2, ("C", 1))
        assert pattern.is_full(frozenset())

    def test_is_full_with_negated(self):
        pattern = self.make()
        pattern.add_support(1, ("B", 1))
        assert pattern.is_full(frozenset({2}))  # no blocker
        pattern.add_support(2, ("N", 1))
        assert not pattern.is_full(frozenset({2}))

    def test_blocks(self):
        pattern = self.make()
        assert not pattern.blocks(frozenset({2}))
        pattern.add_support(2, ("N", 1))
        assert pattern.blocks(frozenset({2}))

    def test_all_zero(self):
        pattern = self.make()
        assert pattern.all_zero()
        pattern.add_support(1, ("B", 1))
        assert not pattern.all_zero()
        pattern.remove_support(1, ("B", 1))
        assert pattern.all_zero()
