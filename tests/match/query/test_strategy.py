"""Behavioural tests for the §4.1 simplified strategy."""

from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.query import SimplifiedStrategy


def build(source):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    return wm, SimplifiedStrategy(wm, analyses)


JOIN_SOURCE = """
(literalize Emp name dno)
(literalize Dept dno dname)
(p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
"""


class TestSimplifiedMatching:
    def test_insert_seeds_query(self):
        wm, simp = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        assert len(simp.conflict_set) == 1

    def test_join_recomputed_on_every_change(self):
        wm, simp = build(JOIN_SOURCE)
        wm.insert("Dept", (1, "Toy"))
        before = simp.counters.snapshot()
        wm.insert("Emp", ("Mike", 1))
        # §4.1: "re-computation of joins is necessary whenever a change is
        # made to the working memory"
        assert simp.counters.diff(before)["joins_computed"] >= 1

    def test_delete_retracts(self):
        wm, simp = build(JOIN_SOURCE)
        emp = wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        wm.remove(emp)
        assert len(simp.conflict_set) == 0

    def test_no_intermediate_storage(self):
        wm, simp = build(JOIN_SOURCE)
        for i in range(20):
            wm.insert("Emp", (f"e{i}", 1))
        wm.insert("Dept", (1, "Toy"))
        report = simp.space_report()
        # Only the static COND/RULE-DEF rows — independent of WM size.
        assert report.stored_tokens == 0
        assert report.stored_patterns == 0
        empty_wm, empty_simp = build(JOIN_SOURCE)
        assert (
            report.estimated_cells
            == empty_simp.space_report().estimated_cells
        )


NEGATION_SOURCE = """
(literalize Emp name dno)
(literalize Audit dno)
(p unaudited (Emp ^name <N> ^dno <D>) -(Audit ^dno <D>) --> (remove 1))
"""


class TestSimplifiedNegation:
    def test_insert_witness_retracts(self):
        wm, simp = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        assert len(simp.conflict_set) == 1
        wm.insert("Audit", (1,))
        assert len(simp.conflict_set) == 0

    def test_delete_witness_reevaluates(self):
        wm, simp = build(NEGATION_SOURCE)
        audit = wm.insert("Audit", (1,))
        wm.insert("Emp", ("Mike", 1))
        assert len(simp.conflict_set) == 0
        wm.remove(audit)
        assert len(simp.conflict_set) == 1

    def test_witness_only_blocks_compatible_bindings(self):
        wm, simp = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Emp", ("Sam", 2))
        wm.insert("Audit", (1,))
        (inst,) = simp.instantiations()
        assert inst.binding_map()["N"] == "Sam"


class TestCheckBits:
    def test_check_bits_track_satisfaction(self):
        wm, simp = build(JOIN_SOURCE)
        assert not simp.rule_def.check("works-in", 1)
        emp = wm.insert("Emp", ("Mike", 1))
        assert simp.rule_def.check("works-in", 1)
        assert not simp.rule_def.check("works-in", 2)
        wm.insert("Dept", (1, "Toy"))
        assert simp.rule_def.all_set("works-in", [1, 2])
        wm.remove(emp)
        assert not simp.rule_def.check("works-in", 1)

    def test_negated_check_bit_defaults_set(self):
        wm, simp = build(NEGATION_SOURCE)
        assert simp.rule_def.check("unaudited", 2)
        audit = wm.insert("Audit", (1,))
        assert not simp.rule_def.check("unaudited", 2)
        wm.remove(audit)
        assert simp.rule_def.check("unaudited", 2)
