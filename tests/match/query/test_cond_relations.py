"""T1/T2: the paper's §4.1.1 COND and RULE-DEF tables for Example 2."""

import pytest

from repro.lang import analyze_program, parse_program
from repro.match.query import CondRelations, RuleDefRelation
from repro.storage import Catalog


@pytest.fixture
def example2(example2_source):
    program = parse_program(example2_source)
    analyses = analyze_program(program.rules, program.schemas)
    return program, analyses


class TestCondRelationsT1:
    """§4.1.1: 'the rule set of Example 2 can be represented as two COND
    relations', COND-Goal and COND-Expression."""

    def test_cond_goal_contents(self, example2):
        program, analyses = example2
        catalog = Catalog()
        cond = CondRelations(catalog, analyses, program.schemas)
        rows = {
            (r["rule_id"], r["Type"], r["Object"])
            for r in cond.rows("Goal")
        }
        # Paper's COND-Goal: (Plus0x, Simplify, <#>) and (Time0x, Simplify, <#>)
        assert rows == {
            ("PlusOX", "Simplify", "<N>"),
            ("TimesOX", "Simplify", "<N>"),
        }

    def test_cond_expression_contents(self, example2):
        program, analyses = example2
        catalog = Catalog()
        cond = CondRelations(catalog, analyses, program.schemas)
        rows = {
            (r["rule_id"], r["Name"], r["Arg1"], r["Op"], r["Arg2"])
            for r in cond.rows("Expression")
        }
        # Paper's COND-Expression: (Plus0x, <#>, 0, '+', *) and
        # (Time0x, <#>, 0, '*', *) — <X> is a don't-care connection-wise but
        # we render the variable name the rule text uses.
        assert rows == {
            ("PlusOX", "<N>", "0", "+", "<X>"),
            ("TimesOX", "<N>", "0", "*", "<X>"),
        }

    def test_one_cond_relation_per_class(self, example2):
        program, analyses = example2
        catalog = Catalog()
        cond = CondRelations(catalog, analyses, program.schemas)
        assert cond.classes() == {"Goal", "Expression"}

    def test_cell_count(self, example2):
        program, analyses = example2
        catalog = Catalog()
        cond = CondRelations(catalog, analyses, program.schemas)
        assert cond.cell_count() > 0


class TestRuleDefT2:
    """§4.1.1: 'RULE-DEF contains one tuple for each condition of each
    rule' with a Check bit."""

    def test_one_row_per_condition(self, example2):
        program, analyses = example2
        catalog = Catalog()
        rule_def = RuleDefRelation(catalog, analyses)
        assert rule_def.rows() == [
            ("PlusOX", 1, 0),
            ("PlusOX", 2, 0),
            ("TimesOX", 1, 0),
            ("TimesOX", 2, 0),
        ]

    def test_check_bit_set_and_reset(self, example2):
        program, analyses = example2
        catalog = Catalog()
        rule_def = RuleDefRelation(catalog, analyses)
        rule_def.set_check("PlusOX", 1, True)
        assert rule_def.check("PlusOX", 1)
        assert not rule_def.check("PlusOX", 2)
        rule_def.set_check("PlusOX", 1, False)
        assert not rule_def.check("PlusOX", 1)

    def test_all_set(self, example2):
        program, analyses = example2
        catalog = Catalog()
        rule_def = RuleDefRelation(catalog, analyses)
        rule_def.set_check("PlusOX", 1, True)
        rule_def.set_check("PlusOX", 2, True)
        assert rule_def.all_set("PlusOX", [1, 2])
        assert not rule_def.all_set("TimesOX", [1, 2])

    def test_set_check_idempotent(self, example2):
        program, analyses = example2
        catalog = Catalog()
        rule_def = RuleDefRelation(catalog, analyses)
        rule_def.set_check("PlusOX", 1, True)
        rule_def.set_check("PlusOX", 1, True)
        assert rule_def.check("PlusOX", 1)
