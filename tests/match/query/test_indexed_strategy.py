"""Tests for the R-tree-accelerated simplified strategy (§4.1.2/§4.2.3)."""

import random

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match.query import IndexedSimplifiedStrategy, SimplifiedStrategy


def build_pair(source):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    plain = SimplifiedStrategy(wm, analyses, counters=Counters())
    indexed = IndexedSimplifiedStrategy(wm, analyses, counters=Counters())
    return wm, plain, indexed


MANY_SELECTIONS = "\n".join(
    ["(literalize Emp age salary dno)"]
    + [
        f"(p band{i} (Emp ^age > {i * 10} ^age < {i * 10 + 15}) --> (remove 1))"
        for i in range(9)
    ]
)


class TestIndexedSimplified:
    def test_registered_under_its_own_name(self):
        from repro.match import STRATEGIES

        assert STRATEGIES["simplified-indexed"] is IndexedSimplifiedStrategy

    def test_same_conflict_set_as_plain(self):
        wm, plain, indexed = build_pair(MANY_SELECTIONS)
        rng = random.Random(0)
        live = []
        for _ in range(150):
            if rng.random() < 0.7 or not live:
                live.append(wm.insert("Emp", (rng.randint(0, 99), 100, 1)))
            else:
                wm.remove(live.pop(rng.randrange(len(live))))
            assert plain.conflict_set_keys() == indexed.conflict_set_keys()

    def test_index_prunes_condition_checks(self):
        wm, plain, indexed = build_pair(MANY_SELECTIONS)
        wm.insert("Emp", (42, 100, 1))
        # The plain strategy compares the tuple against all 9 conditions;
        # the indexed one only against boxes containing age=42.
        assert indexed.counters.comparisons < plain.counters.comparisons
        assert indexed.counters.index_lookups > 0

    def test_join_rules_still_work(self):
        source = """
        (literalize Emp name dno)
        (literalize Dept dno dname)
        (p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
        """
        wm, plain, indexed = build_pair(source)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        assert len(indexed.conflict_set) == 1
        assert plain.conflict_set_keys() == indexed.conflict_set_keys()

    def test_negation_still_works(self):
        source = """
        (literalize Emp name dno)
        (literalize Audit dno)
        (p clean (Emp ^name <N> ^dno <D>) -(Audit ^dno <D>) --> (remove 1))
        """
        wm, plain, indexed = build_pair(source)
        wm.insert("Emp", ("Mike", 1))
        audit = wm.insert("Audit", (1,))
        assert plain.conflict_set_keys() == indexed.conflict_set_keys() == set()
        wm.remove(audit)
        assert plain.conflict_set_keys() == indexed.conflict_set_keys()
        assert len(indexed.conflict_set) == 1
