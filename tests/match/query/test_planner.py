"""Index-recommendation tests."""

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match.query import (
    SimplifiedStrategy,
    apply_recommended_indexes,
    recommend_indexes,
)

SOURCE = """
(literalize Emp name salary dno)
(literalize Dept dno dname floor)
(p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
(p toy (Dept ^dname Toy ^floor > 2) --> (remove 1))
"""


def analyzed():
    program = parse_program(SOURCE)
    return program, analyze_program(program.rules, program.schemas)


class TestRecommendIndexes:
    def test_join_and_binding_attributes_recommended(self):
        _, analyses = analyzed()
        recs = recommend_indexes(analyses)
        assert recs["Emp"] == {"name", "dno"}
        assert "dno" in recs["Dept"]

    def test_equality_constants_recommended(self):
        _, analyses = analyzed()
        assert "dname" in recommend_indexes(analyses)["Dept"]

    def test_inequality_tests_not_recommended(self):
        _, analyses = analyzed()
        assert "floor" not in recommend_indexes(analyses)["Dept"]

    def test_apply_builds_indexes(self):
        program, analyses = analyzed()
        wm = WorkingMemory(program.schemas)
        built = apply_recommended_indexes(wm, analyses)
        assert built == 4
        assert wm.relation("Emp").indexed_attributes() == {"name", "dno"}

    def test_apply_is_idempotent(self):
        program, analyses = analyzed()
        wm = WorkingMemory(program.schemas)
        apply_recommended_indexes(wm, analyses)
        assert apply_recommended_indexes(wm, analyses) == 0

    def test_indexes_speed_up_simplified_matching(self):
        program, analyses = analyzed()

        def run(with_indexes):
            # WM-table I/O lands on the WM's counters, so measure those.
            wm = WorkingMemory(program.schemas)
            strategy = SimplifiedStrategy(wm, analyses, counters=Counters())
            if with_indexes:
                apply_recommended_indexes(wm, analyses)
            for i in range(60):
                wm.insert("Emp", (f"e{i}", 100, i % 10))
            for d in range(10):
                wm.insert("Dept", (d, "Toy", 1))
            return strategy, wm.counters

        plain, plain_io = run(False)
        indexed, indexed_io = run(True)
        assert indexed.conflict_set_keys() == plain.conflict_set_keys()
        assert indexed_io.tuple_reads < plain_io.tuple_reads
        assert indexed_io.index_lookups > 0
