"""The match compiler: columnar memories, join plans, lowered kernels.

Covers the storage layer the kernels probe (compact row ids with
free-list reuse, mirror consistency under batched churn), the planning
pass (selectivity ordering, the CORGI-style quadratic bound), the alpha
codegen's equivalence with the interpreted predicate walk, and a
property test pinning compiled-vs-interpreted network state over random
op streams.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.drivers import drive_stream
from repro.check.oracle import rete_memory_snapshot
from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match import STRATEGIES
from repro.match.compile import (
    CompileError,
    JoinPlan,
    PlanBoundError,
    attach_network_kernels,
    compile_alpha_test,
    plan_join,
)
from repro.match.rete.runtime import AlphaMemory, JoinTest
from repro.storage.predicate import (
    And,
    AttributeComparison,
    Comparison,
    Membership,
    Not,
    Or,
    TruePredicate,
)
from repro.storage.schema import RelationSchema
from repro.storage.tuples import StoredTuple

RULES = """
(literalize Task owner state)
(literalize Worker name)
(literalize Hold owner)
(literalize Note owner)
(p assign
    (Task ^owner <w> ^state 0)
    (Worker ^name <w>)
    - (Hold ^owner <w>)
    -->
    (make Note ^owner <w>))
"""


def _wme(tid, values, relation="Task"):
    return StoredTuple(
        relation=relation, tid=tid, timetag=tid, values=tuple(values)
    )


class TestColumnarAlphaMemory:
    def _memory(self):
        return AlphaMemory(
            "a-Task", "Task", lambda values: True, Counters(), arity=2
        )

    def test_rows_are_reused_after_delete_churn(self):
        memory = self._memory()
        first = [_wme(tid, (tid, 0)) for tid in range(8)]
        for wme in first:
            memory.try_activate(wme)
        high_water = len(memory._wme_rows)
        for wme in first[2:6]:
            assert memory.retract(wme)
        assert len(memory._free) == 4
        replacements = [_wme(100 + tid, (tid, 1)) for tid in range(4)]
        for wme in replacements:
            memory.try_activate(wme)
        # Freed rows were recycled: the backing columns never grew.
        assert len(memory._wme_rows) == high_water
        assert not memory._free
        assert len(memory) == 8

    def test_iteration_order_is_insertion_order_across_reuse(self):
        memory = self._memory()
        for tid in range(6):
            memory.try_activate(_wme(tid, (tid, 0)))
        memory.retract(_wme(1, (1, 0)))
        memory.retract(_wme(4, (4, 0)))
        memory.try_activate(_wme(10, (10, 0)))
        memory.try_activate(_wme(11, (11, 0)))
        # Survivors first (in original order), then the late arrivals —
        # exactly what per-token dict storage used to produce.
        assert [w.tid for w in memory.wmes()] == [0, 2, 3, 5, 10, 11]
        assert list(memory.wme_keys()) == [
            ("Task", tid) for tid in (0, 2, 3, 5, 10, 11)
        ]

    def test_columns_track_rows(self):
        memory = self._memory()
        for tid in range(4):
            memory.try_activate(_wme(tid, (tid * 10, tid)))
        memory.retract(_wme(2, (20, 2)))
        memory.try_activate(_wme(9, (90, 9)))
        for row in memory.rows():
            wme = memory.wme_at(row)
            assert memory.column(0)[row] == wme.values[0]
            assert memory.column(1)[row] == wme.values[1]


class TestMirrorConsistency:
    def test_mirror_rows_track_batched_delete_then_insert(self):
        """The rete-dbms LEFT/RIGHT mirror relations must agree with the
        in-memory columnar stores after a batch that deletes and
        re-inserts rows of the same class (free-list reuse territory)."""
        program = parse_program(RULES)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        strategy = STRATEGIES["rete-dbms"](wm, analyses, counters=Counters())
        inserted = []
        with wm.batch():
            for owner in range(6):
                inserted.append(wm.insert("Task", (owner, 0)))
                wm.insert("Worker", (owner,))
        with wm.batch():
            for wme in inserted[1:4]:
                wm.remove(wme)
            for owner in range(10, 14):
                wm.insert("Task", (owner, 0))
        mirrored_memories = [
            a for a in strategy.network.alpha_memories if a.mirror is not None
        ]
        assert mirrored_memories, "rete-dbms mirrors its alpha memories"
        for amem in mirrored_memories:
            mirror = amem.mirror
            mirrored = sorted(row.values for row in mirror.table.scan())
            stored = sorted((w.tid,) for w in amem.wmes())
            assert mirrored == stored, f"{mirror.table.schema.name} diverged"


class TestJoinPlanning:
    def test_equality_tests_key_the_hash_plan(self):
        eq = JoinTest(0, "=", 1, 2)
        residual = JoinTest(1, ">", 1, 0)
        plan = plan_join((residual, eq), level=1)
        assert plan.kind == "hash"
        assert plan.eq_tests == (eq,)
        assert plan.residual == (residual,)
        assert plan.cost_exponent == 1

    def test_residual_only_plan_is_quadratic_but_admitted(self):
        plan = plan_join((JoinTest(0, "<", 1, 1),), level=1)
        assert plan.kind == "nested"
        assert plan.cost_exponent == 2

    def test_residual_ordering_is_by_selectivity(self):
        loose = JoinTest(0, "<>", 1, 0)
        tight = JoinTest(1, "<", 1, 1)
        plan = plan_join((loose, tight), level=1)
        assert plan.residual == (tight, loose)

    def test_cross_product_plan(self):
        plan = plan_join((), level=1)
        assert plan.kind == "cross"
        assert plan.cost_exponent == 1

    def test_chain_walking_plan_is_rejected(self):
        # A residual test reaching above the LEFT memory's level cannot be
        # answered from the slot columns: exponent 3, over the bound.
        with pytest.raises(PlanBoundError):
            plan_join((JoinTest(0, "<", 5, 0),), level=1)
        # The same reach with a hash key is exponent 2 — admitted.
        plan = plan_join(
            (JoinTest(0, "=", 1, 0), JoinTest(0, "<", 5, 0)), level=1
        )
        assert plan.cost_exponent == 2

    def test_describe_shape(self):
        plan = JoinPlan(
            level=2,
            eq_tests=(JoinTest(0, "=", 1, 2),),
            residual=(JoinTest(1, ">", 2, 0),),
        )
        description = plan.describe()
        assert description["kind"] == "hash"
        assert description["eq"] == 1
        assert description["residual"] == [(1, ">", 2, 0)]
        assert description["cost_exponent"] == 1


class TestAttachModes:
    def _network(self, compile_mode="off"):
        program = parse_program(RULES)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        return STRATEGIES["rete"](
            wm, analyses, counters=Counters(), compile_mode=compile_mode
        ).network

    def test_off_attaches_nothing(self):
        network = self._network()
        assert all(n.kernel is None for n in network.join_nodes)
        assert all(n.kernel is None for n in network.negative_nodes)

    def test_on_attaches_everywhere(self):
        network = self._network("on")
        assert all(n.kernel is not None for n in network.join_nodes)
        assert all(n.kernel is not None for n in network.negative_nodes)
        summary = network.compile_summary
        assert summary["mode"] == "on"
        assert summary["kernels"] == len(network.join_nodes) + len(
            network.negative_nodes
        )

    def test_describe_carries_compiled_plans(self):
        description = self._network("on").describe()
        assert description["compile"]["mode"] == "on"
        plans = [
            node["plan"]
            for node in description["nodes"]
            if node.get("plan") is not None
        ]
        assert plans, "compiled join nodes expose their plans"
        assert all("cost_exponent" in plan for plan in plans)

    def test_on_raises_when_a_node_cannot_lower(self):
        network = self._network()
        network.join_nodes[0].tests = (
            # Residual-only and reaching far above any level: exponent 3,
            # over the plan bound, so lowering must fail.
            JoinTest(0, "<", 99, 0),
        )
        with pytest.raises(CompileError):
            attach_network_kernels(network, "on")

    def test_auto_falls_back_per_node(self):
        network = self._network()
        broken = network.join_nodes[0]
        broken.tests = (JoinTest(0, "<", 99, 0),)
        attach_network_kernels(network, "auto")
        assert broken.kernel is None
        others = [n for n in network.join_nodes if n is not broken]
        assert all(n.kernel is not None for n in others)


SCHEMA = RelationSchema("thing", ("a", "b", "c"))

#: Every predicate node type the lowering handles, with operand shapes
#: chosen to exercise the type-specialized codegen branches.
PREDICATES = [
    TruePredicate(),
    Comparison("a", "=", 3),
    Comparison("a", "=", "x"),
    Comparison("b", "<>", None),
    Comparison("b", "<", 10),
    Comparison("c", ">=", 2.5),
    Comparison("c", "<", "m"),
    Comparison("a", ">", None),
    Membership("a", (1, "x", None)),
    AttributeComparison("a", "=", "b"),
    AttributeComparison("b", "<", "c"),
    AttributeComparison("a", "<>", "c"),
    And((Comparison("a", "=", 1), Comparison("b", ">", 0))),
    Or((Comparison("a", "=", "x"), Comparison("c", "<", 5))),
    Not(Comparison("b", "=", 2)),
    And(()),
    Or(()),
]

_value = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=10),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
    st.sampled_from(["x", "y", "m", "z", ""]),
)


class TestAlphaCodegenEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(row=st.tuples(_value, _value, _value))
    def test_compiled_matches_interpreted_on_random_rows(self, row):
        for predicate in PREDICATES:
            compiled = compile_alpha_test(predicate, SCHEMA)
            assert compiled(row) == predicate.matches(SCHEMA, row), (
                f"{predicate!r} diverged on {row!r}"
            )


def _events(choices):
    """Decode a hypothesis choice list into a driver event stream."""
    events = []
    live = 0
    for kind, payload in choices:
        if kind == "delete":
            if live == 0:
                continue
            events.append(("delete", payload))
            live -= 1
            continue
        events.append(("insert", payload))
        live += 1
    return events


_insert = st.one_of(
    st.tuples(
        st.just("insert"),
        st.tuples(
            st.just("Task"),
            st.tuples(st.integers(0, 4), st.integers(0, 1)),
        ),
    ),
    st.tuples(
        st.just("insert"),
        st.tuples(st.just("Worker"), st.tuples(st.integers(0, 4))),
    ),
    st.tuples(
        st.just("insert"),
        st.tuples(st.just("Hold"), st.tuples(st.integers(0, 4))),
    ),
    st.tuples(st.just("delete"), st.integers(0, 1 << 20)),
)


class TestCompiledKernelProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        choices=st.lists(_insert, max_size=40),
        batch_size=st.sampled_from([1, 7, 64]),
    )
    def test_compiled_network_state_equals_interpreted(
        self, choices, batch_size
    ):
        events = _events(choices)
        program = parse_program(RULES)
        analyses = analyze_program(program.rules, program.schemas)
        results = {}
        for mode in ("off", "on"):
            wm = WorkingMemory(program.schemas)
            strategy = STRATEGIES["rete"](
                wm, analyses, counters=Counters(), compile_mode=mode
            )
            drive_stream(wm, events, batch_size=batch_size)
            results[mode] = (
                strategy.conflict_set_keys(),
                rete_memory_snapshot(strategy),
            )
        assert results["on"] == results["off"]
