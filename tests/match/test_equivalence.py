"""Cross-strategy equivalence: every indexing scheme computes the same
conflict set.

The paper's entire premise is that the Rete network (§3), the simplified
query scheme (§4.1), the matching-pattern scheme (§4.2) and the tuple-marker
scheme (§2.3) are different *indexes* over the same matching semantics.
These tests drive all of them with identical WM change streams — scripted,
randomized, and hypothesis-generated — and require identical conflict sets
after every single change.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match import STRATEGIES

RULES = """
(literalize Emp name salary dno manager)
(literalize Dept dno dname floor manager)
(literalize Audit dno)
(p mike-vs-manager
    (Emp ^name Mike ^salary <S> ^manager <M>)
    (Emp ^name <M> ^salary {<S1> < <S>})
    --> (remove 1))
(p toy-floor-1
    (Emp ^dno <D>)
    (Dept ^dno <D> ^dname Toy ^floor 1)
    --> (remove 1))
(p unaudited
    (Emp ^dno <D>)
    -(Audit ^dno <D>)
    --> (remove 1))
(p manager-cycle
    (Emp ^name <N> ^dno <D>)
    (Dept ^dno <D> ^manager <N>)
    (Emp ^name <N> ^salary > 100)
    --> (remove 1))
(p triangle
    (Emp ^name <N> ^dno <D>)
    (Dept ^dno <D> ^floor <F>)
    (Dept ^floor <F> ^manager <N>)
    --> (remove 1))
"""

STRATEGY_NAMES = sorted(STRATEGIES)


def fresh_system():
    program = parse_program(RULES)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    strategies = [
        STRATEGIES[name](wm, analyses, counters=Counters())
        for name in STRATEGY_NAMES
    ]
    return wm, strategies


def assert_all_agree(strategies, context=""):
    reference = strategies[0].conflict_set_keys()
    for strategy in strategies[1:]:
        keys = strategy.conflict_set_keys()
        assert keys == reference, (
            f"{strategy.strategy_name} diverged from "
            f"{strategies[0].strategy_name} {context}: "
            f"only-in-{strategy.strategy_name}={keys - reference}, "
            f"missing={reference - keys}"
        )


def random_event(rng, wm, live):
    if rng.random() < 0.6 or not live:
        names = ["Mike", "Sam", "Ann"]
        cls = rng.choice(["Emp", "Emp", "Dept", "Audit"])
        if cls == "Emp":
            wme = wm.insert(
                "Emp",
                {
                    "name": rng.choice(names),
                    "salary": rng.randint(1, 4) * 50,
                    "dno": rng.randint(1, 3),
                    "manager": rng.choice(names),
                },
            )
        elif cls == "Dept":
            wme = wm.insert(
                "Dept",
                {
                    "dno": rng.randint(1, 3),
                    "dname": rng.choice(["Toy", "Shoe"]),
                    "floor": rng.randint(1, 2),
                    "manager": rng.choice(names),
                },
            )
        else:
            wme = wm.insert("Audit", {"dno": rng.randint(1, 3)})
        live.append(wme)
    else:
        wm.remove(live.pop(rng.randrange(len(live))))


class TestScriptedEquivalence:
    def test_insert_only_stream(self):
        wm, strategies = fresh_system()
        wm.insert("Emp", ("Mike", 200, 1, "Sam"))
        wm.insert("Emp", ("Sam", 100, 1, "Ann"))
        wm.insert("Dept", (1, "Toy", 1, "Sam"))
        wm.insert("Audit", (2,))
        assert_all_agree(strategies)
        assert len(strategies[0].conflict_set) > 0

    def test_insert_delete_interleaved(self):
        wm, strategies = fresh_system()
        mike = wm.insert("Emp", ("Mike", 200, 1, "Sam"))
        sam = wm.insert("Emp", ("Sam", 100, 1, "Ann"))
        dept = wm.insert("Dept", (1, "Toy", 1, "Sam"))
        wm.remove(sam)
        assert_all_agree(strategies, "after removing Sam")
        wm.remove(dept)
        assert_all_agree(strategies, "after removing Dept")
        wm.remove(mike)
        assert_all_agree(strategies, "after removing Mike")
        assert all(len(s.conflict_set) == 0 for s in strategies)

    def test_negation_churn(self):
        wm, strategies = fresh_system()
        wm.insert("Emp", ("Mike", 200, 1, "Sam"))
        audits = [wm.insert("Audit", (1,)) for _ in range(3)]
        assert_all_agree(strategies, "with 3 audits")
        for audit in audits:
            wm.remove(audit)
            assert_all_agree(strategies, "while draining audits")


@pytest.mark.parametrize("seed", range(6))
def test_random_walk_equivalence(seed):
    wm, strategies = fresh_system()
    rng = random.Random(seed)
    live = []
    for step in range(120):
        random_event(rng, wm, live)
        assert_all_agree(strategies, f"seed={seed} step={step}")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(st.integers(0, 2**30), min_size=1, max_size=60))
def test_hypothesis_event_streams(choices):
    """Hypothesis drives the event stream through its shrinkable choices."""
    wm, strategies = fresh_system()
    live = []
    for choice in choices:
        rng = random.Random(choice)
        random_event(rng, wm, live)
    assert_all_agree(strategies, f"choices={choices!r}")


@pytest.mark.parametrize("negation", [0.0, 0.4])
@pytest.mark.parametrize("seed", [11, 12])
def test_generated_workloads_equivalence(seed, negation):
    """Synthetic rule bases (with and without negation) keep all
    strategies in lockstep under insert/delete churn."""
    from repro.workload import WorkloadSpec, generate_program, mixed_stream

    spec = WorkloadSpec(
        rules=10,
        classes=4,
        min_conditions=1,
        max_conditions=3,
        negation_probability=negation,
        seed=seed,
    )
    workload = generate_program(spec)
    analyses = analyze_program(workload.program.rules, workload.program.schemas)
    wm = WorkingMemory(workload.program.schemas)
    strategies = [
        STRATEGIES[name](wm, analyses, counters=Counters())
        for name in STRATEGY_NAMES
    ]
    live = []
    for kind, payload in mixed_stream(spec, 150, delete_fraction=0.3):
        if kind == "insert":
            class_name, values = payload
            live.append(wm.insert(class_name, values))
        else:
            wm.remove(live.pop(payload))
        assert_all_agree(strategies, f"seed={seed} neg={negation}")


def test_rete_has_no_false_drops_but_markers_do():
    """§3.2's trade-off: 'a new insertion ... will trigger both of these
    rules, even though it should not be fired because there are no matching
    Dept tuples', observed on the same stream."""
    wm, strategies = fresh_system()
    by_name = {s.strategy_name: s for s in strategies}
    # A stream of employees with no departments: marker candidates all fail
    # validation.
    for i in range(10):
        wm.insert("Emp", (f"e{i}", 100, i + 10, "Ann"))
    assert by_name["markers"].counters.false_drops > 0
    assert by_name["rete"].counters.false_drops == 0
    assert_all_agree(strategies)
