"""Direct checks of concrete behaviours the paper narrates.

Each test quotes the sentence it verifies.
"""

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match.query import SimplifiedStrategy
from repro.match.rete import DbmsReteStrategy, ReteStrategy


class TestSection412GoalInsertion:
    """§4.1.2: "the insertion of working memory element (Goal Simplify
    TERM) will cause the selection on WM relation Expression for tuples
    (TERM 0 '+' *) and (TERM 0 '*' *)"."""

    def test_goal_insert_seeds_one_expression_selection_per_rule(
        self, example2_source
    ):
        program = parse_program(example2_source)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        strategy = SimplifiedStrategy(wm, analyses, counters=Counters())
        before = strategy.counters.snapshot()
        wm.insert("Goal", ("Simplify", "TERM"))
        diff = strategy.counters.diff(before)
        # The Goal matches PlusOX's and TimesOX's first conditions, so two
        # seeded evaluations run, each selecting on Expression.
        assert diff["joins_computed"] == 2
        assert len(strategy.conflict_set) == 0

    def test_matching_expression_then_completes(self, example2_source):
        program = parse_program(example2_source)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        strategy = SimplifiedStrategy(wm, analyses, counters=Counters())
        wm.insert("Goal", ("Simplify", "TERM"))
        wm.insert("Expression", ("TERM", 0, "+", 42))
        assert {i.rule_name for i in strategy.instantiations()} == {"PlusOX"}


class TestSection32LeftRightRelations:
    """§3.2 on Example 3: "LEFT1 will contain tuples of the form
    (Mike,<A>,<S>,<D>) ... RIGHT1 will contain all tuples inserted in the
    Emp relation, as all of them are potential matches."."""

    def _network(self, example3_source):
        program = parse_program(example3_source)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        strategy = ReteStrategy(wm, analyses, counters=Counters())
        return wm, strategy

    def test_left1_holds_only_mikes_right1_holds_every_emp(
        self, example3_source
    ):
        wm, strategy = self._network(example3_source)
        wm.insert("Emp", ("Mike", 200, 1, "Sam"))
        wm.insert("Emp", ("Sam", 100, 1, None))
        wm.insert("Emp", ("Ann", 300, 2, None))
        network = strategy.network
        # R1's first condition filters ^name Mike; its second admits every
        # Emp tuple (pure variable restrictions).
        r1_memories = [
            am for am in network.alpha_memories if am.class_name == "Emp"
        ]
        sizes = sorted(len(am) for am in r1_memories)
        # one memory holds only Mike (LEFT1's filter), at least one holds
        # all three Emp tuples (RIGHT1)
        assert sizes[0] == 1
        assert sizes[-1] == 3

    def test_memories_persist_as_relations_in_dbms_mode(
        self, example3_source
    ):
        program = parse_program(example3_source)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        strategy = DbmsReteStrategy(wm, analyses, counters=Counters())
        wm.insert("Emp", ("Mike", 200, 1, "Sam"))
        wm.insert("Emp", ("Sam", 100, 1, None))
        # every alpha/beta memory row is mirrored into a storage relation
        table_sizes = {
            t.schema.name: len(t) for t in strategy.mirror_catalog.tables()
        }
        assert sum(table_sizes.values()) == strategy.network.stored_tokens()

    def test_tokens_queue_awaiting_matches(self, example3_source):
        """§3.2: "the tuple is queued up at the network waiting for a
        future arrival of a matching tuple"."""
        wm, strategy = self._network(example3_source)
        wm.insert("Emp", ("Mike", 200, 1, "Sam"))
        assert len(strategy.conflict_set) == 0
        assert strategy.network.stored_tokens() > 0  # queued, not dropped
        wm.insert("Emp", ("Sam", 100, 1, None))
        assert {i.rule_name for i in strategy.instantiations()} == {"R1"}
