"""Tests for the Predicate Indexing strategy (§2.3/[STON86a])."""

import random

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match.markers import BasicLockingStrategy, PredicateIndexingStrategy

SOURCE = """
(literalize Emp name age dno)
(literalize Dept dno dname)
(p senior (Emp ^age > 55) --> (remove 1))
(p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
(p unstaffed (Dept ^dno <D> ^dname <W>) -(Emp ^dno <D>) --> (remove 1))
"""


def build(cls):
    program = parse_program(SOURCE)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    return wm, cls(wm, analyses, counters=Counters())


class TestPredicateIndexing:
    def test_registered(self):
        from repro.match import STRATEGIES

        assert STRATEGIES["predicate-index"] is PredicateIndexingStrategy

    def test_detects_selections(self):
        wm, strategy = build(PredicateIndexingStrategy)
        wm.insert("Emp", ("Ann", 60, 1))
        assert len(strategy.conflict_set) == 1

    def test_detects_joins_and_negation(self):
        wm, strategy = build(PredicateIndexingStrategy)
        dept = wm.insert("Dept", (1, "Toy"))
        assert {i.rule_name for i in strategy.instantiations()} == {"unstaffed"}
        emp = wm.insert("Emp", ("Ann", 30, 1))
        assert {i.rule_name for i in strategy.instantiations()} == {"works-in"}
        wm.remove(emp)
        assert {i.rule_name for i in strategy.instantiations()} == {"unstaffed"}

    def test_no_marker_storage(self):
        wm, strategy = build(PredicateIndexingStrategy)
        emp = wm.insert("Emp", ("Ann", 60, 1))
        assert wm.relation("Emp").markers(emp.tid) == frozenset()
        report = strategy.space_report()
        assert report.marker_entries == 0
        assert report.detail["indexed_conditions"] == 5

    def test_every_update_searches_the_index(self):
        wm, strategy = build(PredicateIndexingStrategy)
        before = strategy.counters.index_lookups
        wm.insert("Emp", ("Ann", 30, 1))
        assert strategy.counters.index_lookups == before + 1

    def test_agrees_with_basic_locking_under_churn(self):
        program = parse_program(SOURCE)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        markers = BasicLockingStrategy(wm, analyses, counters=Counters())
        indexed = PredicateIndexingStrategy(wm, analyses, counters=Counters())
        rng = random.Random(2)
        live = []
        for _ in range(200):
            if rng.random() < 0.65 or not live:
                if rng.random() < 0.7:
                    live.append(
                        wm.insert(
                            "Emp",
                            (rng.choice("ab"), rng.randint(20, 70),
                             rng.randint(1, 3)),
                        )
                    )
                else:
                    live.append(
                        wm.insert("Dept", (rng.randint(1, 3), "Toy"))
                    )
            else:
                wm.remove(live.pop(rng.randrange(len(live))))
            assert markers.conflict_set_keys() == indexed.conflict_set_keys()

    def test_false_drops_counted(self):
        wm, strategy = build(PredicateIndexingStrategy)
        wm.insert("Emp", ("Ann", 30, 9))  # works-in candidate, no dept 9
        assert strategy.counters.false_drops >= 1
        assert len(strategy.conflict_set) == 0
