"""Tests for the tuple-marker (Basic Locking / POSTGRES) strategy."""

from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.markers import BasicLockingStrategy, marker_name


def build(source):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    return wm, BasicLockingStrategy(wm, analyses)


SOURCE = """
(literalize Emp name dno)
(literalize Dept dno dname)
(p R1 (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
(p R2 (Emp ^dno <D>) (Dept ^dno <D> ^dname Toy) --> (remove 1))
"""


class TestMarkers:
    def test_markers_set_on_satisfying_tuples(self):
        wm, markers = build(SOURCE)
        emp = wm.insert("Emp", ("Mike", 1))
        tagged = wm.relation("Emp").markers(emp.tid)
        assert marker_name("R1", 1) in tagged
        assert marker_name("R2", 1) in tagged

    def test_marked_rules_lookup(self):
        wm, markers = build(SOURCE)
        emp = wm.insert("Emp", ("Mike", 1))
        assert markers.marked_rules(emp) == {"R1", "R2"}

    def test_non_matching_tuple_gets_no_marker(self):
        source = """
        (literalize Emp name dno)
        (p only-mike (Emp ^name Mike) --> (remove 1))
        """
        wm, markers = build(source)
        sam = wm.insert("Emp", ("Sam", 1))
        assert wm.relation("Emp").markers(sam.tid) == frozenset()

    def test_conflict_set_correct(self):
        wm, markers = build(SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        assert len(markers.conflict_set) == 2  # R1 and R2

    def test_false_drops_counted(self):
        """§3.2: 'a new insertion to that relation will trigger both of
        these rules, even though it should not be fired because there are
        no matching Dept tuples.'"""
        wm, markers = build(SOURCE)
        wm.insert("Emp", ("Mike", 1))  # no Dept yet: both validations fail
        assert markers.counters.false_drops == 2
        assert len(markers.conflict_set) == 0

    def test_deletion_retracts(self):
        wm, markers = build(SOURCE)
        emp = wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        wm.remove(emp)
        assert len(markers.conflict_set) == 0

    def test_negation(self):
        source = """
        (literalize Emp name dno)
        (literalize Audit dno)
        (p unaudited (Emp ^name <N> ^dno <D>) -(Audit ^dno <D>) --> (remove 1))
        """
        wm, markers = build(source)
        audit = wm.insert("Audit", (1,))
        wm.insert("Emp", ("Mike", 1))
        assert len(markers.conflict_set) == 0
        wm.remove(audit)
        assert len(markers.conflict_set) == 1
        wm.insert("Audit", (1,))
        assert len(markers.conflict_set) == 0

    def test_space_report_counts_marker_entries(self):
        wm, markers = build(SOURCE)
        wm.insert("Emp", ("Mike", 1))
        report = markers.space_report()
        assert report.strategy == "markers"
        assert report.marker_entries == 2
        # §3.2: marker space is lower than storing full tuples — one cell
        # per marker.
        assert report.estimated_cells == report.marker_entries

    def test_markers_disappear_with_tuple(self):
        wm, markers = build(SOURCE)
        emp = wm.insert("Emp", ("Mike", 1))
        wm.remove(emp)
        assert markers.space_report().marker_entries == 0
