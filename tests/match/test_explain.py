"""Tests for the explain() diagnostics."""

import pytest

from repro.engine import ProductionSystem
from repro.errors import MatchError

SOURCE = """
(literalize Emp name dno)
(literalize Dept dno dname)
(literalize Audit dno)
(p works-toy
    (Emp ^name <N> ^dno <D>)
    (Dept ^dno <D> ^dname Toy)
    -(Audit ^dno <D>)
    -->
    (remove 1))
"""


@pytest.fixture(params=["patterns", "rete", "simplified", "markers"])
def system(request):
    return ProductionSystem(SOURCE, strategy=request.param)


class TestExplain:
    def test_unknown_rule(self, system):
        with pytest.raises(MatchError, match="no rule named"):
            system.explain("ghost")

    def test_empty_wm_blocks_positive_conditions(self, system):
        diagnosis = system.explain("works-toy")
        assert not diagnosis.satisfied
        blocking = {c.cond_number for c in diagnosis.blocking_conditions()}
        assert blocking == {1, 2}  # negated condition 3 is fine when empty

    def test_partial_satisfaction_identified(self, system):
        system.insert("Emp", ("Mike", 1))
        diagnosis = system.explain("works-toy")
        (emp, dept, audit) = diagnosis.conditions
        assert emp.satisfied and emp.matching_elements == 1
        assert not dept.satisfied
        assert audit.satisfied  # no blockers
        assert diagnosis.blocking_conditions() == [dept]

    def test_full_satisfaction(self, system):
        system.insert("Emp", ("Mike", 1))
        system.insert("Dept", (1, "Toy"))
        diagnosis = system.explain("works-toy")
        assert diagnosis.satisfied
        assert diagnosis.instantiations == 1
        assert diagnosis.blocking_conditions() == []

    def test_negated_condition_blocks_when_witnessed(self, system):
        system.insert("Emp", ("Mike", 1))
        system.insert("Dept", (1, "Toy"))
        system.insert("Audit", (1,))
        diagnosis = system.explain("works-toy")
        assert not diagnosis.satisfied
        (audit,) = diagnosis.blocking_conditions()
        assert audit.negated
        assert audit.matching_elements == 1

    def test_rendering(self, system):
        system.insert("Emp", ("Mike", 1))
        text = str(system.explain("works-toy"))
        assert "works-toy: not satisfied" in text
        assert "[BLK]" in text
        assert "[ok ]" in text


class TestPatternsExplainDetail:
    def test_mark_state_included(self):
        system = ProductionSystem(SOURCE, strategy="patterns")
        system.insert("Emp", ("Mike", 1))
        diagnosis = system.explain("works-toy")
        dept = diagnosis.conditions[1]
        assert dept.detail["patterns"] >= 1
        assert "mark_bits" in dept.detail
        assert dept.detail["full_patterns"] >= 0

    def test_full_pattern_visible_when_satisfiable(self):
        system = ProductionSystem(SOURCE, strategy="patterns")
        system.insert("Emp", ("Mike", 1))
        system.insert("Dept", (1, "Toy"))
        diagnosis = system.explain("works-toy")
        assert any(
            c.detail.get("full_patterns", 0) > 0 for c in diagnosis.conditions
        )
