"""Network-compilation tests, including the Figure 3 topology (F3)."""

from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.rete import ReteStrategy, SharedReteStrategy, build_network


def compile_network(source, share=False):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    return build_network(analyses, program.schemas, share=share)


class TestFigure3Topology:
    """Figure 3: the network compiled from the two rules of Example 2."""

    def test_figure3_topology(self, example2_source):
        network = compile_network(example2_source)
        # Naive compilation: one alpha memory per condition element —
        # 2 rules x 2 CEs.  The class check plus the constant tests of each
        # CE fold into the alpha memory's one-input test chain.
        assert len(network.alpha_memories) == 4
        assert {am.class_name for am in network.alpha_memories} == {
            "Goal",
            "Expression",
        }
        # One two-input node per CE, terminal per rule.
        assert len(network.join_nodes) == 4
        assert len(network.production_nodes) == 2
        # The join on <N> is a single equality test at the Expression level.
        terminal_joins = [
            j for j in network.join_nodes if j.amem.class_name == "Expression"
        ]
        for join in terminal_joins:
            assert len(join.tests) == 1
            (test,) = join.tests
            assert test.op == "="
            assert test.levels_up == 1

    def test_shared_network_collapses_common_goal_test(self, example2_source):
        shared = compile_network(example2_source, share=True)
        naive = compile_network(example2_source, share=False)
        # Both rules test the identical (Goal ^Type Simplify ^Object <N>)
        # condition: sharing folds the two Goal alpha memories into one and
        # shares the first join.
        assert len(shared.alpha_memories) == 3
        assert len(naive.alpha_memories) == 4
        assert len(shared.join_nodes) <= len(naive.join_nodes)

    def test_node_count(self, example2_source):
        network = compile_network(example2_source)
        assert network.node_count() == 4 + 4 + 0 + 2


class TestChainNetworks:
    """Figure 1: the chain C1 ∧ C2 ∧ ... ∧ Cn."""

    def _chain_source(self, n):
        lines = ["(literalize C0 v)"]
        ces = ["(C0 ^v <x>)"]
        for i in range(1, n):
            lines.append(f"(literalize C{i} v)")
            ces.append(f"(C{i} ^v <x>)")
        lines.append(f"(p chain {' '.join(ces)} --> (halt))")
        return "\n".join(lines)

    def test_chain_depth_matches_condition_count(self):
        network = compile_network(self._chain_source(5))
        assert len(network.join_nodes) == 5
        assert len(network.beta_memories) == 5  # top + 4 intermediate

    def test_propagation_cost_grows_with_depth(self):
        """§4's complaint: inserting into a deep chain costs activations."""
        costs = {}
        for n in (2, 6):
            source = self._chain_source(n)
            program = parse_program(source)
            analyses = analyze_program(program.rules, program.schemas)
            wm = WorkingMemory(program.schemas)
            strategy = ReteStrategy(wm, analyses)
            # fill every class, then measure one insert into C0
            for i in range(n):
                wm.insert(f"C{i}", (1,))
            before = strategy.counters.snapshot()
            wm.insert("C0", (1,))
            costs[n] = strategy.counters.diff(before)["node_activations"]
        assert costs[6] > costs[2]


class TestSharing:
    def test_identical_rules_share_everything_but_production(self):
        source = """
        (literalize E a b)
        (p r1 (E ^a 1 ^b <x>) (E ^a 2 ^b <x>) --> (halt))
        (p r2 (E ^a 1 ^b <x>) (E ^a 2 ^b <x>) --> (remove 1))
        """
        shared = compile_network(source, share=True)
        naive = compile_network(source, share=False)
        assert len(shared.alpha_memories) == 2
        assert len(naive.alpha_memories) == 4
        assert len(shared.join_nodes) == 2
        assert len(naive.join_nodes) == 4
        assert len(shared.production_nodes) == 2

    def test_shared_and_naive_agree_on_matches(self):
        source = """
        (literalize E a b)
        (p r1 (E ^a 1 ^b <x>) (E ^a 2 ^b <x>) --> (halt))
        (p r2 (E ^a 1 ^b <x>) (E ^a 2 ^b <x>) --> (remove 1))
        """
        program = parse_program(source)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        naive = ReteStrategy(wm, analyses)
        shared = SharedReteStrategy(wm, analyses)
        wm.insert("E", (1, 7))
        wm.insert("E", (2, 7))
        assert naive.conflict_set_keys() == shared.conflict_set_keys()
        assert len(naive.conflict_set) == 2
