"""Rete runtime behaviour: propagation, retraction, negation, memories."""


from repro.engine import WorkingMemory
from repro.lang import analyze_program, parse_program
from repro.match.rete import DbmsReteStrategy, ReteStrategy


def build(source, strategy_cls=ReteStrategy, **kwargs):
    program = parse_program(source)
    analyses = analyze_program(program.rules, program.schemas)
    wm = WorkingMemory(program.schemas)
    return wm, strategy_cls(wm, analyses, **kwargs)


JOIN_SOURCE = """
(literalize Emp name dno)
(literalize Dept dno dname)
(p works-in (Emp ^name <N> ^dno <D>) (Dept ^dno <D> ^dname <W>) --> (remove 1))
"""


class TestJoinPropagation:
    def test_left_then_right_arrival(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        assert len(rete.conflict_set) == 0  # queued, waiting for a match
        wm.insert("Dept", (1, "Toy"))
        assert len(rete.conflict_set) == 1

    def test_right_then_left_arrival(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Dept", (1, "Toy"))
        wm.insert("Emp", ("Mike", 1))
        assert len(rete.conflict_set) == 1

    def test_non_joining_tuples_stay_queued(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (2, "Toy"))
        assert len(rete.conflict_set) == 0

    def test_multiple_matches_produce_multiple_instantiations(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Emp", ("Sam", 1))
        wm.insert("Dept", (1, "Toy"))
        assert len(rete.conflict_set) == 2

    def test_retraction_of_left_element(self):
        wm, rete = build(JOIN_SOURCE)
        emp = wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        wm.remove(emp)
        assert len(rete.conflict_set) == 0

    def test_retraction_of_right_element(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        dept = wm.insert("Dept", (1, "Toy"))
        wm.remove(dept)
        assert len(rete.conflict_set) == 0

    def test_retraction_then_reinsertion(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        dept = wm.insert("Dept", (1, "Toy"))
        wm.remove(dept)
        wm.insert("Dept", (1, "Shoe"))
        assert len(rete.conflict_set) == 1

    def test_bindings_exposed(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        (inst,) = rete.instantiations()
        assert inst.binding_map() == {"N": "Mike", "D": 1, "W": "Toy"}


NEGATION_SOURCE = """
(literalize Emp name dno)
(literalize Audit dno)
(p unaudited (Emp ^name <N> ^dno <D>) -(Audit ^dno <D>) --> (remove 1))
"""


class TestNegation:
    def test_fires_without_witness(self):
        wm, rete = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        assert len(rete.conflict_set) == 1

    def test_witness_blocks(self):
        wm, rete = build(NEGATION_SOURCE)
        wm.insert("Audit", (1,))
        wm.insert("Emp", ("Mike", 1))
        assert len(rete.conflict_set) == 0

    def test_witness_arriving_later_retracts(self):
        wm, rete = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Audit", (1,))
        assert len(rete.conflict_set) == 0

    def test_unrelated_witness_does_not_block(self):
        wm, rete = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Audit", (2,))
        assert len(rete.conflict_set) == 1

    def test_last_witness_removal_reenables(self):
        wm, rete = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        a1 = wm.insert("Audit", (1,))
        a2 = wm.insert("Audit", (1,))
        wm.remove(a1)
        assert len(rete.conflict_set) == 0  # a2 still blocks
        wm.remove(a2)
        assert len(rete.conflict_set) == 1

    def test_negated_slot_is_none(self):
        wm, rete = build(NEGATION_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        (inst,) = rete.instantiations()
        assert inst.wmes[1] is None


class TestSelfJoin:
    SOURCE = """
    (literalize Node id parent)
    (p edge (Node ^id <P> ^parent *) (Node ^parent <P> ^id <C>) --> (remove 2))
    """

    def test_element_matching_both_roles(self):
        wm, rete = build(self.SOURCE)
        wm.insert("Node", (1, 1))  # its own parent: matches both CEs
        assert len(rete.conflict_set) == 1

    def test_self_join_retraction(self):
        wm, rete = build(self.SOURCE)
        node = wm.insert("Node", (1, 1))
        wm.insert("Node", (2, 1))
        assert len(rete.conflict_set) == 2
        wm.remove(node)
        assert len(rete.conflict_set) == 0


class TestDbmsMemories:
    def test_memories_mirrored_into_relations(self):
        program = parse_program(JOIN_SOURCE)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        rete = DbmsReteStrategy(wm, analyses)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        mirrored = sum(len(t) for t in rete.mirror_catalog.tables())
        assert mirrored > 0

    def test_mirror_rows_removed_on_retraction(self):
        program = parse_program(JOIN_SOURCE)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        rete = DbmsReteStrategy(wm, analyses)
        emp = wm.insert("Emp", ("Mike", 1))
        dept = wm.insert("Dept", (1, "Toy"))
        wm.remove(emp)
        wm.remove(dept)
        assert sum(len(t) for t in rete.mirror_catalog.tables()) == 0

    def test_sqlite_mirror_backend(self):
        program = parse_program(JOIN_SOURCE)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        rete = DbmsReteStrategy(wm, analyses, memory_backend="sqlite")
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        assert len(rete.conflict_set) == 1
        rete.mirror_catalog.close()


class TestSpaceReport:
    def test_tokens_counted(self):
        wm, rete = build(JOIN_SOURCE)
        wm.insert("Emp", ("Mike", 1))
        wm.insert("Dept", (1, "Toy"))
        report = rete.space_report()
        assert report.strategy == "rete"
        assert report.stored_tokens > 0
        assert report.estimated_cells > 0
        assert report.detail["join_nodes"] == 2

    def test_empty_network_stores_nothing(self):
        wm, rete = build(JOIN_SOURCE)
        report = rete.space_report()
        assert report.stored_tokens == 0
