"""Public-API quality gates: exports resolve and carry documentation."""

import inspect

import pytest

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_every_public_item_is_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []

    def test_every_module_has_a_docstring(self):
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        missing = []
        for path in sorted(root.rglob("*.py")):
            text = path.read_text(encoding="utf-8")
            stripped = text.lstrip()
            if not (
                stripped.startswith('"""') or stripped.startswith("'''")
            ):
                missing.append(str(path.relative_to(root)))
        assert missing == []

    def test_strategy_registry_is_complete(self):
        assert set(repro.STRATEGIES) == {
            "rete",
            "rete-shared",
            "rete-dbms",
            "simplified",
            "simplified-indexed",
            "patterns",
            "markers",
            "predicate-index",
        }

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.lang",
            "repro.storage",
            "repro.rindex",
            "repro.match",
            "repro.engine",
            "repro.txn",
            "repro.views",
            "repro.workload",
            "repro.bench",
            "repro.cli",
        ],
    )
    def test_subpackages_import(self, module):
        __import__(module)
