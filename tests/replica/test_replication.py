"""The sans-io replication core: shipper framing, follower catch-up,
bit-equivalence with recovery, and fencing — no sockets involved.

A real :class:`~repro.recovery.session.DurableRun` plays the primary;
its WAL tap feeds a :class:`~repro.replica.shipper.LogShipper`, whose
frames drive a :class:`~repro.replica.follower.FollowerState` exactly
like the server's ship rounds do.  The follower's promoted state must
be bit-identical (WM rows, Rete conflict set, firings, output) to what
``recover()`` of the primary's own log produces.
"""

import json
import os

import pytest

from repro.engine import ProductionSystem
from repro.recovery import DurableRun, recover
from repro.recovery.wal import _crc
from repro.replica import (
    FencedError,
    FollowerState,
    FollowerTenant,
    LogShipper,
    ReplicationError,
)

PROGRAM = """
(literalize counter n)
(literalize limit max)
(p bump
    (counter ^n <x>)
    (limit ^max > <x>)
    -->
    (modify 1 ^n (compute <x> + 1))
    (write (compute <x> + 1)))
(make counter ^n 0)
(make limit ^max 5)
"""

CFG = {"strategy": "rete", "resolution": "lex", "backend": "memory",
       "seed": 0, "batch_size": 1, "firing": "instance"}


def wm_rows(system):
    return {
        name: sorted((w.tid, w.timetag, w.values)
                     for w in system.wm.tuples(name))
        for name in system.wm.schemas
    }


def cs_keys(system):
    return sorted(system.strategy.conflict_set_keys())


def start_primary(wal_path, tap=None):
    system = ProductionSystem(
        PROGRAM, **{k: v for k, v in CFG.items() if k != "firing"}
    )
    return DurableRun.start(
        system, str(wal_path), PROGRAM, CFG, fsync_every=1, wal_tap=tap
    )


def drive(run):
    """The reference workload: cycles, an ops boundary, more cycles,
    then un-boundaried debris a crash would leave behind."""
    run.run(max_cycles=5)
    run.system.wm.insert("limit", {"max": 9})
    run.ops_boundary(position=1)
    run.run(max_cycles=2)
    run.system.wm.insert("limit", {"max": 11})
    run.abandon()


def assert_equivalent(state, reference):
    assert state.next_seq == reference.next_seq
    assert wm_rows(state.system) == wm_rows(reference.system)
    assert cs_keys(state.system) == cs_keys(reference.system)
    assert list(state.fired) == list(reference.fired)
    assert state.extra == reference.extra
    assert list(state.system.output) == list(reference.system.output)
    assert state.phase == reference.phase
    assert state.halted == reference.halted


class TestShipperCore:
    def test_tap_tracks_tips_without_buffering_when_unattached(self,
                                                               tmp_path):
        shipper = LogShipper()
        run = start_primary(tmp_path / "t.wal", tap=shipper.tap_for("t"))
        drive(run)
        assert shipper.tips["t"] > 0
        assert shipper._pending == {}

    def test_round_frames_drain_pending_and_end_with_commit(self,
                                                            tmp_path):
        shipper = LogShipper()
        shipper.attach(object())
        run = start_primary(tmp_path / "t.wal", tap=shipper.tap_for("t"))
        drive(run)
        frames = shipper.round_frames()
        assert [f["frame"] for f in frames] == ["records", "commit"]
        records = frames[0]["records"]
        assert records[0]["seq"] == 1 and records[0]["kind"] == "meta"
        assert frames[1]["tips"] == {"t": shipper.tips["t"]}
        # drained: a second round ships nothing new, just the barrier
        assert [f["frame"] for f in shipper.round_frames()] == ["commit"]

    def test_shipped_records_are_exactly_the_durable_log(self, tmp_path):
        """The tap fires after fsync: what ships is exactly what is on
        disk — never an unsynced buffer, never a truncated prefix."""
        wal = tmp_path / "t.wal"
        shipper = LogShipper()
        shipper.attach(object())
        run = start_primary(wal, tap=shipper.tap_for("t"))
        drive(run)
        [records_frame, _] = shipper.round_frames()
        shipped = [r["seq"] for r in records_frame["records"]]
        with open(wal, encoding="utf-8") as fh:
            on_disk = [json.loads(line)["seq"] for line in fh]
        assert shipped == on_disk
        assert shipper.tips["t"] == on_disk[-1]

    def test_second_attach_refused(self):
        shipper = LogShipper()
        shipper.attach(object())
        with pytest.raises(RuntimeError, match="already attached"):
            shipper.attach(object())

    def test_mark_degraded_detaches_and_counts(self):
        shipper = LogShipper()
        shipper.attach(object())
        shipper.on_sync("t", 1, ['{"seq":1}\n'])
        shipper.mark_degraded()
        assert shipper.link is None
        assert shipper.degraded == 1
        assert shipper._pending == {}

    def test_handle_ack_records_follower_positions(self):
        shipper = LogShipper()
        shipper.handle_ack({"frame": "ack", "epoch": 1,
                            "applied": {"t": 9}, "lag_records": 0})
        assert shipper.follower_acked == {"t": 9}
        assert shipper.round_acks == 1


class TestFollowerEquivalence:
    def test_live_stream_matches_recovery_of_primary_log(self, tmp_path):
        wal = tmp_path / "t.wal"
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        shipper = LogShipper(epoch=1)
        shipper.attach(object())
        run = start_primary(wal, tap=shipper.tap_for("t"))
        drive(run)
        for frame in shipper.round_frames():
            ack = follower.handle_frame(frame)
        assert ack is not None and ack["frame"] == "ack"

        [state] = follower.pop_states().values()
        assert_equivalent(state, recover(str(wal)))

    def test_follower_local_log_is_itself_recoverable(self, tmp_path):
        wal = tmp_path / "t.wal"
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        run = start_primary(
            wal,
            tap=lambda _first, lines: follower.ingest_lines(
                "t", list(lines)
            ),
        )
        drive(run)
        state = follower.pop_states()["t"]
        assert_equivalent(recover(state.wal_path), recover(str(wal)))

    def test_snapshot_catchup_matches_live_stream(self, tmp_path):
        """A follower that attaches after the fact bootstraps from one
        snapshot frame and lands on the same state."""
        wal = tmp_path / "t.wal"
        shipper = LogShipper(epoch=1)
        run = start_primary(wal, tap=shipper.tap_for("t"))
        drive(run)

        frame = shipper.snapshot_frame("t", str(wal), None, have_seq=0)
        assert frame["frame"] == "snapshot" and frame["base_seq"] == 0
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        follower.handle_frame(frame)
        follower.handle_frame(
            {"frame": "commit", "epoch": 1, "tips": dict(shipper.tips)}
        )
        [state] = follower.pop_states().values()
        assert_equivalent(state, recover(str(wal)))

    def test_snapshot_overlap_after_partial_have_is_deduped(self,
                                                            tmp_path):
        """Reconnect: the follower already holds a prefix; the snapshot
        re-ships from its have seq and duplicates are ignored."""
        wal = tmp_path / "t.wal"
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        shipper = LogShipper(epoch=1)
        shipper.attach(object())
        run = start_primary(wal, tap=shipper.tap_for("t"))
        run.run(max_cycles=3)
        for frame in shipper.round_frames():
            follower.handle_frame(frame)
        have = follower.have()["t"]
        assert have > 0

        run.run(max_cycles=4)
        run.abandon()
        # Reconnect handshake: snapshot anchored on the follower's have,
        # then the commit barrier.
        shipper.detach()
        shipper.attach(object())
        frame = shipper.snapshot_frame("t", str(wal), None, have_seq=have)
        follower.handle_frame(frame)
        follower.handle_frame(
            {"frame": "commit", "epoch": 1, "tips": dict(shipper.tips)}
        )
        [state] = follower.pop_states().values()
        assert_equivalent(state, recover(str(wal)))


class TestFollowerSafety:
    def ship_all(self, tmp_path, follower):
        wal = tmp_path / "t.wal"
        run = start_primary(
            wal,
            tap=lambda _first, lines: follower.ingest_lines(
                "t", list(lines)
            ),
        )
        drive(run)
        return str(wal)

    def test_duplicate_records_are_ignored(self, tmp_path):
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        wal = self.ship_all(tmp_path, follower)
        tenant = follower.tenants["t"]
        before = tenant.received_seq
        with open(wal, encoding="utf-8") as fh:
            lines = fh.readlines()
        follower.ingest_lines("t", lines[:3])  # a reconnect overlap
        assert tenant.received_seq == before
        [state] = follower.pop_states().values()
        assert_equivalent(state, recover(wal))

    def test_sequence_gap_raises(self, tmp_path):
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        self.ship_all(tmp_path, follower)
        tenant = follower.tenants["t"]
        gap_seq = tenant.received_seq + 5
        body = {"position": 0}
        with pytest.raises(ReplicationError, match="jumped"):
            tenant.receive(gap_seq, "boundary", body,
                           _crc(gap_seq, "boundary", body))

    def test_crc_mismatch_raises(self, tmp_path):
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        self.ship_all(tmp_path, follower)
        tenant = follower.tenants["t"]
        seq = tenant.received_seq + 1
        with pytest.raises(ReplicationError, match="CRC"):
            tenant.receive(seq, "boundary", {"position": 0}, 12345)

    def test_unknown_tenant_mid_stream_requires_snapshot(self, tmp_path):
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        body = {"position": 0}
        record = {"seq": 7, "kind": "boundary", "body": body,
                  "crc": _crc(7, "boundary", body)}
        with pytest.raises(ReplicationError, match="snapshot"):
            follower.ingest_lines("ghost", [json.dumps(record)])

    def test_stale_epoch_frame_is_fenced(self, tmp_path):
        follower = FollowerState(str(tmp_path / "f"), epoch=3)
        with pytest.raises(FencedError) as excinfo:
            follower.handle_frame(
                {"frame": "commit", "epoch": 2, "tips": {}}
            )
        assert excinfo.value.stale_epoch == 2
        assert excinfo.value.local_epoch == 3
        assert "stale epoch 2" in str(excinfo.value)

    def test_newer_epoch_frames_are_accepted(self, tmp_path):
        """After a promotion elsewhere, a re-handshaked follower sees
        the new primary's higher epoch — never fenced."""
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        ack = follower.handle_frame(
            {"frame": "commit", "epoch": 5, "tips": {}}
        )
        assert ack["frame"] == "ack"

    def test_pop_states_discards_boundaryless_tenants(self, tmp_path):
        """A tenant whose setup commit never shipped has nothing durable
        to promote — recovery's nothing-durable rule."""
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        meta = {"program": PROGRAM, **CFG}
        tenant = FollowerTenant.bootstrap("empty", str(tmp_path / "f"),
                                          meta)
        follower.tenants["empty"] = tenant
        assert follower.pop_states() == {}
        assert not os.path.exists(tenant.wal_path)


class TestLagHeartbeat:
    def test_commit_ack_reports_zero_lag_when_caught_up(self, tmp_path):
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        shipper = LogShipper(epoch=1)
        shipper.attach(object())
        run = start_primary(tmp_path / "t.wal",
                            tap=shipper.tap_for("t"))
        drive(run)
        ack = None
        for frame in shipper.round_frames():
            ack = follower.handle_frame(frame) or ack
        assert ack["lag_records"] == 0
        assert ack["applied"] == {"t": follower.tenants["t"].applied_seq}

        lag = follower.lag()
        assert lag["epoch"] == 1
        assert lag["lag_records"] == 0
        assert lag["last_commit_age_s"] is not None
        assert lag["tenants"]["t"]["tip_seq"] == shipper.tips["t"]

    def test_lag_counts_unshipped_tip_distance(self, tmp_path):
        """A commit frame whose tip is ahead of what was shipped (the
        degraded-window shape) shows up as positive lag."""
        follower = FollowerState(str(tmp_path / "f"), epoch=1)
        run = start_primary(
            tmp_path / "t.wal",
            tap=lambda _first, lines: follower.ingest_lines(
                "t", list(lines)
            ),
        )
        drive(run)
        tip = follower.tenants["t"].received_seq
        ack = follower.handle_frame(
            {"frame": "commit", "epoch": 1, "tips": {"t": tip + 4}}
        )
        assert ack["lag_records"] == 4
        assert follower.lag()["tenants"]["t"]["lag_records"] == 4
