"""The fencing epoch file: persistence, monotonicity, atomicity."""

import json
import os

import pytest

from repro.replica import bump_epoch, read_epoch, write_epoch
from repro.replica.epoch import epoch_path


class TestEpochFile:
    def test_missing_file_reads_as_zero(self, tmp_path):
        assert read_epoch(str(tmp_path)) == 0

    def test_round_trip(self, tmp_path):
        write_epoch(str(tmp_path), 3)
        assert read_epoch(str(tmp_path)) == 3

    def test_bump_advances_by_one(self, tmp_path):
        assert bump_epoch(str(tmp_path)) == 1
        assert bump_epoch(str(tmp_path)) == 2
        assert read_epoch(str(tmp_path)) == 2

    def test_epoch_only_ever_grows(self, tmp_path):
        write_epoch(str(tmp_path), 5)
        with pytest.raises(ValueError, match="monotonic"):
            write_epoch(str(tmp_path), 4)
        assert read_epoch(str(tmp_path)) == 5

    def test_rewrite_at_same_epoch_is_allowed(self, tmp_path):
        """Restarting a primary re-persists its current epoch."""
        write_epoch(str(tmp_path), 2)
        write_epoch(str(tmp_path), 2)
        assert read_epoch(str(tmp_path)) == 2

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        write_epoch(str(tmp_path), 1)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["EPOCH"]

    def test_corrupt_epoch_raises(self, tmp_path):
        with open(epoch_path(str(tmp_path)), "w", encoding="utf-8") as fh:
            json.dump({"epoch": -3}, fh)
        with pytest.raises(ValueError, match="invalid epoch"):
            read_epoch(str(tmp_path))

    def test_file_is_one_json_line(self, tmp_path):
        write_epoch(str(tmp_path), 7)
        with open(epoch_path(str(tmp_path)), encoding="utf-8") as fh:
            raw = fh.read()
        assert raw == '{"epoch": 7}\n' or json.loads(raw) == {"epoch": 7}
        assert os.path.exists(epoch_path(str(tmp_path)))
