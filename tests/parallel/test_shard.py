"""Shard planning is a pure, deterministic function of the input."""

from dataclasses import dataclass

from repro.parallel import (
    chunk_spans,
    contiguous_chunks,
    hash_shards,
    plan_shard_count,
)


@dataclass
class FakeWme:
    tid: int


class TestChunkSpans:
    def test_covers_range_exactly(self):
        for count in (1, 2, 7, 16, 100):
            for chunks in (1, 2, 3, 8):
                spans = chunk_spans(count, chunks)
                flat = [i for start, stop in spans for i in range(start, stop)]
                assert flat == list(range(count))

    def test_near_equal_larger_first(self):
        spans = chunk_spans(10, 4)
        sizes = [stop - start for start, stop in spans]
        assert sizes == [3, 3, 2, 2]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_spans_than_items(self):
        assert len(chunk_spans(3, 8)) == 3
        assert all(stop > start for start, stop in chunk_spans(3, 8))

    def test_single_chunk(self):
        assert chunk_spans(5, 1) == [(0, 5)]


class TestContiguousChunks:
    def test_concatenation_round_trips(self):
        items = list(range(23))
        for chunks in (1, 2, 4, 23, 50):
            parts = contiguous_chunks(items, chunks)
            assert [x for part in parts for x in part] == items

    def test_empty_input(self):
        assert contiguous_chunks([], 4) == []


class TestPlanShardCount:
    def test_serial_cases(self):
        assert plan_shard_count(0, 4, 4) == 1
        assert plan_shard_count(100, 1, 4) == 1
        assert plan_shard_count(-5, 4, 4) == 1

    def test_small_inputs_stay_whole(self):
        # 6 items with min shard 4 → one shard, not two tiny ones.
        assert plan_shard_count(6, 4, 4) == 1

    def test_capped_by_workers(self):
        assert plan_shard_count(1000, 4, 4) == 4

    def test_capped_by_min_shard_items(self):
        assert plan_shard_count(9, 4, 4) == 2


class TestHashShards:
    def test_partition_is_exact(self):
        wmes = [FakeWme(tid) for tid in (5, 12, 3, 8, 21, 4, 17)]
        shards = hash_shards(wmes, 3)
        seen = sorted(
            position for positions, _ in shards for position in positions
        )
        assert seen == list(range(len(wmes)))
        for positions, elements in shards:
            assert [wmes[p] for p in positions] == elements

    def test_keyed_by_tid_mod_shards(self):
        wmes = [FakeWme(tid) for tid in range(10)]
        shards = hash_shards(wmes, 2)
        for _, elements in shards:
            residues = {wme.tid % 2 for wme in elements}
            assert len(residues) == 1

    def test_single_shard_short_circuits(self):
        wmes = [FakeWme(1), FakeWme(2)]
        assert hash_shards(wmes, 1) == [([0, 1], wmes)]
        assert hash_shards([], 4) == []

    def test_deterministic(self):
        wmes = [FakeWme(tid) for tid in (9, 2, 2, 7, 40)]
        assert hash_shards(wmes, 4) == hash_shards(list(wmes), 4)
