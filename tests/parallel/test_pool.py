"""WorkerPool: ordered merges, deterministic accounting, clean lifecycle."""

import pytest

from repro.instrument import Counters
from repro.parallel import PoolStats, WorkerPool


@pytest.fixture
def pool():
    p = WorkerPool(4)
    yield p
    p.close()


class TestMapTasks:
    def test_results_in_submission_order(self, pool):
        thunks = [lambda i=i: i * i for i in range(50)]
        assert pool.map_tasks(thunks) == [i * i for i in range(50)]

    def test_inline_when_single_task(self, pool):
        assert pool.map_tasks([lambda: "only"]) == ["only"]

    def test_inline_when_workers_is_one(self):
        serial = WorkerPool(1)
        assert not serial.active
        assert serial.map_tasks([lambda: 1, lambda: 2]) == [1, 2]

    def test_empty_fanout(self, pool):
        assert pool.map_tasks([]) == []

    def test_task_error_reraises_on_caller(self, pool):
        def boom():
            raise RuntimeError("shard failed")

        with pytest.raises(RuntimeError, match="shard failed"):
            pool.map_tasks([lambda: 1, boom, lambda: 3])
        # The pool survives a failed fan-out.
        assert pool.map_tasks([lambda: "ok", lambda: "ok"]) == ["ok", "ok"]


class TestMapChunks:
    def test_concatenates_in_chunk_order(self, pool):
        items = list(range(100))
        result = pool.map_chunks(items, lambda chunk, c: [x + 1 for x in chunk])
        assert result == [x + 1 for x in items]

    def test_counters_merge_matches_serial(self, pool):
        items = list(range(37))

        def compute(chunk, counters):
            counters.comparisons += len(chunk)
            return list(chunk)

        parallel = Counters()
        pool.map_chunks(items, compute, counters=parallel)
        serial = Counters()
        compute(items, serial)
        assert parallel.comparisons == serial.comparisons == 37

    def test_small_input_runs_as_one_chunk(self, pool):
        before = pool.stats.tasks
        assert pool.map_chunks([7], lambda chunk, c: chunk) == [7]
        # One chunk → inline, no fan-out tasks recorded.
        assert pool.stats.tasks == before


class TestAccounting:
    def test_stats_are_scheduling_independent(self):
        a, b = WorkerPool(3), WorkerPool(3)
        for p in (a, b):
            p.map_tasks([lambda: None] * 7, sizes=[5, 1, 5, 1, 5, 1, 5])
            p.close()
        assert a.stats == b.stats
        # Round-robin shares: w0 gets sizes 5+1+5, w1 gets 1+5, w2 gets 5+1.
        assert a.stats == PoolStats(
            workers=3, fanouts=1, tasks=7, items=23, critical_path_items=11
        )

    def test_speedup_bound(self):
        stats = PoolStats(workers=4, items=100, critical_path_items=25)
        assert stats.speedup_bound == 4.0
        assert PoolStats(workers=4).speedup_bound == 1.0

    def test_as_dict_round_trips(self):
        pool = WorkerPool(2)
        pool.map_tasks([lambda: 1, lambda: 2], sizes=[3, 4])
        snapshot = pool.stats.as_dict()
        assert snapshot["workers"] == 2
        assert snapshot["items"] == 7
        assert snapshot["critical_path_items"] == 4
        pool.close()


class TestLifecycle:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_close_is_idempotent_and_deactivates(self):
        pool = WorkerPool(3)
        assert pool.active
        pool.close()
        pool.close()
        assert not pool.active
        # Closed pools still run fan-outs, inline.
        assert pool.map_tasks([lambda: 1, lambda: 2]) == [1, 2]

    def test_drain_on_idle_pool_returns(self, pool):
        pool.drain()  # must not block

    def test_shard_count_respects_min_items(self):
        pool = WorkerPool(4, min_shard_items=4)
        assert pool.shard_count(3) == 1
        assert pool.shard_count(100) == 4
        pool.close()
