"""Workload-generator tests: determinism, validity, knob behaviour."""

import pytest

from repro.engine import ProductionSystem, WorkingMemory
from repro.lang import analyze_program
from repro.match import STRATEGIES
from repro.workload import (
    EXAMPLE5_INSERTS,
    WorkloadSpec,
    chain_program,
    contended_rules_program,
    counter_program,
    generate_insert_stream,
    generate_program,
    generate_workload,
    independent_rules_program,
    mixed_stream,
    monkey_bananas_program,
)


class TestGeneratedPrograms:
    def test_deterministic_for_same_seed(self):
        a = generate_program(WorkloadSpec(seed=4))
        b = generate_program(WorkloadSpec(seed=4))
        assert a.program.rules == b.program.rules

    def test_different_seeds_differ(self):
        a = generate_program(WorkloadSpec(seed=1, rules=20))
        b = generate_program(WorkloadSpec(seed=2, rules=20))
        assert a.program.rules != b.program.rules

    def test_rule_count_honoured(self):
        workload = generate_program(WorkloadSpec(rules=17))
        assert len(workload.program.rules) == 17

    def test_generated_rules_analyze_cleanly(self):
        workload = generate_program(
            WorkloadSpec(rules=30, min_conditions=1, max_conditions=4, seed=9)
        )
        analyses = analyze_program(
            workload.program.rules, workload.program.schemas
        )
        assert len(analyses) == 30

    def test_negation_probability(self):
        spec = WorkloadSpec(
            rules=30, min_conditions=2, max_conditions=3,
            negation_probability=0.8, seed=2,
        )
        workload = generate_program(spec)
        negated = sum(
            1
            for rule in workload.program.rules
            for ce in rule.condition_elements
            if ce.negated
        )
        assert negated > 0

    def test_generated_rules_run_under_every_strategy(self):
        spec = WorkloadSpec(rules=8, classes=3, seed=6)
        workload = generate_workload(spec, stream_length=60)
        reference = None
        for name in sorted(STRATEGIES):
            wm = WorkingMemory(workload.program.schemas)
            strategy = STRATEGIES[name](
                wm,
                analyze_program(
                    workload.program.rules, workload.program.schemas
                ),
            )
            for class_name, values in workload.insert_stream:
                wm.insert(class_name, values)
            keys = strategy.conflict_set_keys()
            if reference is None:
                reference = keys
            else:
                assert keys == reference, name

    def test_shared_pool_creates_overlap(self):
        spec = WorkloadSpec(rules=20, shared_condition_pool=3, seed=1)
        workload = generate_program(spec)
        signatures = [
            ce.class_name + str(sorted(str(t) for t in ce.tests))
            for rule in workload.program.rules
            for ce in rule.condition_elements
        ]
        assert len(set(signatures)) < len(signatures)


class TestStreams:
    def test_insert_stream_respects_domain(self):
        spec = WorkloadSpec(domain=3, classes=2, attributes=2, seed=5)
        for class_name, values in generate_insert_stream(spec, 100):
            assert class_name in ("K0", "K1")
            assert all(0 <= v < 3 for v in values)

    def test_insert_stream_deterministic(self):
        spec = WorkloadSpec(seed=8)
        assert generate_insert_stream(spec, 50) == generate_insert_stream(
            spec, 50
        )

    def test_mixed_stream_delete_indices_valid(self):
        spec = WorkloadSpec(seed=3)
        live = 0
        for kind, payload in mixed_stream(spec, 200, delete_fraction=0.4):
            if kind == "insert":
                live += 1
            else:
                assert 0 <= payload < live
                live -= 1


class TestCannedPrograms:
    def test_chain_program_depths(self):
        ps = ProductionSystem(chain_program(3))
        for i in range(3):
            ps.insert(f"C{i}", (0, "live"))
        assert len(ps.conflict_set) == 1

    def test_chain_program_rejects_zero(self):
        with pytest.raises(ValueError):
            chain_program(0)

    def test_counter_program_halts_at_limit(self):
        ps = ProductionSystem(counter_program(4))
        ps.insert("Counter", {"value": 0, "limit": 4})
        result = ps.run()
        assert result.halted

    def test_independent_rules_all_fire(self):
        ps = ProductionSystem(independent_rules_program(3))
        for i in range(3):
            ps.insert(f"T{i}", {"x": i})
        result = ps.run()
        assert sorted(result.fired_rule_names) == ["r0", "r1", "r2"]

    def test_contended_rules_all_fire(self):
        ps = ProductionSystem(contended_rules_program(3))
        ps.insert("Shared", {"x": 0})
        for i in range(3):
            ps.insert(f"T{i}", {"x": i})
        result = ps.run()
        assert len(result.fired) == 3
        (shared,) = ps.wm.tuples("Shared")
        assert shared.values == (3,)

    def test_monkey_bananas_plan(self):
        ps = ProductionSystem(monkey_bananas_program(), resolution="mea")
        ps.insert("Goal", {"status": "active"})
        ps.insert("Monkey", {"at": "door", "on": "floor", "holding": None})
        ps.insert("Object", {"name": "chair", "at": "corner"})
        ps.insert("Object", {"name": "bananas", "at": "ceiling"})
        result = ps.run(max_cycles=20)
        assert result.halted
        monkey = next(iter(ps.wm.tuples("Monkey")))
        assert monkey.values[2] == "bananas"  # holding
        goal = next(iter(ps.wm.tuples("Goal")))
        assert goal.values[0] == "satisfied"

    def test_example5_inserts_shape(self):
        assert [cls for cls, _ in EXAMPLE5_INSERTS] == ["B", "C", "A", "B"]
