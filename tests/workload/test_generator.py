"""Workload-generator tests: determinism, validity, knob behaviour."""

import pytest

from repro.engine import ProductionSystem, WorkingMemory
from repro.lang import analyze_program
from repro.match import STRATEGIES
from repro.workload import (
    EXAMPLE5_INSERTS,
    WorkloadSpec,
    chain_program,
    contended_rules_program,
    counter_program,
    generate_insert_stream,
    generate_program,
    generate_workload,
    independent_rules_program,
    mixed_stream,
    monkey_bananas_program,
)


class TestGeneratedPrograms:
    def test_deterministic_for_same_seed(self):
        a = generate_program(WorkloadSpec(seed=4))
        b = generate_program(WorkloadSpec(seed=4))
        assert a.program.rules == b.program.rules

    def test_different_seeds_differ(self):
        a = generate_program(WorkloadSpec(seed=1, rules=20))
        b = generate_program(WorkloadSpec(seed=2, rules=20))
        assert a.program.rules != b.program.rules

    def test_rule_count_honoured(self):
        workload = generate_program(WorkloadSpec(rules=17))
        assert len(workload.program.rules) == 17

    def test_generated_rules_analyze_cleanly(self):
        workload = generate_program(
            WorkloadSpec(rules=30, min_conditions=1, max_conditions=4, seed=9)
        )
        analyses = analyze_program(
            workload.program.rules, workload.program.schemas
        )
        assert len(analyses) == 30

    def test_negation_probability(self):
        spec = WorkloadSpec(
            rules=30, min_conditions=2, max_conditions=3,
            negation_probability=0.8, seed=2,
        )
        workload = generate_program(spec)
        negated = sum(
            1
            for rule in workload.program.rules
            for ce in rule.condition_elements
            if ce.negated
        )
        assert negated > 0

    def test_generated_rules_run_under_every_strategy(self):
        spec = WorkloadSpec(rules=8, classes=3, seed=6)
        workload = generate_workload(spec, stream_length=60)
        reference = None
        for name in sorted(STRATEGIES):
            wm = WorkingMemory(workload.program.schemas)
            strategy = STRATEGIES[name](
                wm,
                analyze_program(
                    workload.program.rules, workload.program.schemas
                ),
            )
            for class_name, values in workload.insert_stream:
                wm.insert(class_name, values)
            keys = strategy.conflict_set_keys()
            if reference is None:
                reference = keys
            else:
                assert keys == reference, name

    def test_shared_pool_creates_overlap(self):
        spec = WorkloadSpec(rules=20, shared_condition_pool=3, seed=1)
        workload = generate_program(spec)
        signatures = [
            ce.class_name + str(sorted(str(t) for t in ce.tests))
            for rule in workload.program.rules
            for ce in rule.condition_elements
        ]
        assert len(set(signatures)) < len(signatures)


def _class_skeleton(program):
    """Per rule: the (class name, comparison-test) shape of each condition."""
    return [
        [
            (
                ce.class_name,
                sorted(
                    str(t)
                    for t in ce.tests
                    if getattr(t, "op", "=") not in ("=",)
                ),
            )
            for ce in rule.condition_elements
        ]
        for rule in program.rules
    ]


class TestRngStreamInvariant:
    """The module-docstring invariant: knobs never shift unrelated streams."""

    def test_negation_toggle_preserves_class_skeleton(self):
        base = WorkloadSpec(rules=25, min_conditions=2, max_conditions=4, seed=7)
        heavy = WorkloadSpec(
            rules=25, min_conditions=2, max_conditions=4, seed=7,
            negation_probability=0.9,
        )
        a = generate_program(base).program
        b = generate_program(heavy).program
        assert _class_skeleton(a) == _class_skeleton(b)
        assert any(
            ce.negated for r in b.rules for ce in r.condition_elements
        )

    def test_negation_composes_with_shared_pool(self):
        """Satellite regression: pool draws must not consume RNG state
        differently once negation is enabled — the same pooled conditions
        appear in the same rule slots with and without negation."""
        base = WorkloadSpec(
            rules=25, min_conditions=2, max_conditions=4,
            shared_condition_pool=4, seed=11,
        )
        negated = WorkloadSpec(
            rules=25, min_conditions=2, max_conditions=4,
            shared_condition_pool=4, seed=11, negation_probability=0.6,
        )
        a = generate_program(base).program
        b = generate_program(negated).program
        # Same pooled condition (class AND tests) in every slot; only the
        # negation flag may differ.
        for rule_a, rule_b in zip(a.rules, b.rules):
            assert len(rule_a.condition_elements) == len(
                rule_b.condition_elements
            )
            for ce_a, ce_b in zip(
                rule_a.condition_elements, rule_b.condition_elements
            ):
                assert ce_a.class_name == ce_b.class_name
                assert ce_a.tests == ce_b.tests
        assert any(
            ce.negated for r in b.rules for ce in r.condition_elements
        )

    def test_disjunction_toggle_preserves_skeleton_and_negation(self):
        base = WorkloadSpec(
            rules=25, min_conditions=2, max_conditions=3, seed=13,
            negation_probability=0.4,
        )
        disjunctive = WorkloadSpec(
            rules=25, min_conditions=2, max_conditions=3, seed=13,
            negation_probability=0.4, disjunction_probability=0.8,
        )
        a = generate_program(base).program
        b = generate_program(disjunctive).program
        assert _class_skeleton(a) == _class_skeleton(b)
        assert [
            [ce.negated for ce in r.condition_elements] for r in a.rules
        ] == [[ce.negated for ce in r.condition_elements] for r in b.rules]

    def test_modify_toggle_preserves_entire_lhs(self):
        base = WorkloadSpec(rules=20, seed=17)
        heavy = WorkloadSpec(rules=20, seed=17, modify_action_probability=1.0)
        a = generate_program(base).program
        b = generate_program(heavy).program
        assert [r.condition_elements for r in a.rules] == [
            r.condition_elements for r in b.rules
        ]

    def test_pool_size_does_not_shift_rule_sizes(self):
        """With any active pool, each condition costs exactly one rule-stream
        draw, so pool size never changes the LHS size sequence."""
        small = generate_program(
            WorkloadSpec(rules=30, shared_condition_pool=3, seed=19)
        ).program
        large = generate_program(
            WorkloadSpec(rules=30, shared_condition_pool=9, seed=19)
        ).program
        assert [len(r.condition_elements) for r in small.rules] == [
            len(r.condition_elements) for r in large.rules
        ]

    def test_all_knobs_deterministic(self):
        spec = WorkloadSpec(
            rules=20, min_conditions=1, max_conditions=4,
            negation_probability=0.3, disjunction_probability=0.3,
            modify_action_probability=0.5, shared_condition_pool=5, seed=23,
        )
        assert (
            generate_program(spec).program
            == generate_program(spec).program
        )


class TestNewKnobs:
    def test_disjunction_probability_generates_member_tests(self):
        from repro.lang import DisjunctionTest

        spec = WorkloadSpec(
            rules=20, seed=3, constant_probability=1.0,
            disjunction_probability=1.0,
        )
        program = generate_program(spec).program
        disjunctions = [
            t
            for r in program.rules
            for ce in r.condition_elements
            for t in ce.tests
            if isinstance(t, DisjunctionTest)
        ]
        assert disjunctions
        for d in disjunctions:
            assert 2 <= len(d.values) <= 3 or len(d.values) == 1
            assert all(0 <= v < spec.domain for v in d.values)

    def test_modify_probability_one_yields_modify_actions(self):
        from repro.lang import ModifyAction

        spec = WorkloadSpec(rules=15, seed=5, modify_action_probability=1.0)
        program = generate_program(spec).program
        for rule in program.rules:
            assert len(rule.actions) == 1
            assert isinstance(rule.actions[0], ModifyAction)

    def test_knobbed_programs_round_trip_through_text(self):
        from repro.lang import format_program, parse_program

        spec = WorkloadSpec(
            rules=15, seed=29, negation_probability=0.3,
            disjunction_probability=0.5, modify_action_probability=0.5,
        )
        program = generate_program(spec).program
        text = format_program(program)
        assert parse_program(text) == program

    def test_knobbed_programs_run_under_every_strategy(self):
        spec = WorkloadSpec(
            rules=10, classes=3, seed=37, negation_probability=0.25,
            disjunction_probability=0.4,
        )
        workload = generate_workload(spec, stream_length=80)
        analyses = analyze_program(
            workload.program.rules, workload.program.schemas
        )
        reference = None
        for name in sorted(STRATEGIES):
            wm = WorkingMemory(workload.program.schemas)
            strategy = STRATEGIES[name](wm, analyses)
            for class_name, values in workload.insert_stream:
                wm.insert(class_name, values)
            keys = strategy.conflict_set_keys()
            if reference is None:
                reference = keys
            else:
                assert keys == reference, name


class TestStreams:
    def test_insert_stream_respects_domain(self):
        spec = WorkloadSpec(domain=3, classes=2, attributes=2, seed=5)
        for class_name, values in generate_insert_stream(spec, 100):
            assert class_name in ("K0", "K1")
            assert all(0 <= v < 3 for v in values)

    def test_insert_stream_deterministic(self):
        spec = WorkloadSpec(seed=8)
        assert generate_insert_stream(spec, 50) == generate_insert_stream(
            spec, 50
        )

    def test_mixed_stream_delete_indices_valid(self):
        spec = WorkloadSpec(seed=3)
        live = 0
        for kind, payload in mixed_stream(spec, 200, delete_fraction=0.4):
            if kind == "insert":
                live += 1
            else:
                assert 0 <= payload < live
                live -= 1


class TestCannedPrograms:
    def test_chain_program_depths(self):
        ps = ProductionSystem(chain_program(3))
        for i in range(3):
            ps.insert(f"C{i}", (0, "live"))
        assert len(ps.conflict_set) == 1

    def test_chain_program_rejects_zero(self):
        with pytest.raises(ValueError):
            chain_program(0)

    def test_counter_program_halts_at_limit(self):
        ps = ProductionSystem(counter_program(4))
        ps.insert("Counter", {"value": 0, "limit": 4})
        result = ps.run()
        assert result.halted

    def test_independent_rules_all_fire(self):
        ps = ProductionSystem(independent_rules_program(3))
        for i in range(3):
            ps.insert(f"T{i}", {"x": i})
        result = ps.run()
        assert sorted(result.fired_rule_names) == ["r0", "r1", "r2"]

    def test_contended_rules_all_fire(self):
        ps = ProductionSystem(contended_rules_program(3))
        ps.insert("Shared", {"x": 0})
        for i in range(3):
            ps.insert(f"T{i}", {"x": i})
        result = ps.run()
        assert len(result.fired) == 3
        (shared,) = ps.wm.tuples("Shared")
        assert shared.values == (3,)

    def test_monkey_bananas_plan(self):
        ps = ProductionSystem(monkey_bananas_program(), resolution="mea")
        ps.insert("Goal", {"status": "active"})
        ps.insert("Monkey", {"at": "door", "on": "floor", "holding": None})
        ps.insert("Object", {"name": "chair", "at": "corner"})
        ps.insert("Object", {"name": "bananas", "at": "ceiling"})
        result = ps.run(max_cycles=20)
        assert result.halted
        monkey = next(iter(ps.wm.tuples("Monkey")))
        assert monkey.values[2] == "bananas"  # holding
        goal = next(iter(ps.wm.tuples("Goal")))
        assert goal.values[0] == "satisfied"

    def test_example5_inserts_shape(self):
        assert [cls for cls, _ in EXAMPLE5_INSERTS] == ["B", "C", "A", "B"]
