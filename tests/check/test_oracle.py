"""The differential oracle: clean parity, injected faults, error capture."""

import pytest

from repro.check import (
    CheckConfig,
    PROFILES,
    default_matrix,
    generate_trace,
    replay_config,
    run_trace,
)
from repro.check.oracle import COMPILED_FAMILY, RETE_FAMILY
from repro.check.trace import Trace, TraceOp
from repro.match import STRATEGIES, SimplifiedStrategy

#: A cheap sub-matrix for tests that exercise the machinery rather than
#: the full strategy space (the full matrix runs in test_full_matrix and
#: the corpus replay).
FAST = [
    CheckConfig("rete", "memory", 1),
    CheckConfig("patterns", "memory", 8),
    CheckConfig("simplified-indexed", "memory", "auto"),
]


class BrokenStrategy(SimplifiedStrategy):
    """Intentionally faulty shim: silently drops every third insert."""

    strategy_name = "broken"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._seen = 0

    def on_insert(self, wme):
        self._seen += 1
        if self._seen % 3 == 0:
            return
        super().on_insert(wme)


class ExplodingStrategy(SimplifiedStrategy):
    """Raises on the fifth insert — exercises the error-capture path."""

    strategy_name = "exploding"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._seen = 0

    def on_insert(self, wme):
        self._seen += 1
        if self._seen == 5:
            raise RuntimeError("boom")
        super().on_insert(wme)


class TestMatrix:
    def test_default_matrix_covers_all_axes(self):
        configs = default_matrix()
        # Every strategy gets an interpreted cell per backend × batch size;
        # the compiled family doubles up with a compile="on" twin.
        expected = (len(STRATEGIES) + len(COMPILED_FAMILY)) * 2 * 3
        assert len(configs) == expected
        assert {c.strategy for c in configs} == set(STRATEGIES)
        assert {c.backend for c in configs} == {"memory", "sqlite"}
        assert {c.batch_size for c in configs} == {1, 8, "auto"}
        compiled = {c.strategy for c in configs if c.compile == "on"}
        assert compiled == set(COMPILED_FAMILY)

    def test_interpreted_cell_precedes_its_compiled_twin(self):
        configs = default_matrix()
        for index, config in enumerate(configs):
            if config.compile == "on":
                reference = CheckConfig(
                    strategy=config.strategy,
                    backend=config.backend,
                    batch_size=config.batch_size,
                )
                assert configs.index(reference) < index

    def test_strategy_names_subset(self):
        configs = default_matrix(["rete", "patterns"], backends=("memory",))
        assert {c.strategy for c in configs} == {"rete", "patterns"}

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            run_trace(generate_trace(0, 0), configs=[])


class TestParallelAndExecAxes:
    def test_labels_encode_workers_and_exec(self):
        assert CheckConfig("rete").label == "rete/memory/batch=1"
        assert CheckConfig("rete", workers=4).label.endswith("/w4")
        assert CheckConfig("rete", exec="txn").label.endswith("/txn")
        assert CheckConfig("rete", workers=2, exec="set").label.endswith(
            "/w2/set"
        )

    def test_worker_cells_only_for_rete_family(self):
        configs = default_matrix(
            worker_counts=(1, 2), backends=("memory",),
            batch_sizes=(1,), compile_modes=("off",),
        )
        parallel = {c.strategy for c in configs if c.workers > 1}
        assert parallel == set(RETE_FAMILY)
        # The serial cell precedes its parallel twin so it anchors as
        # the reference.
        for index, config in enumerate(configs):
            if config.workers > 1:
                serial = CheckConfig(
                    strategy=config.strategy,
                    backend=config.backend,
                    batch_size=config.batch_size,
                    compile=config.compile,
                    exec=config.exec,
                )
                assert configs.index(serial) < index

    def test_exec_and_worker_cells_agree(self):
        """The headline determinism claim, end to end: every exec mode's
        parallel cells replay bit-identically to that mode's serial
        reference (different modes are compared only within their own
        group)."""
        trace = generate_trace(3, 1)
        configs = default_matrix(
            ["rete", "rete-shared"], backends=("memory",),
            batch_sizes=(8,), compile_modes=("off", "on"),
            worker_counts=(1, 2), exec_modes=("cycle", "set", "txn"),
        )
        assert run_trace(trace, configs=configs) is None

    def test_txn_replay_records_round_firings(self):
        trace = generate_trace(0, 0)
        result = replay_config(trace, CheckConfig("rete", exec="txn"))
        assert not any(tag[0] == "cycle" for tag in result.checkpoints)
        for _round_no, rule, key in result.fired:
            assert key[0] == rule
        if result.fired:
            assert any(tag[0] == "round" for tag in result.checkpoints)


class TestCleanParity:
    @pytest.mark.parametrize("index", range(len(PROFILES)))
    def test_profiles_agree_on_fast_matrix(self, index):
        trace = generate_trace(11, index)
        assert run_trace(trace, configs=FAST) is None

    def test_full_matrix_agrees(self):
        """One trace through all strategies × backends × batch sizes."""
        trace = generate_trace(5, 1)  # negation profile
        assert run_trace(trace) is None


class TestReplay:
    def test_checkpoints_and_final_wm_recorded(self):
        trace = generate_trace(2, 0)
        result = replay_config(trace, CheckConfig("rete", "memory", 1))
        assert ("end_ops",) in result.checkpoints
        # batch=1 checkpoints after every data op
        data_ops = [
            i for i, op in enumerate(trace.ops)
            if op.kind in ("insert", "delete", "modify")
        ]
        for position in data_ops:
            assert ("op", position) in result.checkpoints
        assert result.final_wm is not None
        assert result.rete_memories  # rete-family records snapshots

    def test_batched_replay_skips_per_op_checkpoints(self):
        trace = generate_trace(2, 0)
        result = replay_config(trace, CheckConfig("patterns", "memory", 8))
        assert ("end_ops",) in result.checkpoints
        assert not any(tag[0] == "op" for tag in result.checkpoints)
        assert not result.rete_memories  # non-rete takes no snapshots

    def test_detach_attach_trace_replays(self):
        program = "(literalize item kind)\n"
        trace = Trace(
            name="ctl", seed=0, program=program,
            ops=(
                TraceOp.insert("item", (1,)),
                TraceOp.detach(),
                TraceOp.insert("item", (2,)),
                TraceOp.attach(),
                TraceOp.insert("item", (3,)),
            ),
        )
        result = replay_config(trace, CheckConfig("rete", "memory", 1))
        assert ("ctl", 1) in result.checkpoints
        assert ("ctl", 3) in result.checkpoints
        assert result.final_wm["item"][0][2] == (1,)
        assert len(result.final_wm["item"]) == 3

    def test_delete_and_modify_on_empty_wm_are_noops(self):
        trace = Trace(
            name="empty", seed=0, program="(literalize item kind)\n",
            ops=(TraceOp.delete(7), TraceOp.modify(3, {"kind": 1})),
        )
        assert run_trace(trace, configs=FAST) is None


class TestFaultDetection:
    def test_broken_strategy_diverges(self):
        strategies = {"rete": STRATEGIES["rete"], "broken": BrokenStrategy}
        trace = generate_trace(0, 0)
        divergence = run_trace(
            trace,
            configs=default_matrix(
                strategies, backends=("memory",), batch_sizes=(1,)
            ),
            strategies=strategies,
        )
        assert divergence is not None
        assert divergence.kind == "conflict"
        # "broken" sorts first, so it becomes the matrix reference; the
        # divergence must name it on one side either way.
        assert "broken" in divergence.config + divergence.reference
        assert divergence.sync_point is not None

    def test_exception_becomes_error_divergence(self):
        strategies = {
            "rete": STRATEGIES["rete"], "exploding": ExplodingStrategy,
        }
        trace = generate_trace(0, 0)
        divergence = run_trace(
            trace,
            configs=default_matrix(
                strategies, backends=("memory",), batch_sizes=(1,)
            ),
            strategies=strategies,
        )
        assert divergence is not None
        assert divergence.kind == "error"
        assert "boom" in divergence.detail

    def test_describe_mentions_both_configs(self):
        strategies = {"rete": STRATEGIES["rete"], "broken": BrokenStrategy}
        divergence = run_trace(
            generate_trace(0, 0),
            configs=default_matrix(
                strategies, backends=("memory",), batch_sizes=(1,)
            ),
            strategies=strategies,
        )
        text = divergence.describe()
        assert "broken/memory/batch=1" in text
        assert "rete/memory/batch=1" in text
