"""The checked-in regression corpus, replayed as part of tier 1.

Every file under ``tests/corpus/`` is a :class:`repro.check.Trace` —
either a seed entry pinning cross-strategy parity for one trace profile,
or a shrunk repro promoted by ``repro check --save-repro`` after a real
divergence.  Each is replayed here across the **full**
strategy × backend × batch-size matrix; a failure means a previously
fixed bug is back (the file's ``reason`` field says what it guarded).
"""

import os

import pytest

from repro.check import load_corpus, load_trace, replay, save_repro
from repro.check.trace import Trace, TraceOp

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def entry_id(entry):
    return os.path.basename(entry[0])


@pytest.mark.parametrize("entry", ENTRIES, ids=entry_id)
def test_corpus_trace_replays_clean(entry):
    path, trace = entry
    divergence = replay(trace)
    assert divergence is None, (
        f"{os.path.basename(path)} regressed "
        f"(guards: {trace.reason or 'unknown'}):\n{divergence.describe()}"
    )


def test_corpus_is_not_empty():
    """The seed entries must survive refactors of the corpus loader."""
    assert len(ENTRIES) >= 5


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        trace = Trace(
            name="rt", seed=9, program="(literalize item kind)\n",
            ops=(TraceOp.insert("item", (1,)),), reason="test",
        )
        path = save_repro(trace, str(tmp_path))
        assert load_trace(path) == trace

    def test_name_collision_gets_suffix(self, tmp_path):
        trace = Trace(name="dup", seed=0, program="(literalize x a)\n")
        first = save_repro(trace, str(tmp_path))
        second = save_repro(trace, str(tmp_path))
        assert first != second
        assert os.path.exists(first) and os.path.exists(second)

    def test_load_corpus_of_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []
