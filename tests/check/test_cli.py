"""The ``repro check`` verb: legacy validation and fuzz mode."""

import json

import pytest

from repro.cli import main

PROGRAM = """
(literalize Counter value limit)
(p count-up
    (Counter ^value <V> ^limit {<L> > <V>})
    -->
    (modify 1 ^value (compute <V> + 1)))
(make Counter ^value 0 ^limit 3)
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "counter.ops"
    path.write_text(PROGRAM)
    return str(path)


class TestLegacyCheck:
    def test_validates_and_summarizes(self, program_file, capsys):
        assert main(["check", program_file]) == 0
        out = capsys.readouterr().out
        assert "1 classes, 1 rules" in out
        assert "count-up" in out


class TestFuzzCheck:
    FAST = [
        "--strategies", "rete,patterns",
        "--backends", "memory",
        "--batch-sizes", "1",
    ]

    def test_budget_runs_campaign(self, capsys):
        assert main(["check", "--budget", "2", "--seed", "0", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "2/2 traces" in out
        assert "OK" in out

    def test_no_file_defaults_to_fuzz_mode(self, capsys):
        # No FILE and no --budget: fuzz mode with the default budget;
        # keep the matrix tiny so the default 50 traces stay fast.
        assert main(
            ["check", "--budget", "1", "--strategies", "rete",
             "--backends", "memory", "--batch-sizes", "1"]
        ) == 0
        assert "1/1 traces" in capsys.readouterr().out

    def test_pinned_program_fuzz(self, program_file, capsys):
        assert main(
            ["check", program_file, "--budget", "2", *self.FAST]
        ) == 0
        assert "2/2 traces" in capsys.readouterr().out

    def test_unknown_strategy_rejected(self, capsys):
        assert main(
            ["check", "--budget", "1", "--strategies", "nonesuch"]
        ) == 2
        assert "nonesuch" in capsys.readouterr().err

    def test_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert main(
            ["check", "--budget", "1", "--metrics-out", str(metrics),
             *self.FAST]
        ) == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["check.traces"] == 1

    def test_trace_out(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        assert main(
            ["check", "--budget", "1", "--trace-out", str(trace_file),
             *self.FAST]
        ) == 0
        lines = [
            json.loads(line)
            for line in trace_file.read_text().splitlines() if line
        ]
        assert any(
            record.get("name") == "check.trace" for record in lines
        )
