"""Lineage-on cells of the fuzz matrix are bit-identical to their twins.

The engine-level claim behind ``lineage=True`` being safe to flip on in
production: the :class:`repro.obs.xray.LineageRecorder` is a pure
conflict-set listener, so every checkpointed observable — conflict-set
keys, firing sequence, final WM — matches the lineage-off twin cell.
"""

import pytest

from repro.check import CheckConfig, generate_trace, run_trace


def test_label_carries_the_lineage_suffix():
    assert CheckConfig("rete", "memory", 1, lineage=True).label == (
        "rete/memory/batch=1/lineage"
    )
    assert "/lineage" not in CheckConfig("rete", "memory", 1).label


@pytest.mark.parametrize("profile", [0, 3, 5])
def test_lineage_cells_agree_with_their_twins(profile):
    trace = generate_trace(11, profile)
    configs = [
        CheckConfig("rete", "memory", 1),
        CheckConfig("rete", "memory", 1, lineage=True),
        CheckConfig("rete-shared", "memory", 8, lineage=True),
        CheckConfig("patterns", "memory", "auto", lineage=True),
    ]
    assert run_trace(trace, configs=configs) is None
