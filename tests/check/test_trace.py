"""Trace and TraceOp: construction, JSON wire format, derivation."""

import json

import pytest

from repro.check import Trace, TraceOp

PROGRAM = "(literalize item kind size)\n"


def sample_ops():
    return (
        TraceOp.insert("item", (1, 2)),
        TraceOp.delete(5),
        TraceOp.modify(3, {"size": 9}),
        TraceOp.detach(),
        TraceOp.attach(),
    )


class TestTraceOp:
    def test_constructors_set_kind(self):
        kinds = [op.kind for op in sample_ops()]
        assert kinds == ["insert", "delete", "modify", "detach", "attach"]

    def test_modify_changes_are_sorted_tuples(self):
        op = TraceOp.modify(0, {"b": 1, "a": 2})
        assert op.changes == (("a", 2), ("b", 1))

    def test_ops_are_hashable_and_frozen(self):
        op = TraceOp.insert("item", (1, 2))
        assert op in {op}
        with pytest.raises(AttributeError):
            op.kind = "delete"


class TestTraceJson:
    def test_round_trip(self):
        trace = Trace(
            name="t", seed=7, program=PROGRAM, ops=sample_ops(),
            max_cycles=12, reason="because",
        )
        again = Trace.loads(trace.dumps())
        assert again == trace

    def test_wire_format_is_compact_lists(self):
        trace = Trace(name="t", seed=0, program=PROGRAM, ops=sample_ops())
        data = json.loads(trace.dumps())
        assert data["ops"][0] == ["insert", "item", [1, 2]]
        assert data["ops"][1] == ["delete", 5]
        assert data["ops"][2] == ["modify", 3, {"size": 9}]
        assert data["ops"][3] == ["detach"]
        assert data["ops"][4] == ["attach"]

    def test_unknown_op_kind_rejected(self):
        data = {
            "name": "t", "seed": 0, "program": PROGRAM,
            "ops": [["explode"]],
        }
        with pytest.raises(ValueError):
            Trace.from_json(data)


class TestDerivation:
    def test_with_ops_replaces_only_ops(self):
        trace = Trace(name="t", seed=3, program=PROGRAM, ops=sample_ops())
        fewer = trace.with_ops(trace.ops[:2])
        assert fewer.ops == trace.ops[:2]
        assert (fewer.name, fewer.seed, fewer.program) == (
            trace.name, trace.seed, trace.program,
        )

    def test_with_program_and_reason(self):
        trace = Trace(name="t", seed=3, program=PROGRAM, ops=())
        derived = trace.with_program("(literalize x a)\n").with_reason("why")
        assert derived.program == "(literalize x a)\n"
        assert derived.reason == "why"
