"""Shrinker: ddmin + rule pruning, and the harness self-test.

The self-test is the acceptance gate for the whole subsystem: inject an
intentionally broken strategy shim, let the fuzzer catch it, and demand
the shrinker reduce the finding to a handful of ops and a single rule.
"""

import pytest

from repro.check import default_matrix, generate_trace, run_trace, shrink
from repro.match import STRATEGIES

from tests.check.test_oracle import BrokenStrategy


def broken_setup():
    strategies = {"rete": STRATEGIES["rete"], "broken": BrokenStrategy}
    configs = default_matrix(
        strategies, backends=("memory",), batch_sizes=(1,)
    )

    def failing(trace):
        return run_trace(trace, configs=configs, strategies=strategies) \
            is not None

    return failing


class TestShrink:
    def test_passing_trace_rejected(self):
        with pytest.raises(ValueError):
            shrink(generate_trace(0, 0), lambda trace: False)

    def test_self_test_minimizes_to_tiny_repro(self):
        """Acceptance: a dropped-insert bug shrinks to <= 6 WM ops."""
        failing = broken_setup()
        trace = generate_trace(0, 0)
        assert failing(trace)
        shrunk = shrink(trace, failing)
        assert failing(shrunk)
        assert len(shrunk.ops) <= 6
        assert shrunk.program.count("(p ") == 1

    def test_shrunk_trace_keeps_identity_fields(self):
        failing = broken_setup()
        trace = generate_trace(0, 1)
        assert failing(trace)
        shrunk = shrink(trace, failing)
        assert (shrunk.name, shrunk.seed) == (trace.name, trace.seed)
        assert len(shrunk.ops) <= len(trace.ops)

    def test_shrink_is_deterministic(self):
        failing = broken_setup()
        trace = generate_trace(0, 0)
        assert shrink(trace, failing) == shrink(trace, failing)
