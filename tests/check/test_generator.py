"""Trace generation: determinism, profile rotation, pinned programs."""

import pytest

from repro.check import PROFILES, Trace, generate_trace
from repro.lang import parse_program


class TestDeterminism:
    def test_same_seed_and_index_reproduce_the_trace(self):
        assert generate_trace(3, 5) == generate_trace(3, 5)

    def test_different_indices_differ(self):
        assert generate_trace(0, 0) != generate_trace(0, 1)

    def test_different_seeds_differ(self):
        assert generate_trace(0, 0) != generate_trace(1, 0)


class TestProfiles:
    def test_rotation_covers_every_profile(self):
        names = {
            generate_trace(0, i).name.split("-", 2)[2]
            for i in range(len(PROFILES))
        }
        assert names == {p.name for p in PROFILES}

    def test_profile_names_are_unique(self):
        names = [p.name for p in PROFILES]
        assert len(names) == len(set(names))

    def test_negation_profile_generates_negated_conditions(self):
        index = next(
            i for i, p in enumerate(PROFILES) if p.name == "negation"
        )
        # Negation probability 0.45 over 7 rules: some seed in a small
        # window must produce at least one negated condition.
        for seed in range(5):
            program = parse_program(generate_trace(seed, index).program)
            if any(
                condition.negated
                for rule in program.rules
                for condition in rule.condition_elements
            ):
                return
        pytest.fail("negation profile never produced a negated condition")

    def test_reattach_profile_emits_control_ops(self):
        index = next(
            i for i, p in enumerate(PROFILES) if p.name == "reattach"
        )
        for seed in range(5):
            kinds = {op.kind for op in generate_trace(seed, index).ops}
            if "detach" in kinds and "attach" in kinds:
                return
        pytest.fail("reattach profile never emitted detach/attach")


class TestPinnedProgram:
    PROGRAM = (
        "(literalize order item qty)\n"
        "(literalize stock item qty)\n"
        "(p ship (order ^item <i>) (stock ^item <i>) --> (remove 1))\n"
    )

    def test_targets_come_from_program_schemas(self):
        trace = generate_trace(0, 0, program=self.PROGRAM)
        assert trace.program == self.PROGRAM
        classes = {
            op.class_name for op in trace.ops if op.kind == "insert"
        }
        assert classes <= {"order", "stock"}
        assert classes  # the script actually inserts something

    def test_inserts_match_schema_arity(self):
        trace = generate_trace(0, 0, program=self.PROGRAM)
        for op in trace.ops:
            if op.kind == "insert":
                assert len(op.values) == 2

    def test_classless_program_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(0, 0, program="; just a comment\n")


class TestTraceShape:
    def test_every_trace_is_json_round_trippable(self):
        for index in range(len(PROFILES)):
            trace = generate_trace(1, index)
            assert Trace.loads(trace.dumps()) == trace

    def test_ops_count_follows_profile(self):
        for index, profile in enumerate(PROFILES):
            trace = generate_trace(0, index)
            # Reattach rolls add one extra op per detach/attach pair.
            reattaches = sum(
                1 for op in trace.ops if op.kind == "detach"
            )
            assert len(trace.ops) == profile.ops + reattaches
