"""Stateful property test: random op scripts never break strategy parity.

A :class:`hypothesis.stateful.RuleBasedStateMachine` grows an op script
one operation at a time; after every step the accumulated trace is
replayed through a representative strategy pair and the differential
oracle must find no divergence.  This complements the seeded fuzzer in
:mod:`repro.check.runner`: hypothesis owns the op-mix distribution and
shrinks its own counterexamples.

Reproducing a failure: hypothesis prints the falsifying example and a
``--hypothesis-seed=N`` hint on stderr — re-run with that flag (e.g.
``pytest tests/check/test_oracle_properties.py --hypothesis-seed=12345``)
to replay the exact machine run deterministically.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.check import CheckConfig, run_trace
from repro.check.trace import Trace, TraceOp

#: Fixed rule base: a two-way join, a correlated negation and a
#: disjunctive membership test — the constructs whose maintenance paths
#: differ most across strategies.  The single ``remove`` keeps cycles
#: finite regardless of the ops hypothesis chooses.
PROGRAM = """
(literalize order item qty)
(literalize stock item qty)
(literalize alert item)
(p ship
    (order ^item <i> ^qty <q>)
    (stock ^item <i>)
    -->
    (remove 1))
(p shortage
    (order ^item <i>)
    - (stock ^item <i>)
    -->
    (make alert ^item <i>))
(p audit
    (alert ^item << 0 1 2 >>)
    -->
    (remove 1))
"""

#: One tuple-at-a-time config and one batched config: the pair most
#: likely to disagree when delta grouping is wrong.
CONFIGS = [
    CheckConfig("rete", "memory", 1),
    CheckConfig("patterns", "memory", 8),
]

ITEMS = st.integers(0, 3)
QTYS = st.integers(0, 5)


class OracleMachine(RuleBasedStateMachine):
    """Accumulates ops; parity across CONFIGS is the invariant."""

    @initialize()
    def start(self):
        self.ops = []

    @rule(item=ITEMS, qty=QTYS)
    def insert_order(self, item, qty):
        self.ops.append(TraceOp.insert("order", (item, qty)))

    @rule(item=ITEMS, qty=QTYS)
    def insert_stock(self, item, qty):
        self.ops.append(TraceOp.insert("stock", (item, qty)))

    @rule(index=st.integers(0, 1 << 16))
    def delete_some(self, index):
        self.ops.append(TraceOp.delete(index))

    @rule(index=st.integers(0, 1 << 16), qty=QTYS)
    def modify_some(self, index, qty):
        self.ops.append(TraceOp.modify(index, {"qty": qty}))

    @rule()
    def reattach(self):
        self.ops.append(TraceOp.detach())
        self.ops.append(TraceOp.attach())

    @invariant()
    def strategies_agree(self):
        trace = Trace(
            name="stateful", seed=0, program=PROGRAM,
            ops=tuple(self.ops), max_cycles=20,
        )
        divergence = run_trace(trace, configs=CONFIGS)
        assert divergence is None, divergence.describe()


TestOracleProperties = OracleMachine.TestCase
TestOracleProperties.settings = settings(
    max_examples=50, stateful_step_count=12, deadline=None
)
