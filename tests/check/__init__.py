"""Tests for repro.check — the differential fuzz harness."""
