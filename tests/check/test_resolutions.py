"""The conflict-resolution fuzz axis: traces pin their resolver and the
generator rotates it orthogonally to the program profile."""

import json

from repro.check import Trace, run_check
from repro.check.generator import PROFILES, generate_trace

PROGRAM = "(literalize item kind size)\n"


class TestTraceField:
    def test_default_resolution_is_lex(self):
        trace = Trace(name="t", seed=0, program=PROGRAM, ops=())
        assert trace.resolution == "lex"

    def test_resolution_round_trips_through_json(self):
        trace = Trace(
            name="t", seed=0, program=PROGRAM, ops=(), resolution="mea"
        )
        assert Trace.loads(trace.dumps()).resolution == "mea"

    def test_legacy_wire_format_defaults_to_lex(self):
        data = json.loads(
            Trace(name="t", seed=0, program=PROGRAM, ops=()).dumps()
        )
        del data["resolution"]
        assert Trace.loads(json.dumps(data)).resolution == "lex"


class TestGeneratorRotation:
    def test_rotation_covers_every_requested_resolver(self):
        resolutions = ("mea", "priority", "fifo")
        seen = {
            generate_trace(5, index, resolutions=resolutions).resolution
            for index in range(len(PROFILES) * len(resolutions))
        }
        assert seen == set(resolutions)

    def test_rotation_is_orthogonal_to_the_profile_rotation(self):
        """With two resolvers and an odd profile count, every profile is
        eventually paired with every resolver."""
        resolutions = ("lex", "mea")
        pairs = {
            (trace.name.split("-")[2], trace.resolution)
            for trace in (
                generate_trace(5, i, resolutions=resolutions)
                for i in range(len(PROFILES) * len(resolutions))
            )
        }
        profiles = {name for name, _ in pairs}
        assert len(pairs) == len(profiles) * len(resolutions)

    def test_default_rotation_stays_deterministic(self):
        assert (
            generate_trace(9, 4).dumps() == generate_trace(9, 4).dumps()
        )


class TestCampaign:
    def test_run_check_threads_resolutions_through(self):
        report = run_check(
            budget=2,
            seed=3,
            strategies=("rete",),
            backends=("memory",),
            batch_sizes=(1,),
            resolutions=("mea", "fifo"),
        )
        assert report.ok
        assert report.traces_run == 2
