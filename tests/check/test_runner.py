"""The campaign driver: reports, metrics, repro promotion."""

import json

from repro.check import run_check
from repro.check.corpus import load_corpus
from repro.match import STRATEGIES
from repro.obs import Observability, RingBufferSink

from tests.check.test_oracle import BrokenStrategy

FAST = dict(backends=("memory",), batch_sizes=(1,), compile_modes=("off",))


class TestCleanRun:
    def test_report_shape(self):
        report = run_check(budget=2, seed=0, strategies=["rete", "patterns"],
                           **FAST)
        assert report.ok
        assert report.traces_run == 2
        assert report.configs == 2
        assert report.failures == []
        assert "2/2 traces" in report.summary()
        assert "OK" in report.summary()

    def test_compiled_twins_join_by_default(self):
        report = run_check(budget=1, seed=0, strategies=["rete", "patterns"],
                           backends=("memory",), batch_sizes=(1,))
        assert report.ok
        assert report.configs == 4  # each strategy + its compiled twin

    def test_spans_and_metrics(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink], collect_metrics=True)
        report = run_check(budget=3, seed=0,
                           strategies=["rete", "patterns"], obs=obs, **FAST)
        assert report.ok
        assert len(sink.spans("check.trace")) == 3
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["check.traces"] == 3
        assert snapshot["counters"]["check.replays"] == 6
        assert "check.failures" not in snapshot["counters"]
        assert snapshot["histograms"]["check.trace_us"]["count"] == 3


class TestFailingRun:
    STRATEGIES = {"rete": STRATEGIES["rete"], "broken": BrokenStrategy}

    def test_failure_is_shrunk_and_saved(self, tmp_path):
        corpus = tmp_path / "corpus"
        report = run_check(
            budget=1, seed=0, strategies=self.STRATEGIES,
            save_repro_dir=str(corpus), **FAST,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.shrunk is not None
        assert len(failure.shrunk.ops) <= 6
        assert failure.repro_path is not None
        entries = load_corpus(str(corpus))
        assert len(entries) == 1
        _, saved = entries[0]
        assert saved.ops == failure.shrunk.ops
        assert saved.reason  # divergence description recorded

    def test_failure_metrics_and_event(self):
        sink = RingBufferSink()
        obs = Observability(sinks=[sink], collect_metrics=True)
        report = run_check(budget=1, seed=0, strategies=self.STRATEGIES,
                           obs=obs, **FAST)
        assert len(report.failures) == 1
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["check.failures"] == 1
        events = sink.events("check.divergence")
        assert len(events) == 1
        assert "conflict" in events[0]["detail"]

    def test_shrinking_can_be_disabled(self):
        report = run_check(budget=1, seed=0, strategies=self.STRATEGIES,
                           shrink_failures=False, **FAST)
        assert not report.ok
        assert report.failures[0].shrunk is None

    def test_saved_repro_round_trips_through_json(self, tmp_path):
        corpus = tmp_path / "corpus"
        run_check(budget=1, seed=0, strategies=self.STRATEGIES,
                  save_repro_dir=str(corpus), **FAST)
        (path, trace) = load_corpus(str(corpus))[0]
        data = json.loads(open(path).read())
        assert data["name"] == trace.name
        assert data["program"] == trace.program
