"""Unit tests for relation schemas."""

import pytest

from repro.errors import SchemaError
from repro.storage import RelationSchema, check_value


def make_schema():
    return RelationSchema("Emp", ("name", "age", "salary", "dno"))


class TestRelationSchema:
    def test_arity(self):
        assert make_schema().arity == 4

    def test_position(self):
        schema = make_schema()
        assert schema.position("name") == 0
        assert schema.position("dno") == 3

    def test_position_unknown_attribute(self):
        with pytest.raises(SchemaError, match="no attribute 'floor'"):
            make_schema().position("floor")

    def test_has_attribute(self):
        schema = make_schema()
        assert schema.has_attribute("salary")
        assert not schema.has_attribute("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("R", ("a", "a"))

    def test_validate_row_ok(self):
        row = ("Mike", 30, 1000.5, None)
        assert make_schema().validate_row(row) == row

    def test_validate_row_wrong_arity(self):
        with pytest.raises(SchemaError, match="expects 4 values"):
            make_schema().validate_row(("Mike", 30))

    def test_validate_row_bad_type(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row(("Mike", 30, [], None))

    def test_validate_row_rejects_bool(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row(("Mike", True, 1.0, None))

    def test_row_from_mapping_full(self):
        schema = make_schema()
        row = schema.row_from_mapping(
            {"name": "Sam", "age": 40, "salary": 900, "dno": 7}
        )
        assert row == ("Sam", 40, 900, 7)

    def test_row_from_mapping_defaults_to_none(self):
        schema = make_schema()
        assert schema.row_from_mapping({"name": "Sam"}) == ("Sam", None, None, None)

    def test_row_from_mapping_unknown_attribute(self):
        with pytest.raises(SchemaError, match="no attribute 'floor'"):
            make_schema().row_from_mapping({"floor": 1})

    def test_schemas_compare_by_value(self):
        assert make_schema() == make_schema()
        assert make_schema() != RelationSchema("Emp", ("name",))


class TestCheckValue:
    @pytest.mark.parametrize("value", [1, -2.5, "x", None])
    def test_accepts_scalars(self, value):
        assert check_value(value) == value

    @pytest.mark.parametrize("value", [True, [], {}, object(), (1,)])
    def test_rejects_non_scalars(self, value):
        with pytest.raises(SchemaError):
            check_value(value)
