"""Backend-parameterized tests for table operations.

Every test runs against both the in-memory backend and the SQLite backend,
asserting the Table contract the matchers depend on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import (
    Comparison,
    MemoryTable,
    RelationSchema,
    SqliteTable,
    TimetagClock,
)

SCHEMA = RelationSchema("Emp", ("name", "age", "dno"))


@pytest.fixture(params=["memory", "sqlite"])
def table(request):
    if request.param == "memory":
        yield MemoryTable(SCHEMA)
    else:
        t = SqliteTable(SCHEMA)
        yield t
        t.close()


class TestBasicOperations:
    def test_insert_assigns_increasing_tids_and_timetags(self, table):
        first = table.insert(("Mike", 30, 1))
        second = table.insert(("Sam", 40, 1))
        assert second.tid > first.tid
        assert second.timetag > first.timetag

    def test_get_returns_inserted_row(self, table):
        row = table.insert(("Mike", 30, 1))
        fetched = table.get(row.tid)
        assert fetched.values == ("Mike", 30, 1)
        assert fetched.relation == "Emp"

    def test_get_missing_raises(self, table):
        with pytest.raises(StorageError):
            table.get(999)

    def test_delete_removes_row(self, table):
        row = table.insert(("Mike", 30, 1))
        deleted = table.delete(row.tid)
        assert deleted.values == row.values
        assert len(table) == 0
        with pytest.raises(StorageError):
            table.get(row.tid)

    def test_delete_missing_raises(self, table):
        with pytest.raises(StorageError):
            table.delete(1)

    def test_tids_never_reused(self, table):
        first = table.insert(("Mike", 30, 1))
        table.delete(first.tid)
        second = table.insert(("Sam", 40, 1))
        assert second.tid != first.tid

    def test_scan_yields_all_rows(self, table):
        names = {"a", "b", "c"}
        for name in names:
            table.insert((name, 1, 1))
        assert {row.values[0] for row in table.scan()} == names

    def test_len(self, table):
        assert len(table) == 0
        table.insert(("Mike", 30, 1))
        assert len(table) == 1

    def test_none_values_roundtrip(self, table):
        row = table.insert((None, None, None))
        assert table.get(row.tid).values == (None, None, None)

    def test_insert_mapping(self, table):
        row = table.insert_mapping({"name": "Mike", "dno": 4})
        assert row.values == ("Mike", None, 4)

    def test_clear(self, table):
        for i in range(5):
            table.insert(("x", i, i))
        table.clear()
        assert len(table) == 0


class TestSelection:
    def test_select_by_predicate(self, table):
        table.insert(("Mike", 30, 1))
        table.insert(("Sam", 40, 1))
        old = list(table.select(Comparison("age", ">", 35)))
        assert [row.values[0] for row in old] == ["Sam"]

    def test_select_eq_without_index(self, table):
        table.insert(("Mike", 30, 1))
        table.insert(("Sam", 40, 2))
        rows = list(table.select_eq({"dno": 2}))
        assert [row.values[0] for row in rows] == ["Sam"]

    def test_select_eq_multiple_attributes(self, table):
        table.insert(("Mike", 30, 1))
        table.insert(("Mike", 40, 2))
        rows = list(table.select_eq({"name": "Mike", "dno": 2}))
        assert [row.values[1] for row in rows] == [40]

    def test_select_eq_empty_pairs_scans(self, table):
        table.insert(("Mike", 30, 1))
        assert len(list(table.select_eq({}))) == 1

    def test_lookup_with_index(self, table):
        table.create_index("dno")
        table.insert(("Mike", 30, 1))
        table.insert(("Sam", 40, 2))
        table.insert(("Ann", 25, 2))
        rows = list(table.lookup("dno", 2))
        assert {row.values[0] for row in rows} == {"Sam", "Ann"}
        assert "dno" in table.indexed_attributes()

    def test_index_created_after_inserts_sees_existing_rows(self, table):
        table.insert(("Mike", 30, 7))
        table.create_index("dno")
        assert [r.values[0] for r in table.lookup("dno", 7)] == ["Mike"]

    def test_index_tracks_deletes(self, table):
        table.create_index("dno")
        row = table.insert(("Mike", 30, 7))
        table.delete(row.tid)
        assert list(table.lookup("dno", 7)) == []

    def test_lookup_none_value(self, table):
        table.create_index("age")
        table.insert(("Mike", None, 1))
        table.insert(("Sam", 40, 1))
        assert [r.values[0] for r in table.lookup("age", None)] == ["Mike"]

    def test_lookup_without_index_falls_back_to_scan(self, table):
        table.insert(("Mike", 30, 1))
        assert [r.values[0] for r in table.lookup("name", "Mike")] == ["Mike"]


class TestMarkers:
    def test_markers_start_empty(self, table):
        row = table.insert(("Mike", 30, 1))
        assert table.markers(row.tid) == frozenset()

    def test_add_and_remove_marker(self, table):
        row = table.insert(("Mike", 30, 1))
        table.add_marker(row.tid, "R1.c1")
        table.add_marker(row.tid, "R2.c1")
        assert table.markers(row.tid) == {"R1.c1", "R2.c1"}
        table.remove_marker(row.tid, "R1.c1")
        assert table.markers(row.tid) == {"R2.c1"}

    def test_marker_add_is_idempotent(self, table):
        row = table.insert(("Mike", 30, 1))
        table.add_marker(row.tid, "R1.c1")
        table.add_marker(row.tid, "R1.c1")
        assert table.marker_count() == 1

    def test_marker_on_missing_tuple_raises(self, table):
        with pytest.raises(StorageError):
            table.add_marker(42, "R1.c1")

    def test_markers_dropped_on_delete(self, table):
        row = table.insert(("Mike", 30, 1))
        table.add_marker(row.tid, "R1.c1")
        table.delete(row.tid)
        assert table.marker_count() == 0


class TestSharedClock:
    def test_clock_shared_between_tables(self):
        clock = TimetagClock()
        emp = MemoryTable(SCHEMA, clock=clock)
        dept = MemoryTable(RelationSchema("Dept", ("dno",)), clock=clock)
        first = emp.insert(("Mike", 30, 1))
        second = dept.insert((1,))
        assert second.timetag == first.timetag + 1


values = st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b"]), st.none())
rows = st.tuples(values, values, values)


class TestTableProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(rows, max_size=25))
    def test_backends_agree_on_contents(self, data):
        memory = MemoryTable(SCHEMA)
        sqlite = SqliteTable(SCHEMA)
        try:
            for row in data:
                memory.insert(row)
                sqlite.insert(row)
            assert sorted(
                (r.tid, r.values) for r in memory.scan()
            ) == sorted((r.tid, r.values) for r in sqlite.scan())
        finally:
            sqlite.close()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(rows, min_size=1, max_size=25), st.data())
    def test_insert_delete_leaves_consistent_index(self, data, draw):
        table = MemoryTable(SCHEMA)
        table.create_index("age")
        inserted = [table.insert(row) for row in data]
        to_delete = draw.draw(
            st.lists(st.sampled_from(inserted), unique=True, max_size=len(inserted))
        )
        for row in to_delete:
            table.delete(row.tid)
        remaining = {r.tid for r in inserted} - {r.tid for r in to_delete}
        assert {r.tid for r in table.scan()} == remaining
        for row in inserted:
            hits = {r.tid for r in table.lookup("age", row.values[1])}
            assert hits == {
                r.tid
                for r in table.scan()
                if r.values[1] == row.values[1]
                or (r.values[1] is None and row.values[1] is None)
            }
