"""Tuple-id high-water marks: the identity-allocation contract recovery
relies on.

Reserved tids count against the mark whether or not a row is ever stored
under them — a netted insert+delete must not let a later insert reuse
the ghost's identity, on either backend.
"""

import pytest

from repro.engine import ProductionSystem
from repro.storage import MemoryTable, RelationSchema, SqliteTable

SCHEMA = RelationSchema("Emp", ("name", "age"))


@pytest.fixture(params=["memory", "sqlite"])
def table(request):
    if request.param == "memory":
        yield MemoryTable(SCHEMA)
    else:
        t = SqliteTable(SCHEMA)
        yield t
        t.close()


class TestHighWater:
    def test_virgin_table_is_at_zero(self, table):
        assert table.tid_high_water() == 0

    def test_inserts_raise_the_mark(self, table):
        table.insert(("Mike", 30))
        row = table.insert(("Sam", 40))
        assert table.tid_high_water() == row.tid

    def test_delete_does_not_lower_the_mark(self, table):
        row = table.insert(("Mike", 30))
        table.delete(row.tid)
        assert table.tid_high_water() == row.tid

    def test_reservations_count_without_storage(self, table):
        reserved = table.reserve_tid()
        assert table.tid_high_water() == reserved
        row = table.insert(("Mike", 30))
        assert row.tid > reserved

    def test_advance_pushes_future_allocations(self, table):
        table.advance_tid(50)
        assert table.tid_high_water() == 50
        assert table.insert(("Mike", 30)).tid == 51

    def test_advance_backwards_is_a_no_op(self, table):
        table.advance_tid(50)
        table.advance_tid(7)
        assert table.tid_high_water() == 50


class TestWorkingMemoryMarks:
    PROGRAM = """
(literalize item n)
(literalize other n)
"""

    @pytest.fixture(params=["memory", "sqlite"])
    def system(self, request):
        return ProductionSystem(self.PROGRAM, backend=request.param)

    def test_marks_cover_every_relation(self, system):
        system.wm.insert("item", (1,))
        marks = system.wm.tid_marks()
        assert set(marks) == {"item", "other"}
        assert marks["item"] == 1
        assert marks["other"] == 0

    def test_restore_is_monotonic(self, system):
        system.wm.insert("item", (1,))
        system.wm.restore_tid_marks({"item": 9, "other": 3})
        assert system.wm.tid_marks() == {"item": 9, "other": 3}
        system.wm.restore_tid_marks({"item": 2})  # stale mark: no-op
        assert system.wm.tid_marks()["item"] == 9

    def test_ghost_tid_is_never_reissued(self, system):
        """Regression: a reservation whose row nets out of its batch must
        still consume the tid — the SQLite backend once let AUTOINCREMENT
        re-issue it to the next eager insert."""
        with system.wm.batch():
            ghost = system.wm.insert("item", (77,))
            system.wm.remove(ghost)
        keeper = system.wm.insert("item", (88,))
        assert keeper.tid > ghost.tid
        assert system.wm.tid_marks()["item"] == keeper.tid
