"""Tests for seeded conjunctive-query evaluation."""

import pytest

from repro.errors import QueryError
from repro.storage import (
    Catalog,
    Comparison,
    ConjunctSpec,
    RelationSchema,
    VariableTest,
    evaluate,
)


@pytest.fixture
def db():
    catalog = Catalog()
    emp = catalog.create(RelationSchema("Emp", ("name", "salary", "dno")))
    dept = catalog.create(RelationSchema("Dept", ("dno", "dname", "floor")))
    emp.insert(("Mike", 100, 1))
    emp.insert(("Sam", 200, 1))
    emp.insert(("Ann", 300, 2))
    dept.insert((1, "Toy", 1))
    dept.insert((2, "Shoe", 3))
    return catalog


def names(results, index=0):
    return sorted(r.rows[index].values[0] for r in results)


class TestSingleConjunct:
    def test_constant_selection(self, db):
        spec = ConjunctSpec("Emp", constant=Comparison("salary", ">", 150))
        assert names(evaluate([spec], db)) == ["Ann", "Sam"]

    def test_equality_binding_produces_bindings(self, db):
        spec = ConjunctSpec("Emp", equalities=(("name", "n"), ("dno", "d")))
        results = list(evaluate([spec], db))
        assert len(results) == 3
        maps = {r.binding_map()["n"]: r.binding_map()["d"] for r in results}
        assert maps == {"Mike": 1, "Sam": 1, "Ann": 2}

    def test_seed_row_pins_conjunct(self, db):
        emp = db.get("Emp")
        mike = next(emp.select_eq({"name": "Mike"}))
        spec = ConjunctSpec("Emp", equalities=(("dno", "d"),))
        results = list(evaluate([spec], db, seed_index=0, seed_row=mike))
        assert len(results) == 1
        assert results[0].rows[0].values[0] == "Mike"

    def test_seed_row_failing_constant_yields_nothing(self, db):
        emp = db.get("Emp")
        mike = next(emp.select_eq({"name": "Mike"}))
        spec = ConjunctSpec("Emp", constant=Comparison("salary", ">", 150))
        assert list(evaluate([spec], db, seed_index=0, seed_row=mike)) == []

    def test_seed_index_without_row_raises(self, db):
        with pytest.raises(QueryError):
            list(evaluate([ConjunctSpec("Emp")], db, seed_index=0))


class TestJoins:
    def test_two_way_join(self, db):
        specs = [
            ConjunctSpec("Emp", equalities=(("dno", "d"), ("name", "n"))),
            ConjunctSpec(
                "Dept",
                constant=Comparison("dname", "=", "Toy"),
                equalities=(("dno", "d"),),
            ),
        ]
        results = list(evaluate(specs, db))
        assert names(results) == ["Mike", "Sam"]

    def test_join_respects_seed_bindings(self, db):
        specs = [ConjunctSpec("Emp", equalities=(("dno", "d"),))]
        results = list(evaluate(specs, db, seed_bindings={"d": 2}))
        assert names(results) == ["Ann"]

    def test_self_join_with_residual_test(self, db):
        # Employees earning less than Sam.
        specs = [
            ConjunctSpec(
                "Emp",
                constant=Comparison("name", "=", "Sam"),
                equalities=(("salary", "s"),),
            ),
            ConjunctSpec(
                "Emp",
                equalities=(("name", "n"),),
                residual=(VariableTest("salary", "<", "s"),),
            ),
        ]
        results = list(evaluate(specs, db))
        assert sorted(r.binding_map()["n"] for r in results) == ["Mike"]

    def test_three_way_join(self, db):
        db.create(RelationSchema("Mgr", ("dno", "boss")))
        db.get("Mgr").insert((1, "Zoe"))
        specs = [
            ConjunctSpec("Emp", equalities=(("dno", "d"), ("name", "n"))),
            ConjunctSpec("Dept", equalities=(("dno", "d"),)),
            ConjunctSpec("Mgr", equalities=(("dno", "d"), ("boss", "b"))),
        ]
        results = list(evaluate(specs, db))
        assert names(results) == ["Mike", "Sam"]
        assert all(r.binding_map()["b"] == "Zoe" for r in results)

    def test_cartesian_product_when_no_shared_vars(self, db):
        specs = [ConjunctSpec("Emp"), ConjunctSpec("Dept")]
        assert len(list(evaluate(specs, db))) == 6


class TestNegation:
    def test_negated_conjunct_blocks_match(self, db):
        # Employees in a department that has NO Toy entry.
        specs = [
            ConjunctSpec("Emp", equalities=(("dno", "d"), ("name", "n"))),
            ConjunctSpec(
                "Dept",
                constant=Comparison("dname", "=", "Toy"),
                equalities=(("dno", "d"),),
                negated=True,
            ),
        ]
        results = list(evaluate(specs, db))
        assert names(results) == ["Ann"]
        assert results[0].rows[1] is None

    def test_negated_conjunct_with_unbound_variable_raises(self, db):
        specs = [
            ConjunctSpec("Dept", equalities=(("dno", "d"),), negated=True)
        ]
        with pytest.raises(QueryError, match="not.*bound|unbound"):
            list(evaluate(specs, db))

    def test_cannot_seed_negated_conjunct(self, db):
        emp = db.get("Emp")
        row = next(emp.scan())
        specs = [ConjunctSpec("Emp", negated=True)]
        with pytest.raises(QueryError):
            list(evaluate(specs, db, seed_index=0, seed_row=row))


class TestPlanner:
    def test_counters_record_join_work(self, db):
        specs = [
            ConjunctSpec("Emp", equalities=(("dno", "d"),)),
            ConjunctSpec("Dept", equalities=(("dno", "d"),)),
        ]
        counters = db.counters
        before = counters.snapshot()
        list(evaluate(specs, db, counters=counters))
        assert counters.diff(before)["joins_computed"] >= 2

    def test_index_used_when_available(self, db):
        db.get("Dept").create_index("dno")
        specs = [
            ConjunctSpec("Emp", equalities=(("dno", "d"),)),
            ConjunctSpec("Dept", equalities=(("dno", "d"),)),
        ]
        before = db.counters.snapshot()
        results = list(evaluate(specs, db, counters=db.counters))
        assert len(results) == 3
        assert db.counters.diff(before)["index_lookups"] >= 1
