"""Batch storage operations: ``insert_many``/``delete_many`` on both
backends, and the SQL statement-count regression the batched path exists
to win (§4.2.3 set-orientation at the storage layer).
"""

import pytest

from repro.errors import StorageError
from repro.obs import Observability
from repro.storage import MemoryTable, RelationSchema, SqliteTable
from repro.storage.catalog import Catalog

SCHEMA = RelationSchema("Emp", ("name", "age", "dno"))


@pytest.fixture(params=["memory", "sqlite"])
def table(request):
    if request.param == "memory":
        yield MemoryTable(SCHEMA)
    else:
        t = SqliteTable(SCHEMA)
        yield t
        t.close()


ROWS = [("Mike", 30, 1), ("Sam", 40, 1), ("Ann", 50, 2)]


class TestInsertMany:
    def test_returns_rows_in_input_order(self, table):
        stored = table.insert_many(ROWS)
        assert [r.values for r in stored] == ROWS
        assert len(table) == 3

    def test_tids_and_timetags_increase_in_input_order(self, table):
        stored = table.insert_many(ROWS)
        tids = [r.tid for r in stored]
        timetags = [r.timetag for r in stored]
        assert tids == sorted(tids)
        assert timetags == sorted(timetags)
        assert len(set(tids)) == 3

    def test_explicit_timetags_are_preserved(self, table):
        stored = table.insert_many(ROWS, timetags=[10, 20, 30])
        assert [r.timetag for r in stored] == [10, 20, 30]

    def test_stored_rows_are_fetchable(self, table):
        for row in table.insert_many(ROWS):
            assert table.get(row.tid).values == row.values

    def test_empty_batch_is_noop(self, table):
        assert table.insert_many([]) == []
        assert len(table) == 0

    def test_interleaves_with_single_inserts(self, table):
        single = table.insert(("Solo", 1, 1))
        batch = table.insert_many(ROWS)
        after = table.insert(("Last", 2, 2))
        tids = [single.tid, *[r.tid for r in batch], after.tid]
        assert tids == sorted(tids)
        assert len(table) == 5

    def test_invalid_row_arity_rejected(self, table):
        with pytest.raises(Exception):
            table.insert_many([("Mike", 30)])
        # A bad row anywhere in the batch must not store anything (the
        # SQLite path validates before writing / rolls back).
        with pytest.raises(Exception):
            table.insert_many([("Mike", 30, 1), ("bad",)])
        assert len(table) == 0


class TestDeleteMany:
    def test_returns_deleted_rows_in_input_order(self, table):
        stored = table.insert_many(ROWS)
        tids = [stored[2].tid, stored[0].tid]
        deleted = table.delete_many(tids)
        assert [r.tid for r in deleted] == tids
        assert [r.values for r in deleted] == [("Ann", 50, 2), ("Mike", 30, 1)]
        assert len(table) == 1

    def test_missing_tid_raises(self, table):
        stored = table.insert_many(ROWS)
        with pytest.raises(StorageError):
            table.delete_many([stored[0].tid, 9999])

    def test_empty_batch_is_noop(self, table):
        table.insert_many(ROWS)
        assert table.delete_many([]) == []
        assert len(table) == 3

    def test_markers_dropped_with_rows(self, table):
        stored = table.insert_many(ROWS)
        table.add_marker(stored[0].tid, "c1")
        table.add_marker(stored[1].tid, "c2")
        table.delete_many([stored[0].tid, stored[1].tid])
        assert table.marker_count() == 0


class TestSqliteStatementCounts:
    """The regression gate of the batched path: one executemany per batch,
    counted once by ``storage.sql_statements``."""

    def _catalog(self):
        obs = Observability(collect_metrics=True)
        catalog = Catalog(backend="sqlite", obs=obs)
        table = catalog.create(SCHEMA)
        return obs, catalog, table

    def _statements(self, obs):
        return obs.metrics.counter("storage.sql_statements").value

    def test_insert_many_collapses_statements(self):
        obs, _catalog, table = self._catalog()
        rows = [(f"e{i}", i, i % 3) for i in range(50)]
        before = self._statements(obs)
        table.insert_many(rows)
        batched = self._statements(obs) - before
        obs2, _catalog2, table2 = self._catalog()
        before = self._statements(obs2)
        for row in rows:
            table2.insert(row)
        single = self._statements(obs2) - before
        assert batched * 2 <= single
        assert (
            obs.metrics.counter("storage.sql_batched_rows").value == len(rows)
        )

    def test_delete_many_collapses_statements(self):
        obs, _catalog, table = self._catalog()
        rows = [(f"e{i}", i, i % 3) for i in range(50)]
        stored = table.insert_many(rows)
        before = self._statements(obs)
        table.delete_many([r.tid for r in stored])
        batched = self._statements(obs) - before

        obs2, _catalog2, table2 = self._catalog()
        stored2 = table2.insert_many(rows)
        before = self._statements(obs2)
        for row in stored2:
            table2.delete(row.tid)
        single = self._statements(obs2) - before
        assert batched * 2 <= single

    def test_catalog_transaction_counts_once(self):
        obs, catalog, table = self._catalog()
        with catalog.transaction():
            table.insert_many([("a", 1, 1)])
            table.insert_many([("b", 2, 2)])
        assert obs.metrics.counter("storage.transactions").value == 1

    def test_catalog_transaction_rolls_back_on_error(self):
        _obs, catalog, table = self._catalog()
        with pytest.raises(RuntimeError):
            with catalog.transaction():
                table.insert_many([("a", 1, 1)])
                raise RuntimeError("boom")
        assert len(table) == 0

    def test_nested_transaction_is_flat(self):
        obs, catalog, table = self._catalog()
        with catalog.transaction():
            with catalog.transaction():
                table.insert_many([("a", 1, 1)])
        assert len(table) == 1
        assert obs.metrics.counter("storage.transactions").value == 1
