"""Property tests: the query evaluator vs a brute-force reference.

The seeded backtracking evaluator with its greedy planner, index probes and
deferred residual tests must return exactly the combinations a naive
nested-loop evaluation over the cartesian product returns.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    Catalog,
    Comparison,
    ConjunctSpec,
    RelationSchema,
    TruePredicate,
    VariableTest,
    compare,
    evaluate,
)

SCHEMA_R = RelationSchema("R", ("a", "b"))
SCHEMA_S = RelationSchema("S", ("a", "b"))

rows = st.tuples(st.integers(0, 3), st.integers(0, 3))


def brute_force(specs, catalog):
    """Reference: nested loops over all rows, checking everything."""
    tables = {name: list(catalog.get(name).scan()) for name in catalog.names()}
    positive = [i for i, s in enumerate(specs) if not s.negated]
    negative = [i for i, s in enumerate(specs) if s.negated]
    results = set()
    for combo in itertools.product(
        *(tables[specs[i].relation] for i in positive)
    ):
        rows_by_index = dict(zip(positive, combo))
        bindings = {}
        ok = True
        for index, row in rows_by_index.items():
            spec = specs[index]
            schema = catalog.get(spec.relation).schema
            if not spec.constant.matches(schema, row.values):
                ok = False
                break
            for attribute, variable in spec.equalities:
                value = row.values[schema.position(attribute)]
                if variable in bindings:
                    if not compare("=", bindings[variable], value):
                        ok = False
                        break
                else:
                    bindings[variable] = value
            if not ok:
                break
        if not ok:
            continue
        for index, row in rows_by_index.items():
            spec = specs[index]
            schema = catalog.get(spec.relation).schema
            for test in spec.residual:
                value = row.values[schema.position(test.attribute)]
                if not compare(test.op, value, bindings[test.variable]):
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        for index in negative:
            spec = specs[index]
            schema = catalog.get(spec.relation).schema
            for row in tables[spec.relation]:
                if not spec.constant.matches(schema, row.values):
                    continue
                witness = True
                for attribute, variable in spec.equalities:
                    value = row.values[schema.position(attribute)]
                    if not compare("=", bindings[variable], value):
                        witness = False
                        break
                if witness:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            results.add(
                tuple(
                    (rows_by_index[i].relation, rows_by_index[i].tid)
                    if i in rows_by_index
                    else None
                    for i in range(len(specs))
                )
            )
    return results


def result_keys(specs, catalog):
    return {
        tuple(
            (row.relation, row.tid) if row is not None else None
            for row in result.rows
        )
        for result in evaluate(specs, catalog)
    }


def make_catalog(r_rows, s_rows, index_r=False):
    catalog = Catalog()
    r = catalog.create(SCHEMA_R)
    s = catalog.create(SCHEMA_S)
    if index_r:
        r.create_index("a")
    for row in r_rows:
        r.insert(row)
    for row in s_rows:
        s.insert(row)
    return catalog


@settings(max_examples=60, deadline=None)
@given(
    st.lists(rows, max_size=6),
    st.lists(rows, max_size=6),
    st.booleans(),
)
def test_equality_join_matches_brute_force(r_rows, s_rows, index_r):
    catalog = make_catalog(r_rows, s_rows, index_r)
    specs = [
        ConjunctSpec("R", equalities=(("a", "x"),)),
        ConjunctSpec("S", equalities=(("a", "x"), ("b", "y"))),
    ]
    assert result_keys(specs, catalog) == brute_force(specs, catalog)


@settings(max_examples=60, deadline=None)
@given(st.lists(rows, max_size=6), st.lists(rows, max_size=6))
def test_residual_join_matches_brute_force(r_rows, s_rows):
    catalog = make_catalog(r_rows, s_rows)
    specs = [
        ConjunctSpec("R", equalities=(("a", "x"),)),
        ConjunctSpec(
            "S",
            equalities=(("b", "y"),),
            residual=(VariableTest("a", "<", "x"),),
        ),
    ]
    assert result_keys(specs, catalog) == brute_force(specs, catalog)


@settings(max_examples=60, deadline=None)
@given(st.lists(rows, max_size=6), st.lists(rows, max_size=6))
def test_negated_conjunct_matches_brute_force(r_rows, s_rows):
    catalog = make_catalog(r_rows, s_rows)
    specs = [
        ConjunctSpec("R", equalities=(("a", "x"),)),
        ConjunctSpec("S", equalities=(("a", "x"),), negated=True),
    ]
    assert result_keys(specs, catalog) == brute_force(specs, catalog)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(rows, max_size=6),
    st.lists(rows, max_size=6),
    st.integers(0, 3),
)
def test_constant_filter_matches_brute_force(r_rows, s_rows, const):
    catalog = make_catalog(r_rows, s_rows)
    specs = [
        ConjunctSpec(
            "R",
            constant=Comparison("b", "=", const),
            equalities=(("a", "x"),),
        ),
        ConjunctSpec("S", equalities=(("a", "x"),)),
    ]
    assert result_keys(specs, catalog) == brute_force(specs, catalog)


@settings(max_examples=40, deadline=None)
@given(st.lists(rows, min_size=1, max_size=6), st.lists(rows, max_size=6))
def test_seeded_evaluation_is_a_restriction(r_rows, s_rows):
    """Seeding at conjunct 0 returns exactly the full results whose first
    row is the seed."""
    catalog = make_catalog(r_rows, s_rows)
    specs = [
        ConjunctSpec("R", equalities=(("a", "x"),)),
        ConjunctSpec("S", equalities=(("a", "x"),)),
    ]
    full = result_keys(specs, catalog)
    seeded_union = set()
    for seed in catalog.get("R").scan():
        for result in evaluate(specs, catalog, seed_index=0, seed_row=seed):
            key = tuple(
                (row.relation, row.tid) if row is not None else None
                for row in result.rows
            )
            assert key[0] == ("R", seed.tid)
            seeded_union.add(key)
    assert seeded_union == full
