"""Unit and property tests for predicate evaluation semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.storage import (
    And,
    AttributeComparison,
    Comparison,
    Not,
    Or,
    RelationSchema,
    TruePredicate,
    compare,
    conjunction,
    negate_operator,
    reverse_operator,
)
from repro.storage.predicate import OPERATORS, compile_predicate

SCHEMA = RelationSchema("R", ("a", "b", "c"))

values = st.one_of(
    st.integers(-50, 50),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=4),
    st.none(),
)


class TestCompare:
    def test_numeric_equality_across_types(self):
        assert compare("=", 1, 1.0)

    def test_string_never_equals_number(self):
        assert not compare("=", "1", 1)

    def test_none_equals_none(self):
        assert compare("=", None, None)

    def test_ordering(self):
        assert compare("<", 1, 2)
        assert compare(">=", "b", "a")
        assert not compare(">", 1, 2)

    def test_mixed_type_ordering_fails_quietly(self):
        assert not compare("<", "a", 1)
        assert not compare("<", 1, "a")
        assert not compare("<", None, 1)

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            compare("~", 1, 2)

    @given(values, values)
    def test_not_equal_is_complement(self, left, right):
        assert compare("<>", left, right) == (not compare("=", left, right))

    @given(st.sampled_from(OPERATORS), values, values)
    def test_negate_operator_complements(self, op, left, right):
        # Complement holds for (in)equality always, and for ordering ops
        # whenever the operands are orderable.  Unorderable operands fail
        # both an ordering test and its complement (OPS5 semantics), so
        # there we only check the two cannot both be true.
        orderable = (
            left is not None
            and right is not None
            and isinstance(left, str) == isinstance(right, str)
        )
        direct = compare(op, left, right)
        complement = compare(negate_operator(op), left, right)
        if op in ("=", "<>") or orderable:
            assert direct == (not complement)
        else:
            assert not (direct and complement)

    @given(st.sampled_from(OPERATORS), values, values)
    def test_reverse_operator_swaps(self, op, left, right):
        assert compare(op, left, right) == compare(
            reverse_operator(op), right, left
        )


class TestPredicates:
    def test_true_predicate(self):
        assert TruePredicate().matches(SCHEMA, (1, 2, 3))

    def test_comparison(self):
        pred = Comparison("b", ">", 5)
        assert pred.matches(SCHEMA, (0, 6, 0))
        assert not pred.matches(SCHEMA, (0, 5, 0))

    def test_comparison_rejects_bad_operator(self):
        with pytest.raises(QueryError):
            Comparison("a", "!!", 1)

    def test_attribute_comparison(self):
        pred = AttributeComparison("a", "<", "b")
        assert pred.matches(SCHEMA, (1, 2, 0))
        assert not pred.matches(SCHEMA, (2, 1, 0))

    def test_and_or_not(self):
        pred = And((Comparison("a", "=", 1), Comparison("b", "=", 2)))
        assert pred.matches(SCHEMA, (1, 2, 0))
        assert not pred.matches(SCHEMA, (1, 3, 0))
        pred = Or((Comparison("a", "=", 9), Comparison("b", "=", 2)))
        assert pred.matches(SCHEMA, (0, 2, 0))
        assert Not(Comparison("a", "=", 1)).matches(SCHEMA, (2, 0, 0))

    def test_attributes_collected(self):
        pred = And(
            (Comparison("a", "=", 1), AttributeComparison("b", "<", "c"))
        )
        assert pred.attributes() == {"a", "b", "c"}

    def test_conjunction_flattens(self):
        pred = conjunction(
            [
                TruePredicate(),
                And((Comparison("a", "=", 1),)),
                Comparison("b", "=", 2),
            ]
        )
        assert isinstance(pred, And)
        assert len(pred.parts) == 2

    def test_conjunction_of_nothing_is_true(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_conjunction_of_one_unwraps(self):
        single = Comparison("a", "=", 1)
        assert conjunction([single]) is single


class TestMembership:
    def test_matches_any_listed_value(self):
        from repro.storage import Membership

        pred = Membership("b", ("x", 3, None))
        assert pred.matches(SCHEMA, (0, "x", 0))
        assert pred.matches(SCHEMA, (0, 3, 0))
        assert pred.matches(SCHEMA, (0, None, 0))
        assert not pred.matches(SCHEMA, (0, "y", 0))

    def test_numeric_equality_semantics(self):
        from repro.storage import Membership

        pred = Membership("b", (1,))
        assert pred.matches(SCHEMA, (0, 1.0, 0))
        assert not pred.matches(SCHEMA, (0, "1", 0))

    def test_attributes(self):
        from repro.storage import Membership

        assert Membership("b", (1,)).attributes() == {"b"}

    @given(st.tuples(values, values, values), st.lists(values, max_size=4))
    def test_compiled_matches_interpreted(self, row, candidates):
        from repro.storage import Membership

        pred = Membership("b", tuple(candidates))
        compiled = compile_predicate(pred, SCHEMA)
        assert compiled(row) == pred.matches(SCHEMA, row)


class TestCompilePredicate:
    @given(
        st.tuples(values, values, values),
        st.sampled_from(OPERATORS),
        values,
    )
    def test_compiled_matches_interpreted_comparison(self, row, op, const):
        pred = Comparison("b", op, const)
        compiled = compile_predicate(pred, SCHEMA)
        assert compiled(row) == pred.matches(SCHEMA, row)

    def test_compiled_nested(self):
        pred = Or(
            (
                And((Comparison("a", "=", 1), Not(Comparison("b", "=", 2)))),
                AttributeComparison("a", "=", "c"),
            )
        )
        compiled = compile_predicate(pred, SCHEMA)
        for row in [(1, 3, 0), (1, 2, 1), (5, 0, 5), (5, 0, 4)]:
            assert compiled(row) == pred.matches(SCHEMA, row)
