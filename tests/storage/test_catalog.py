"""Tests for the catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage import Catalog, RelationSchema


EMP = RelationSchema("Emp", ("name", "age"))
DEPT = RelationSchema("Dept", ("dno", "dname"))


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request):
    cat = Catalog(backend=request.param)
    yield cat
    cat.close()


class TestCatalog:
    def test_create_and_get(self, catalog):
        table = catalog.create(EMP)
        assert catalog.get("Emp") is table

    def test_duplicate_create_raises(self, catalog):
        catalog.create(EMP)
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create(EMP)

    def test_get_missing_raises(self, catalog):
        with pytest.raises(CatalogError, match="no relation"):
            catalog.get("Nope")

    def test_has(self, catalog):
        catalog.create(EMP)
        assert catalog.has("Emp")
        assert not catalog.has("Dept")

    def test_names_in_creation_order(self, catalog):
        catalog.create(EMP)
        catalog.create(DEPT)
        assert catalog.names() == ["Emp", "Dept"]

    def test_drop(self, catalog):
        catalog.create(EMP)
        catalog.drop("Emp")
        assert not catalog.has("Emp")

    def test_shared_clock_across_relations(self, catalog):
        emp = catalog.create(EMP)
        dept = catalog.create(DEPT)
        first = emp.insert(("Mike", 30))
        second = dept.insert((1, "Toy"))
        assert second.timetag == first.timetag + 1

    def test_total_tuples(self, catalog):
        emp = catalog.create(EMP)
        dept = catalog.create(DEPT)
        emp.insert(("Mike", 30))
        dept.insert((1, "Toy"))
        dept.insert((2, "Shoe"))
        assert catalog.total_tuples() == 3

    def test_shared_counters(self, catalog):
        emp = catalog.create(EMP)
        emp.insert(("Mike", 30))
        assert catalog.counters.tuple_writes == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(CatalogError, match="unknown backend"):
            Catalog(backend="oracle")
