"""Tests for the bench harness: tables, drivers, and experiment reports."""

import pytest

from repro.bench import (
    REPORTS,
    build_system,
    compare_strategies,
    drive_stream,
    format_value,
    inserts_as_events,
    render_table,
    run_stream,
)
from repro.bench.report import (
    report_e1,
    report_e2,
    report_e3,
    report_e4,
    report_e6,
    report_e7,
    report_e8,
    report_f1,
)
from repro.workload import WorkloadSpec, generate_insert_stream, generate_program


class TestTables:
    def test_render_basic(self):
        text = render_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in lines[4]

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="T")

    def test_format_value(self):
        assert format_value(1.0) == "1"
        assert format_value(1.234) == "1.23"
        assert format_value("x") == "x"

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestDrivers:
    @pytest.fixture
    def workload(self):
        spec = WorkloadSpec(rules=5, classes=3, seed=1)
        return generate_program(spec).program, generate_insert_stream(spec, 40)

    def test_run_stream_metrics(self, workload):
        program, stream = workload
        run = run_stream(program, inserts_as_events(stream), "rete")
        assert run.events == 40
        assert run.wall_seconds > 0
        assert run.space is not None
        assert run.counters["tokens"] > 0

    def test_compare_strategies_same_conflict_sets(self, workload):
        program, stream = workload
        runs = compare_strategies(
            program, inserts_as_events(stream), ["rete", "patterns"]
        )
        assert runs[0].conflict_size == runs[1].conflict_size
        assert runs[0].conflict_additions == runs[1].conflict_additions

    def test_drive_stream_handles_deletes(self, workload):
        program, stream = workload
        wm, _ = build_system(program, "rete")
        events = inserts_as_events(stream[:10]) + [("delete", 0)] * 3
        count, live = drive_stream(wm, events)
        assert count == 13
        assert len(live) == 7

    def test_unknown_event_kind(self, workload):
        program, _ = workload
        wm, _ = build_system(program, "rete")
        with pytest.raises(ValueError):
            drive_stream(wm, [("upsert", None)])

    def test_row_projection(self, workload):
        program, stream = workload
        run = run_stream(program, inserts_as_events(stream), "rete")
        row = run.row("comparisons")
        assert set(row) == {"strategy", "events", "ms", "us/event", "comparisons"}


class TestReportsSmoke:
    """Every experiment report runs (small sizes) and yields rows."""

    def test_report_registry_complete(self):
        assert set(REPORTS) == {
            "f1", "e1", "e2", "e3", "e4", "e6", "e7", "e8", "e9", "a4",
            "a5", "a6", "a7", "a8", "a9", "a10",
        }

    def test_a5(self):
        from repro.bench.report import report_a5

        _, rows = report_a5(
            stream_length=60, batch_sizes=(1, 8), strategies=("rete",)
        )
        assert len(rows) == 2
        assert len({r["conflict_size"] for r in rows}) == 1

    def test_a6(self):
        from repro.bench.report import report_a6

        _, rows = report_a6(cycles=20, fsync_everys=(64,),
                            checkpoint_every=8)
        assert [r["mode"] for r in rows] == [
            "wal off", "wal fsync=64", "wal+ckpt every 8",
        ]
        assert len({r["wm"] for r in rows}) == 1
        assert rows[2]["replayed"] < rows[1]["replayed"]

    def test_a7(self):
        from repro.bench.report import report_a7

        _, rows = report_a7(
            stream_length=60, batch_sizes=(8,), strategies=("rete",)
        )
        assert len(rows) == 1
        row = rows[0]
        # The pairing asserts bit-identical conflict sets internally; at
        # this tiny scale the hash build can outweigh the scan, so only
        # the row shape is checked here (the payoff is gated at full
        # size by benchmarks/bench_a7_compile.py).
        assert row["interp_cmp"] > 0 and row["compiled_cmp"] > 0
        assert row["conflict_size"] > 0

    def test_a8(self):
        from repro.bench.report import report_a8

        _, rows = report_a8(
            stream_length=60, worker_counts=(1, 2), strategies=("rete",)
        )
        assert len(rows) == 2
        # report_a8 asserts bit-identical conflict-set keys internally;
        # the published sizes must agree too, and only the parallel row
        # may touch the pool.
        assert len({r["conflict_size"] for r in rows}) == 1
        serial, parallel = rows
        assert serial["workers"] == 1 and serial["fanouts"] == 0
        assert parallel["workers"] == 2 and parallel["fanouts"] > 0

    def test_e9(self):
        from repro.bench.report import report_e9

        _, rows = report_e9(stream_length=40)
        assert {r["strategy"] for r in rows} == {"markers", "predicate-index"}

    def test_f1(self):
        title, rows = report_f1(depths=(2, 4))
        assert "F1" in title
        assert len(rows) == 4

    def test_e1(self):
        _, rows = report_e1(rule_counts=(5,), stream_length=50)
        assert {r["strategy"] for r in rows} >= {"rete", "patterns"}

    def test_e2(self):
        _, rows = report_e2(stream_length=50)
        assert all("estimated_cells" in r for r in rows)

    def test_e3(self):
        _, rows = report_e3(stream_length=50)
        assert {r["strategy"] for r in rows} == {"rete", "patterns", "markers"}

    def test_e4(self):
        _, rows = report_e4(sizes=(2,))
        assert len(rows) == 2

    def test_e6(self):
        _, rows = report_e6(stream_length=50)
        assert len(rows) == 4

    def test_e7(self):
        _, rows = report_e7(condition_counts=(20,), probes=20)
        (row,) = rows
        assert row["rtree_hits"] >= row["exact_hits"]

    def test_e8(self):
        _, rows = report_e8(stream_length=30)
        assert len(rows) == 4  # incl. the on-disk WM configuration

    def test_cli_main(self, capsys):
        from repro.bench.report import main

        output = main(["f1"])
        assert "F1" in output
        assert "F1" in capsys.readouterr().out

    def test_cli_unknown_experiment(self):
        from repro.bench.report import main

        with pytest.raises(SystemExit):
            main(["zz"])
