"""Soak tests: larger workloads, deep recursion, long churn."""

import random

import pytest

from repro.engine import ProductionSystem, WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program
from repro.match import STRATEGIES
from repro.workload import (
    WorkloadSpec,
    generate_program,
    mixed_stream,
)


def test_large_generated_workload_equivalence():
    """40 rules, 600 mixed events, the two headline strategies agree."""
    spec = WorkloadSpec(
        rules=40,
        classes=6,
        min_conditions=1,
        max_conditions=3,
        negation_probability=0.15,
        seed=99,
    )
    workload = generate_program(spec)
    analyses = analyze_program(workload.program.rules, workload.program.schemas)
    wm = WorkingMemory(workload.program.schemas)
    rete = STRATEGIES["rete"](wm, analyses, counters=Counters())
    patterns = STRATEGIES["patterns"](wm, analyses, counters=Counters())
    live = []
    for kind, payload in mixed_stream(spec, 600, delete_fraction=0.35):
        if kind == "insert":
            class_name, values = payload
            live.append(wm.insert(class_name, values))
        else:
            wm.remove(live.pop(payload))
    assert rete.conflict_set_keys() == patterns.conflict_set_keys()


def test_long_recognize_act_run():
    """A 500-cycle counter run stays linear and exact."""
    system = ProductionSystem(
        """
        (literalize Counter value limit)
        (p up (Counter ^value <V> ^limit {<L> > <V>})
            --> (modify 1 ^value (compute <V> + 1)))
        """
    )
    system.insert("Counter", {"value": 0, "limit": 500})
    result = system.run(max_cycles=600)
    assert result.cycles == 500
    (counter,) = system.wm.tuples("Counter")
    assert counter.values == (500, 500)


def test_deep_transitive_closure_converges():
    """Closure of a 12-node chain: 66 derived edges, all strategies."""
    rules = """
    (literalize Edge from to)
    (p transitive
        (Edge ^from <A> ^to <B>)
        (Edge ^from <B> ^to <C>)
        -(Edge ^from <A> ^to <C>)
        -->
        (make Edge ^from <A> ^to <C>))
    """
    n = 12
    expected = n * (n - 1) // 2
    for strategy in ("rete", "patterns"):
        system = ProductionSystem(rules, strategy=strategy)
        for i in range(n - 1):
            system.insert("Edge", (i, i + 1))
        result = system.run(max_cycles=2000)
        assert not result.exhausted
        assert len(list(system.wm.tuples("Edge"))) == expected


@pytest.mark.parametrize("strategy", ["patterns", "rete"])
def test_compaction_under_sustained_churn(strategy):
    """Periodic folding compaction never corrupts matching."""
    spec = WorkloadSpec(rules=15, classes=4, seed=31)
    workload = generate_program(spec)
    analyses = analyze_program(workload.program.rules, workload.program.schemas)
    wm = WorkingMemory(workload.program.schemas)
    reference = STRATEGIES["rete"](wm, analyses, counters=Counters())
    subject = STRATEGIES[strategy](wm, analyses, counters=Counters())
    rng = random.Random(31)
    live = []
    for step in range(400):
        if rng.random() < 0.6 or not live:
            class_name = spec.class_name(rng.randrange(spec.classes))
            values = tuple(
                rng.randrange(spec.domain) for _ in range(spec.attributes)
            )
            live.append(wm.insert(class_name, values))
        else:
            wm.remove(live.pop(rng.randrange(len(live))))
        if strategy == "patterns" and step % 50 == 49:
            subject.compact(max_per_condition=3)
        if step % 25 == 0:
            assert subject.conflict_set_keys() == reference.conflict_set_keys()
    assert subject.conflict_set_keys() == reference.conflict_set_keys()
