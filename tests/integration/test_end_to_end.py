"""End-to-end scenarios across strategies, backends, and subsystems."""

import pytest

from repro import (
    ConcurrentScheduler,
    ProductionSystem,
    TriggerManager,
    ViewManager,
    is_serializable,
)
from repro.match import STRATEGIES
from repro.workload import EXAMPLE4_SOURCE, EXAMPLE5_INSERTS

PAYROLL = """
(literalize Emp name salary dno)
(literalize Dept dno budget)
(literalize Payout name amount)

; Pay everyone in a funded department, consuming budget.
(p pay
    (Emp ^name <N> ^salary <S> ^dno <D>)
    (Dept ^dno <D> ^budget {<B> >= <S>})
    -->
    (modify 2 ^budget (compute <B> - <S>))
    (make Payout ^name <N> ^amount <S>)
    (remove 1))
"""


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_payroll_runs_on_every_strategy_and_backend(strategy, backend):
    system = ProductionSystem(
        PAYROLL, strategy=strategy, backend=backend, resolution="fifo"
    )
    system.insert("Dept", {"dno": 1, "budget": 300})
    system.insert("Emp", {"name": "Mike", "salary": 100, "dno": 1})
    system.insert("Emp", {"name": "Sam", "salary": 150, "dno": 1})
    system.insert("Emp", {"name": "Ann", "salary": 100, "dno": 1})
    result = system.run()
    payouts = sorted(t.values for t in system.wm.tuples("Payout"))
    # FIFO pays Mike (100), then Sam (150); Ann's 100 exceeds the
    # remaining 50.
    assert payouts == [("Mike", 100), ("Sam", 150)]
    (dept,) = system.wm.tuples("Dept")
    assert dept.values == (1, 50)
    assert result.cycles == 2


def test_example5_trace_through_the_facade():
    system = ProductionSystem(EXAMPLE4_SOURCE, strategy="patterns")
    for class_name, values in EXAMPLE5_INSERTS[:-1]:
        system.insert(class_name, values)
    assert len(system.conflict_set) == 0
    system.insert(*EXAMPLE5_INSERTS[-1])
    assert len(system.conflict_set) == 1


def test_rules_views_and_triggers_share_one_wm():
    """Rules fire, a view stays consistent, and triggers alert — all off
    the same working memory, as the paper's unified framing promises."""
    system = ProductionSystem(PAYROLL, resolution="fifo")
    views = ViewManager(system.wm)
    paid = views.create("paid", "(Payout ^name <N> ^amount <A>)", ["N", "A"])
    triggers = TriggerManager(system.wm)
    triggers.define_alerter("low-budget", "(Dept ^budget < 100)")

    system.insert("Dept", {"dno": 1, "budget": 300})
    system.insert("Emp", {"name": "Mike", "salary": 100, "dno": 1})
    system.insert("Emp", {"name": "Sam", "salary": 150, "dno": 1})
    system.run()

    assert paid.rows() == {("Mike", 100), ("Sam", 150)}
    assert paid.rows() == paid.refresh_from_scratch()
    satisfied = [a for a in triggers.alerts if a.kind == "satisfied"]
    assert len(satisfied) == 1  # budget dropped 300 -> 50


def test_concurrent_and_serial_agree_end_to_end():
    def fresh():
        system = ProductionSystem(PAYROLL)
        system.insert("Dept", {"dno": 1, "budget": 1000})
        for i in range(5):
            system.insert("Emp", {"name": f"e{i}", "salary": 100, "dno": 1})
        return system

    serial = fresh()
    serial.run()
    concurrent = fresh()
    result = ConcurrentScheduler(concurrent).run()
    assert is_serializable(result.history)
    assert sorted(t.values for t in serial.wm.tuples("Payout")) == sorted(
        t.values for t in concurrent.wm.tuples("Payout")
    )
    assert next(iter(serial.wm.tuples("Dept"))).values == next(
        iter(concurrent.wm.tuples("Dept"))
    ).values


def test_strategy_counters_isolated_per_system():
    a = ProductionSystem(PAYROLL)
    b = ProductionSystem(PAYROLL)
    a.insert("Dept", {"dno": 1, "budget": 100})
    assert b.counters.tuple_writes == 0
    assert a.counters.tuple_writes > 0
