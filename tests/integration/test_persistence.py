"""File-backed persistence: working memory that survives the process.

The paper's premise: "a large knowledge base cannot, and perhaps should
not, for space reasons, reside in main memory" — so WM relations can live
in a SQLite file and a production system can be re-attached to them in a
later session, with match state rebuilt by replay.
"""

import pytest

from repro.engine import ProductionSystem, WorkingMemory
from repro.storage import Catalog, RelationSchema

SCHEMAS = {"Emp": RelationSchema("Emp", ("name", "salary"))}

RULES = """
(literalize Task id state)
(p start (Task ^id <I> ^state todo) --> (modify 1 ^state done))
"""


class TestCatalogPersistence:
    def test_rows_survive_reopen(self, tmp_path):
        db = str(tmp_path / "kb.sqlite")
        first = Catalog(backend="sqlite", path=db)
        table = first.create(SCHEMAS["Emp"])
        table.insert(("Mike", 100))
        table.insert(("Sam", 200))
        first.close()

        second = Catalog(backend="sqlite", path=db)
        table = second.create(SCHEMAS["Emp"])
        assert sorted(t.values for t in table.scan()) == [
            ("Mike", 100),
            ("Sam", 200),
        ]
        second.close()

    def test_timetags_stay_monotone_across_sessions(self, tmp_path):
        db = str(tmp_path / "kb.sqlite")
        first = Catalog(backend="sqlite", path=db)
        old = first.create(SCHEMAS["Emp"]).insert(("Mike", 100))
        first.close()

        second = Catalog(backend="sqlite", path=db)
        new = second.create(SCHEMAS["Emp"]).insert(("Sam", 200))
        assert new.timetag > old.timetag
        assert new.tid > old.tid
        second.close()

    def test_path_requires_sqlite_backend(self):
        with pytest.raises(Exception, match="sqlite"):
            Catalog(backend="memory", path="/tmp/nope.db")


class TestWorkingMemoryPersistence:
    def test_wm_reopens_with_contents(self, tmp_path):
        db = str(tmp_path / "wm.sqlite")
        wm = WorkingMemory(SCHEMAS, backend="sqlite", path=db)
        wm.insert("Emp", ("Mike", 100))
        wm.catalog.close()

        wm2 = WorkingMemory(SCHEMAS, backend="sqlite", path=db)
        assert [t.values for t in wm2.tuples("Emp")] == [("Mike", 100)]
        wm2.catalog.close()

    def test_strategy_replays_persisted_wm(self, tmp_path):
        db = str(tmp_path / "wm.sqlite")
        wm = WorkingMemory(SCHEMAS, backend="sqlite", path=db)
        wm.insert("Emp", ("Mike", 100))
        wm.catalog.close()

        from repro.instrument import Counters
        from repro.lang import analyze_program, parse_program
        from repro.match import STRATEGIES

        program = parse_program(
            "(literalize Emp name salary)"
            "(p rich (Emp ^salary >= 100) --> (remove 1))"
        )
        analyses = analyze_program(program.rules, program.schemas)
        wm2 = WorkingMemory(program.schemas, backend="sqlite", path=db)
        strategy = STRATEGIES["patterns"](wm2, analyses, counters=Counters())
        assert len(strategy.conflict_set) == 1
        wm2.catalog.close()


class TestProductionSystemPersistence:
    def test_session_resumes_where_it_left_off(self, tmp_path):
        db = str(tmp_path / "tasks.sqlite")
        first = ProductionSystem(RULES, backend="sqlite", path=db)
        first.insert("Task", (1, "todo"))
        first.insert("Task", (2, "todo"))
        result = first.run(max_cycles=1)  # finish only one task
        assert result.cycles == 1
        first.wm.catalog.close()

        second = ProductionSystem(RULES, backend="sqlite", path=db)
        states = sorted(t.values for t in second.wm.tuples("Task"))
        assert ("1" if False else states[0][1]) in ("done", "todo")
        assert {s for _, s in states} == {"done", "todo"}
        # The remaining todo task is matched immediately on reopen...
        assert len(second.eligible()) == 1
        # ...and the cycle completes the job.
        second.run()
        assert {t.values[1] for t in second.wm.tuples("Task")} == {"done"}
        second.wm.catalog.close()
