"""Backend equivalence: the same stream over memory- and SQLite-backed WM.

SQLite's dynamic typing (1 vs 1.0, text affinity, NULL) must not change
match semantics, so the conflict sets of strategies attached to a SQLite
working memory are compared against a memory-backed reference after every
event.
"""

import random

import pytest

from repro.engine import WorkingMemory
from repro.instrument import Counters
from repro.lang import analyze_program, parse_program
from repro.match import STRATEGIES

SOURCE = """
(literalize Emp name salary dno)
(literalize Dept dno dname)
(p join (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))
(p sel  (Emp ^salary > 120) --> (remove 1))
(p neg  (Emp ^dno <D>) -(Dept ^dno <D>) --> (remove 1))
(p nil-check (Emp ^name nil ^dno <D>) --> (remove 1))
"""


@pytest.mark.parametrize("strategy_name", ["patterns", "rete", "simplified"])
def test_sqlite_wm_matches_memory_wm(strategy_name):
    program = parse_program(SOURCE)
    analyses = analyze_program(program.rules, program.schemas)

    memory_wm = WorkingMemory(program.schemas, backend="memory")
    sqlite_wm = WorkingMemory(program.schemas, backend="sqlite")
    memory_strategy = STRATEGIES[strategy_name](
        memory_wm, analyses, counters=Counters()
    )
    sqlite_strategy = STRATEGIES[strategy_name](
        sqlite_wm, analyses, counters=Counters()
    )

    rng = random.Random(17)
    live = []
    values_pool = ["Ann", None, 1, 1.0, "1", 150]
    for step in range(180):
        if rng.random() < 0.65 or not live:
            if rng.random() < 0.7:
                row = (
                    rng.choice(values_pool),
                    rng.choice([100, 150.0, 50]),
                    rng.randint(1, 3),
                )
                a = memory_wm.insert("Emp", row)
                b = sqlite_wm.insert("Emp", row)
            else:
                row = (rng.randint(1, 3), rng.choice(["Toy", None]))
                a = memory_wm.insert("Dept", row)
                b = sqlite_wm.insert("Dept", row)
            assert a.tid == b.tid
            live.append((a, b))
        else:
            a, b = live.pop(rng.randrange(len(live)))
            memory_wm.remove(a)
            sqlite_wm.remove(b)
        assert (
            memory_strategy.conflict_set_keys()
            == sqlite_strategy.conflict_set_keys()
        ), f"step {step}"
    sqlite_wm.catalog.close()
