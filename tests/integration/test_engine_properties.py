"""Engine-level invariants over generated programs (hypothesis-driven)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import ProductionSystem
from repro.workload import WorkloadSpec, generate_program


def build_system(seed, rules, firing):
    spec = WorkloadSpec(
        rules=rules,
        classes=3,
        min_conditions=1,
        max_conditions=2,
        domain=4,
        seed=seed,
    )
    workload = generate_program(spec)
    return ProductionSystem(workload.program, firing=firing), spec


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 50),
    rules=st.integers(1, 8),
    inserts=st.integers(1, 25),
    firing=st.sampled_from(["instance", "set"]),
)
def test_generated_programs_terminate_and_quiesce(seed, rules, inserts, firing):
    """Generated rules only remove their first matched element, so runs
    terminate; at quiescence nothing eligible remains and refraction holds."""
    system, spec = build_system(seed, rules, firing)
    import random

    rng = random.Random(seed)
    for _ in range(inserts):
        class_name = spec.class_name(rng.randrange(spec.classes))
        values = tuple(
            rng.randrange(spec.domain) for _ in range(spec.attributes)
        )
        system.insert(class_name, values)
    result = system.run(max_cycles=500)
    assert not result.exhausted
    assert system.eligible() == []
    # Refraction: no instantiation fired twice.
    fired_keys = [record.instantiation.key for record in result.fired]
    assert len(fired_keys) == len(set(fired_keys))
    # A firing removes at most one element (the generated RHS), and never
    # resurrects anything.
    wm_size = system.wm.size()
    assert inserts - len(result.fired) <= wm_size <= inserts


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 30), inserts=st.integers(1, 15))
def test_set_and_instance_firing_agree_on_single_condition_rules(seed, inserts):
    """With single-condition rules (no cross-instantiation interference),
    both Act granularities drain exactly the same elements."""

    def run(firing):
        spec = WorkloadSpec(
            rules=4,
            classes=3,
            min_conditions=1,
            max_conditions=1,
            domain=4,
            seed=seed,
        )
        workload = generate_program(spec)
        system = ProductionSystem(workload.program, firing=firing)
        import random

        rng = random.Random(seed + 1)
        for _ in range(inserts):
            class_name = spec.class_name(rng.randrange(spec.classes))
            values = tuple(
                rng.randrange(spec.domain) for _ in range(spec.attributes)
            )
            system.insert(class_name, values)
        result = system.run(max_cycles=500)
        assert not result.exhausted
        return sorted(
            (name, tuple(t.values))
            for name in system.wm.schemas
            for t in system.wm.tuples(name)
        )

    assert run("instance") == run("set")
