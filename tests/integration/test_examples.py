"""Every example script runs clean (they contain their own assertions)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {script.name for script in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda s: s.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "OK" in completed.stdout or "identical" in completed.stdout
