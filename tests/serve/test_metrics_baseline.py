"""Serve metrics regression gate: a canned multi-tenant round script.

Replays a fixed, fully deterministic serving scenario — two tenants on
one shared pack, four drain rounds with per-op admission decisions that
deterministically accept, defer and shed (against global *and*
per-tenant quotas), every round shipped to an in-process warm standby —
and gates every ``serve.*`` and ``replica.*`` operation count against
``tests/baselines/serve_metrics_baseline.json`` via
:func:`repro.obs.gate.compare` (the same comparator CI runs for the
engine baseline).  Wall-clock histograms contribute only their *counts*.

Regenerate after an intentional serving change::

    PYTHONPATH=src:. python tests/serve/test_metrics_baseline.py --update
"""

import json
import tempfile
from pathlib import Path

from repro.obs import Observability
from repro.obs.gate import compare
from repro.recovery.wal import GroupCommit
from repro.replica import FollowerState, LogShipper
from repro.serve.backpressure import AdmissionController, AdmissionPolicy
from repro.serve.protocol import parse_request
from repro.serve.registry import SessionRegistry
from repro.serve.session import TenantSession

BASELINE = (
    Path(__file__).resolve().parents[1]
    / "baselines"
    / "serve_metrics_baseline.json"
)

PROGRAM = """
(literalize ev n)
(literalize acc total count)
(p absorb
    (ev ^n <n>)
    (acc ^total <t> ^count <c>)
    -->
    (modify 2 ^total (compute <t> + <n>) ^count (compute <c> + 1))
    (remove 1))
"""

TENANTS = ("t1", "t2")
ROUNDS = 4
OPS_PER_ROUND = 8  # depths 0..7 against the thresholds below
POLICY = AdmissionPolicy(defer_depth=4, shed_depth=6)
#: t2 runs on a tighter per-tenant quota, so the tenant-labelled
#: admission counters walk different bands than the global ones.
TENANT_POLICIES = {"t2": AdmissionPolicy(defer_depth=3, shed_depth=5)}

_TIME_SUFFIXES = ("_us", "_seconds", "_ms")


def _request(tenant, seq, relation, values):
    return parse_request(json.dumps(
        {"op": "insert", "tenant": tenant, "seq": seq,
         "relation": relation, "values": values}
    ))


def collect_serve_metrics(data_dir: str) -> dict:
    """Run the canned scenario; returns gated ``serve.*`` values."""
    import os

    os.makedirs(data_dir, exist_ok=True)
    obs = Observability(collect_metrics=True)
    group = GroupCommit(obs)
    registry = SessionRegistry()
    admission = AdmissionController(POLICY, obs=obs,
                                    tenant_policies=TENANT_POLICIES)
    shipper = LogShipper(obs=obs, epoch=1)
    shipper.attach(object())  # the in-process "link"
    follower = FollowerState(os.path.join(data_dir, "standby"), obs=obs,
                             epoch=1)
    pack = registry.pack_for(PROGRAM)
    sessions = {}
    for name in TENANTS:
        session = TenantSession.start(
            name, pack, data_dir, group=group, obs=obs,
            checkpoint_rounds=2, wal_tap=shipper.tap_for(name),
        )
        registry.add(session)
        sessions[name] = session
    group.flush()

    def ship_round():
        """One semi-sync ship round, exactly like the server's."""
        ack = None
        for frame in shipper.round_frames():
            ack = follower.handle_frame(frame) or ack
        shipper.handle_ack(ack)

    ship_round()
    next_seq = dict.fromkeys(TENANTS, 1)
    for round_index in range(ROUNDS):
        for name in TENANTS:
            session = sessions[name]
            if round_index == 0:
                session.enqueue(_request(name, next_seq[name], "acc",
                                         {"total": 0, "count": 0}))
                next_seq[name] += 1
            for _ in range(OPS_PER_ROUND):
                request = _request(name, next_seq[name], "ev",
                                   {"n": next_seq[name]})
                next_seq[name] += 1
                if admission.admit(session.depth, tenant=name) == "shed":
                    continue  # dropped exactly like the server would
                session.enqueue(request)
        for name in TENANTS:
            sessions[name].drain()
        group.flush()
        ship_round()
        for name in TENANTS:
            sessions[name].maybe_checkpoint()
    for name in TENANTS:
        sessions[name].close()
    follower.close()

    snapshot = obs.metrics.snapshot()
    values: dict[str, float] = {}
    for section in ("counters", "gauges"):
        for metric, value in snapshot.get(section, {}).items():
            if not metric.startswith(("serve.", "replica.")):
                continue
            if metric.endswith(_TIME_SUFFIXES) or "_us[" in metric:
                continue
            values[metric] = value
    for metric, summary in snapshot.get("histograms", {}).items():
        if metric.startswith(("serve.", "replica.")):
            values[f"hist.{metric}.count"] = summary.get("count", 0)
    return values


class TestServeMetricsBaseline:
    def test_scenario_is_deterministic(self, tmp_path):
        first = collect_serve_metrics(str(tmp_path / "a"))
        second = collect_serve_metrics(str(tmp_path / "b"))
        assert first == second

    def test_gate_passes_against_checked_in_baseline(self, tmp_path):
        baseline = json.loads(BASELINE.read_text())
        current = collect_serve_metrics(str(tmp_path))
        violations = compare(
            baseline["metrics"], current, baseline["tolerance"]
        )
        assert not violations, "\n".join(str(v) for v in violations)

    def test_baseline_tracks_the_load_bearing_counters(self):
        metrics = json.loads(BASELINE.read_text())["metrics"]
        for name in (
            "serve.ops_applied",
            "serve.group_commits",
            "serve.group_commit_members",
            "serve.admission_accept",
            "serve.admission_defer",
            "serve.admission_shed",
            "serve.admission_accept[t2]",
            "hist.serve.drain_us.count",
            "replica.shipped_records",
            "replica.ship_rounds",
            "replica.round_acks",
            "replica.applied_records",
            "replica.applied_boundaries",
            "replica.commit_frames",
            "replica.lag_records",
        ):
            assert name in metrics, name

    def test_shed_and_defer_actually_happen_in_the_scenario(self, tmp_path):
        """The gate is only worth its salt if the canned scenario walks
        all three admission bands."""
        current = collect_serve_metrics(str(tmp_path))
        assert current["serve.admission_accept"] > 0
        assert current["serve.admission_defer"] > 0
        assert current["serve.admission_shed"] > 0
        # ... per tenant too: t2's tighter quota sheds more than t1's
        assert current["serve.admission_shed[t2]"] > current.get(
            "serve.admission_shed[t1]", 0
        )

    def test_standby_is_caught_up_at_every_commit_frame(self, tmp_path):
        """The shipped scenario ends with zero replication lag and every
        shipped record applied."""
        current = collect_serve_metrics(str(tmp_path))
        assert current["replica.lag_records"] == 0
        assert current["replica.applied_records"] == (
            current["replica.shipped_records"]
        )
        assert current["replica.round_acks"] == current["replica.ship_rounds"]


def _update() -> None:
    with tempfile.TemporaryDirectory() as directory:
        current = collect_serve_metrics(directory)
    payload = {
        "scenario": "tests/serve/test_metrics_baseline.py",
        "tolerance": 0.10,
        "metrics": current,
    }
    BASELINE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"baseline rewritten: {BASELINE} ({len(current)} metrics)")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _update()
    else:
        print(json.dumps(collect_serve_metrics(tempfile.mkdtemp()),
                         indent=2, sort_keys=True))
