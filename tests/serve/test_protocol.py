"""The serve wire protocol: parsing, validation, reply encoding."""

import json

import pytest

from repro.serve.protocol import (
    MUTATION_OPS,
    ProtocolError,
    encode_reply,
    parse_request,
)


def parse(body: dict):
    return parse_request(json.dumps(body))


class TestParseRequest:
    def test_minimal_insert(self):
        request = parse(
            {"op": "insert", "tenant": "t1", "seq": 1,
             "relation": "ev", "values": {"n": 1}}
        )
        assert request.op == "insert"
        assert request.tenant == "t1"
        assert request.seq == 1
        assert request.relation == "ev"
        assert request.values == {"n": 1}

    def test_bytes_lines_accepted(self):
        line = json.dumps({"op": "ping"}).encode("utf-8")
        assert parse_request(line).op == "ping"

    def test_row_list_values_accepted(self):
        request = parse(
            {"op": "insert", "tenant": "t1", "seq": 1,
             "relation": "ev", "values": [7]}
        )
        assert request.values == [7]

    def test_config_defaults_to_empty_mapping(self):
        assert parse({"op": "attach", "tenant": "t1"}).config == {}

    @pytest.mark.parametrize("bad", ["not json", "[1, 2]", '"just a string"'])
    def test_non_object_lines_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse({"op": "explode"})

    @pytest.mark.parametrize("op", MUTATION_OPS)
    def test_mutations_require_positive_seq(self, op):
        with pytest.raises(ProtocolError, match="seq"):
            parse({"op": op, "tenant": "t1", "relation": "ev",
                   "values": {}, "tid": 1, "changes": {"n": 1}})

    @pytest.mark.parametrize("op", MUTATION_OPS)
    def test_mutations_require_a_relation(self, op):
        with pytest.raises(ProtocolError, match="relation"):
            parse({"op": op, "tenant": "t1", "seq": 1,
                   "values": {}, "tid": 1, "changes": {"n": 1}})

    def test_insert_requires_values(self):
        with pytest.raises(ProtocolError, match="values"):
            parse({"op": "insert", "tenant": "t1", "seq": 1,
                   "relation": "ev"})

    @pytest.mark.parametrize("op", ["delete", "modify"])
    def test_delete_and_modify_require_tid(self, op):
        with pytest.raises(ProtocolError, match="tid"):
            parse({"op": op, "tenant": "t1", "seq": 1,
                   "relation": "ev", "changes": {"n": 1}})

    def test_modify_requires_nonempty_changes(self):
        with pytest.raises(ProtocolError, match="changes"):
            parse({"op": "modify", "tenant": "t1", "seq": 1,
                   "relation": "ev", "tid": 1, "changes": {}})

    def test_query_requires_a_relation(self):
        with pytest.raises(ProtocolError, match="relation"):
            parse({"op": "query", "tenant": "t1"})

    @pytest.mark.parametrize(
        "tenant", ["", "has space", "a/b", "../../etc", "x" * 65]
    )
    def test_path_unsafe_tenants_rejected(self, tenant):
        """Tenant names become WAL filenames; traversal must not parse."""
        with pytest.raises(ProtocolError, match="tenant"):
            parse({"op": "attach", "tenant": tenant})

    def test_tenantless_mutation_rejected(self):
        with pytest.raises(ProtocolError, match="requires a tenant"):
            parse({"op": "insert", "seq": 1, "relation": "ev",
                   "values": {}})

    def test_ping_and_status_need_no_tenant(self):
        assert parse({"op": "ping"}).tenant is None
        assert parse({"op": "status"}).tenant is None

    def test_follow_parses_epoch_and_have(self):
        request = parse({"op": "follow", "epoch": 3,
                         "have": {"t1": 12, "t2": 0}})
        assert request.op == "follow"
        assert request.epoch == 3
        assert request.have == {"t1": 12, "t2": 0}

    def test_follow_have_defaults_to_empty(self):
        assert parse({"op": "follow", "epoch": 0}).have == {}

    @pytest.mark.parametrize("epoch", [None, -1, "2", 1.5])
    def test_follow_requires_nonnegative_integer_epoch(self, epoch):
        with pytest.raises(ProtocolError, match="epoch"):
            parse({"op": "follow", "epoch": epoch})

    @pytest.mark.parametrize(
        "have", [{"t1": "12"}, {"t1": 1.5}, ["t1"], "t1"]
    )
    def test_follow_have_must_map_tenants_to_seqs(self, have):
        with pytest.raises(ProtocolError, match="have"):
            parse({"op": "follow", "epoch": 0, "have": have})

    def test_promote_needs_no_tenant(self):
        assert parse({"op": "promote"}).tenant is None

    def test_error_reply_carries_op_and_seq(self):
        try:
            parse({"op": "insert", "tenant": "t1", "seq": 4,
                   "relation": "ev"})
        except ProtocolError as exc:
            assert exc.reply["ok"] is False
            assert exc.reply["op"] == "insert"
            assert exc.reply["seq"] == 4
        else:
            pytest.fail("expected ProtocolError")


class TestEncodeReply:
    def test_one_line_sorted_compact_json(self):
        raw = encode_reply({"b": 1, "a": {"z": 2, "y": 3}})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert raw == b'{"a":{"y":3,"z":2},"b":1}\n'

    def test_round_trips_through_the_parser_side(self):
        body = {"ok": True, "op": "ping", "pong": True}
        assert json.loads(encode_reply(body)) == body
