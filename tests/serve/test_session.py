"""TenantSession units: drain rounds, exactly-once marks, group commit,
checkpoint cadence, and crash recovery — no sockets, no event loop."""

import os

import pytest

from repro.obs import Observability
from repro.recovery.wal import GroupCommit, read_wal_chain
from repro.serve.protocol import parse_request
from repro.serve.registry import SessionRegistry
from repro.serve.session import (
    TenantSession,
    checkpoint_path,
    wal_path,
)

PROGRAM = """
(literalize ev n)
(literalize acc total count)
(p absorb
    (ev ^n <n>)
    (acc ^total <t> ^count <c>)
    -->
    (modify 2 ^total (compute <t> + <n>) ^count (compute <c> + 1))
    (remove 1))
"""


def request(**body):
    import json

    return parse_request(json.dumps(body))


def make_session(tmp_path, name="t1", group=None, obs=None, **kwargs):
    registry = SessionRegistry()
    pack = registry.pack_for(PROGRAM)
    session = TenantSession.start(
        name, pack, str(tmp_path), group=group, obs=obs, **kwargs
    )
    return session, registry


class TestDrain:
    def test_applies_ops_commits_and_fires(self, tmp_path):
        group = GroupCommit()
        session, _ = make_session(tmp_path, group=group)
        session.enqueue(request(op="insert", tenant="t1", seq=1,
                                relation="acc",
                                values={"total": 0, "count": 0}))
        session.enqueue(request(op="insert", tenant="t1", seq=2,
                                relation="ev", values={"n": 5}))
        acks = session.drain()
        group.flush()
        assert [body["seq"] for _, body, _ in acks] == [1, 2]
        assert all(body["ok"] for _, body, _ in acks)
        assert session.applied_seq == 2
        assert session.position == 2
        # the event was absorbed into the accumulator and removed
        assert session.query("ev") == []
        [[_, _, values]] = session.query("acc")
        assert values == [5, 1]
        session.close()

    def test_drain_without_work_is_a_no_op(self, tmp_path):
        session, _ = make_session(tmp_path)
        assert session.drain() == []
        assert session.rounds == 0
        session.close()

    def test_deterministic_error_consumes_the_seq(self, tmp_path):
        """A failed op is exactly-once too: replay fails identically, so
        the seq advances and the error rides the ack."""
        session, _ = make_session(tmp_path)
        session.enqueue(request(op="insert", tenant="t1", seq=1,
                                relation="no-such-relation",
                                values={"n": 1}))
        session.enqueue(request(op="delete", tenant="t1", seq=2,
                                relation="ev", tid=999))
        acks = session.drain()
        assert [body["ok"] for _, body, _ in acks] == [False, False]
        assert all("error" in body for _, body, _ in acks)
        assert session.applied_seq == 2
        session.close()

    def test_modify_filters_to_schema_attributes(self, tmp_path):
        session, _ = make_session(tmp_path)
        session.enqueue(request(op="insert", tenant="t1", seq=1,
                                relation="ev", values={"n": 1}))
        acks = session.drain()
        tid = acks[0][1]["tid"]
        session.enqueue(request(op="modify", tenant="t1", seq=2,
                                relation="ev", tid=tid,
                                changes={"n": 9, "bogus": 1}))
        acks = session.drain()
        assert acks[0][1]["ok"], acks
        session.enqueue(request(op="modify", tenant="t1", seq=3,
                                relation="ev", tid=tid,
                                changes={"bogus": 1}))
        acks = session.drain()
        assert not acks[0][1]["ok"]
        assert session.applied_seq == 3
        session.close()


class TestGroupCommit:
    def test_one_flush_covers_every_tenant(self, tmp_path):
        """The cross-tenant fsync barrier: two sessions drain, their
        boundaries enlist, one flush makes both durable."""
        obs = Observability(collect_metrics=True)
        group = GroupCommit(obs)
        registry = SessionRegistry()
        pack = registry.pack_for(PROGRAM)
        sessions = [
            TenantSession.start(name, pack, str(tmp_path), group=group,
                                obs=obs)
            for name in ("t1", "t2")
        ]
        group.flush()  # the setup boundaries
        for i, session in enumerate(sessions):
            session.enqueue(request(op="insert", tenant=session.name,
                                    seq=1, relation="ev",
                                    values={"n": i + 1}))
            session.drain()
        assert group.pending == 2
        flushes_before = group.flushes
        assert group.flush() == 2
        assert group.flushes == flushes_before + 1
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.group_commits"] == group.flushes
        assert counters["serve.group_commit_members"] >= 4  # setup + round
        for session in sessions:
            session.close()

    def test_unflushed_boundaries_are_not_durable(self, tmp_path):
        """What the ack-after-flush rule protects against: before the
        flush the boundary may not be on disk yet."""
        group = GroupCommit()
        session, _ = make_session(tmp_path, group=group)
        group.flush()
        session.enqueue(request(op="insert", tenant="t1", seq=1,
                                relation="ev", values={"n": 1}))
        session.drain()
        assert group.pending == 1
        group.flush()
        chain = read_wal_chain(wal_path(tmp_path, "t1"))
        phases = [
            record.body.get("phase")
            for record in chain.records
            if record.kind == "boundary"
        ]
        assert "ops" in phases
        session.close()


class TestCheckpointCadence:
    def test_checkpoints_every_n_rounds(self, tmp_path):
        group = GroupCommit()
        session, _ = make_session(tmp_path, group=group,
                                  checkpoint_rounds=2)
        ckpt = checkpoint_path(tmp_path, "t1")
        for seq in (1, 2, 3):
            session.enqueue(request(op="insert", tenant="t1", seq=seq,
                                    relation="ev", values={"n": seq}))
            session.drain()
            group.flush()
            session.maybe_checkpoint()
        assert os.path.exists(ckpt)
        assert session._rounds_since_checkpoint == 1  # 3 rounds, cut at 2
        assert session.maybe_checkpoint(force=True)
        assert session._rounds_since_checkpoint == 0
        session.close()


class TestRecovery:
    def test_kill9_then_recover_restores_the_marks(self, tmp_path):
        group = GroupCommit()
        session, _ = make_session(tmp_path, group=group)
        group.flush()
        session.enqueue(request(op="insert", tenant="t1", seq=1,
                                relation="acc",
                                values={"total": 0, "count": 0}))
        session.enqueue(request(op="insert", tenant="t1", seq=2,
                                relation="ev", values={"n": 7}))
        session.drain()
        group.flush()
        reference = session.query("acc")
        session.run.abandon()  # kill -9: no close, no final sync

        registry = SessionRegistry()
        revived = TenantSession.recover_from_disk(
            "t1", str(tmp_path), registry, group=GroupCommit()
        )
        assert revived.recovered is True
        assert revived.applied_seq == 2
        assert revived.position == 2
        assert revived.query("acc") == reference
        assert revived.query("ev") == []
        revived.close()

    def test_recovered_session_shares_the_registry_pack(self, tmp_path):
        group = GroupCommit()
        session, _ = make_session(tmp_path, group=group)
        group.flush()
        session.run.abandon()
        registry = SessionRegistry()
        pre_interned = registry.pack_for(PROGRAM)
        revived = TenantSession.recover_from_disk(
            "t1", str(tmp_path), registry, group=GroupCommit()
        )
        assert revived.pack is pre_interned
        revived.close()


class TestStatsAndQuery:
    def test_stats_shape(self, tmp_path):
        session, _ = make_session(tmp_path)
        stats = session.stats()
        for key in ("tenant", "applied_seq", "position", "cycles", "fired",
                    "wm_size", "queue_depth", "recovered", "pack_crc",
                    "wal_last_seq", "wal_rotations", "halted"):
            assert key in stats, key
        assert stats["tenant"] == "t1"
        assert stats["recovered"] is False
        session.close()

    def test_query_unknown_relation_raises(self, tmp_path):
        session, _ = make_session(tmp_path)
        with pytest.raises(Exception):
            session.query("nope")
        session.close()
