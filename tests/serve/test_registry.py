"""Rule packs are interned per program text; sessions stay per tenant."""

from repro.lang.ast import Program
from repro.serve.registry import RulePack, SessionRegistry
from repro.workload.k8s import K8S_PROGRAM

COUNTER = """
(literalize Counter value limit)
(p count-up
    (Counter ^value <V> ^limit {<L> > <V>})
    -->
    (modify 1 ^value (compute <V> + 1)))
"""


class FakeSession:
    def __init__(self, name, pack):
        self.name = name
        self.pack = pack


class TestRulePack:
    def test_build_parses_and_analyzes_once(self):
        pack = RulePack.build(K8S_PROGRAM)
        assert isinstance(pack.program, Program)
        assert set(pack.analyses) == {
            rule.name for rule in pack.program.rules
        }
        assert pack.crc == RulePack.build(K8S_PROGRAM).crc

    def test_distinct_texts_get_distinct_crcs(self):
        assert RulePack.build(K8S_PROGRAM).crc != RulePack.build(COUNTER).crc


class TestPackSharing:
    def test_same_text_returns_the_same_object(self):
        """The tentpole property: N tenants on one program share one
        parse and one analysis table — ``pack_for`` interns by CRC."""
        registry = SessionRegistry()
        first = registry.pack_for(K8S_PROGRAM)
        second = registry.pack_for(K8S_PROGRAM)
        assert first is second
        assert first.analyses is second.analyses

    def test_different_texts_do_not_share(self):
        registry = SessionRegistry()
        assert registry.pack_for(K8S_PROGRAM) is not registry.pack_for(
            COUNTER
        )

    def test_packs_listed_in_crc_order(self):
        registry = SessionRegistry()
        registry.pack_for(K8S_PROGRAM)
        registry.pack_for(COUNTER)
        crcs = [pack.crc for pack in registry.packs]
        assert crcs == sorted(crcs)


class TestSessions:
    def test_add_get_names_remove(self):
        registry = SessionRegistry()
        pack = registry.pack_for(COUNTER)
        registry.add(FakeSession("zeta", pack))
        registry.add(FakeSession("alpha", pack))
        assert registry.names() == ["alpha", "zeta"]  # drain order
        assert registry.get("alpha").name == "alpha"
        assert pack.tenants == {"alpha", "zeta"}
        registry.remove("alpha")
        assert registry.get("alpha") is None
        assert pack.tenants == {"zeta"}
        registry.remove("alpha")  # idempotent

    def test_pack_tracks_its_tenants(self):
        registry = SessionRegistry()
        shared = registry.pack_for(K8S_PROGRAM)
        other = registry.pack_for(COUNTER)
        registry.add(FakeSession("a", shared))
        registry.add(FakeSession("b", shared))
        registry.add(FakeSession("c", other))
        assert shared.tenants == {"a", "b"}
        assert other.tenants == {"c"}
