"""Admission control: the decision is a pure function of queue depth."""

import pytest

from repro.obs import Observability
from repro.serve.backpressure import (
    ACCEPT,
    DEFER,
    SHED,
    AdmissionController,
    AdmissionPolicy,
)


class TestPolicy:
    def test_defaults_are_ordered(self):
        policy = AdmissionPolicy()
        assert 0 < policy.defer_depth <= policy.shed_depth

    @pytest.mark.parametrize(
        "defer_depth,shed_depth", [(0, 10), (-1, 10), (20, 10)]
    )
    def test_misordered_thresholds_rejected(self, defer_depth, shed_depth):
        with pytest.raises(ValueError):
            AdmissionPolicy(defer_depth=defer_depth, shed_depth=shed_depth)


class TestDecisions:
    @pytest.fixture
    def controller(self):
        return AdmissionController(AdmissionPolicy(defer_depth=2,
                                                   shed_depth=4))

    def test_depth_bands(self, controller):
        assert controller.admit(0) == ACCEPT
        assert controller.admit(1) == ACCEPT
        assert controller.admit(2) == DEFER
        assert controller.admit(3) == DEFER
        assert controller.admit(4) == SHED
        assert controller.admit(400) == SHED

    def test_decisions_are_deterministic(self, controller):
        """Same depth, same answer — the metrics-baseline prerequisite."""
        depths = [0, 3, 4, 1, 2, 9, 0]
        first = [controller.admit(d) for d in depths]
        again = [controller.admit(d) for d in depths]
        assert first == again

    def test_counters_keep_score(self, controller):
        for depth in [0, 1, 2, 4, 4, 0]:
            controller.admit(depth)
        assert controller.accepted == 3
        assert controller.deferred == 1
        assert controller.shed == 2

    def test_metrics_mirror_the_counters(self):
        obs = Observability(collect_metrics=True)
        controller = AdmissionController(
            AdmissionPolicy(defer_depth=1, shed_depth=2), obs=obs
        )
        for depth in [0, 1, 2, 2]:
            controller.admit(depth)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.admission_accept"] == 1
        assert counters["serve.admission_defer"] == 1
        assert counters["serve.admission_shed"] == 2

    def test_no_observability_is_fine(self):
        controller = AdmissionController()
        assert controller.admit(0) == ACCEPT


class TestTenantQuotas:
    @pytest.fixture
    def controller(self):
        return AdmissionController(
            AdmissionPolicy(defer_depth=4, shed_depth=8),
            tenant_policies={
                "noisy": AdmissionPolicy(defer_depth=1, shed_depth=2),
                "vip": AdmissionPolicy(defer_depth=16, shed_depth=32),
            },
        )

    def test_policy_for_falls_back_to_global(self, controller):
        assert controller.policy_for(None) == controller.policy
        assert controller.policy_for("other") == controller.policy
        assert controller.policy_for("noisy").shed_depth == 2

    def test_overrides_bind_per_tenant(self, controller):
        """Same depth, different tenants, different fates."""
        assert controller.admit(2, tenant="noisy") == SHED
        assert controller.admit(2, tenant="vip") == ACCEPT
        assert controller.admit(2, tenant="other") == ACCEPT
        assert controller.admit(5, tenant="other") == DEFER

    def test_decisions_stay_deterministic_per_tenant(self, controller):
        """(tenant, depth) is the whole input — the per-tenant counters
        are baseline-gated like the global ones."""
        probes = [("noisy", 0), ("noisy", 1), ("vip", 20), ("other", 8)]
        first = [controller.admit(d, tenant=t) for t, d in probes]
        again = [controller.admit(d, tenant=t) for t, d in probes]
        assert first == again == [ACCEPT, DEFER, DEFER, SHED]

    def test_tenant_labelled_metrics(self):
        obs = Observability(collect_metrics=True)
        controller = AdmissionController(
            AdmissionPolicy(defer_depth=4, shed_depth=8),
            obs=obs,
            tenant_policies={"noisy": AdmissionPolicy(defer_depth=1,
                                                      shed_depth=2)},
        )
        controller.admit(0, tenant="noisy")
        controller.admit(2, tenant="noisy")
        controller.admit(2, tenant="calm")
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.admission_accept[noisy]"] == 1
        assert counters["serve.admission_shed[noisy]"] == 1
        assert counters["serve.admission_accept[calm]"] == 1
        # the global counters still aggregate across tenants
        assert counters["serve.admission_accept"] == 2
        assert counters["serve.admission_shed"] == 1

    def test_anonymous_ops_skip_tenant_labels(self):
        obs = Observability(collect_metrics=True)
        controller = AdmissionController(obs=obs)
        controller.admit(0)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.admission_accept"] == 1
        assert not any("[" in key for key in counters)
