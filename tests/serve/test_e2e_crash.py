"""The production-shaped e2e: a real ``repro serve`` subprocess, a real
``kill -9``, and bit-equivalence against an uninterrupted reference.

Two tenants stream the accumulator workload into one server process.
The crash run is SIGKILLed mid-stream (after an acked prefix), restarted
on the same data directory, and the clients resume from their recovered
``applied_seq`` — re-sending one acked op to prove exactly-once dedup.
At the end, every comparable piece of per-tenant state (applied seq,
log position, cycle count, firings, WM size, output, and the full
``acc`` relation with tids and timetags) must equal the reference run
that was never killed.  Parametrized over both storage backends.
"""

import pytest

from tests.serve.conftest import (
    ABSORB_PROGRAM,
    Client,
    graceful_stop,
    kill9,
    spawn_server,
)

TENANTS = ("t1", "t2")
EVENTS = 12          # events per tenant after the accumulator insert
KILL_AFTER = 5       # acked ops per tenant before SIGKILL

#: Stats keys that must be bit-identical between the crashed-and-
#: recovered run and the uninterrupted reference.
COMPARED = (
    "applied_seq", "position", "cycles", "fired", "wm_size", "output",
    "halted",
)


def ops_for(tenant):
    """The full op stream for one tenant; values differ per tenant."""
    scale = 1 if tenant == "t1" else 100
    ops = [("acc", {"total": 0, "count": 0})]
    ops += [("ev", {"n": scale * (i + 1)}) for i in range(EVENTS)]
    return [
        {"op": "insert", "tenant": tenant, "seq": seq,
         "relation": relation, "values": values}
        for seq, (relation, values) in enumerate(ops, start=1)
    ]


def attach_all(client, backend):
    for tenant in TENANTS:
        reply = client.call(op="attach", tenant=tenant,
                            program=ABSORB_PROGRAM,
                            config={"backend": backend})
        assert reply["ok"], reply


def stream(client, streams, start, stop):
    """Interleave ops[start:stop] of every tenant, awaiting each ack."""
    for index in range(start, stop):
        for tenant in TENANTS:
            reply = client.call(**streams[tenant][index])
            assert reply["ok"] and reply["durable"], reply


def snapshot(client):
    """Comparable end-state per tenant: stats subset + the acc rows."""
    state = {}
    for tenant in TENANTS:
        stats = client.call(op="stats", tenant=tenant)
        state[tenant] = {
            **{key: stats[key] for key in COMPARED},
            "acc": client.call(op="query", tenant=tenant,
                               relation="acc")["rows"],
            "ev": client.call(op="query", tenant=tenant,
                              relation="ev")["rows"],
        }
    return state


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    return request.param


def reference_state(tmp_path, backend):
    """The uninterrupted run both crash variants are compared against."""
    data_dir = tmp_path / f"ref-{backend}"
    proc, host, port = spawn_server(data_dir)
    with Client(host, port) as client:
        attach_all(client, backend)
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}
        stream(client, streams, 0, EVENTS + 1)
        state = snapshot(client)
        graceful_stop(proc, client)
    return state


class TestKill9Equivalence:
    def test_kill9_restart_resume_matches_uninterrupted(self, tmp_path,
                                                        backend):
        reference = reference_state(tmp_path, backend)
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}

        data_dir = tmp_path / f"crash-{backend}"
        proc, host, port = spawn_server(data_dir)
        with Client(host, port) as client:
            attach_all(client, backend)
            stream(client, streams, 0, KILL_AFTER)
        kill9(proc)

        proc, host, port = spawn_server(data_dir)
        with Client(host, port) as client:
            for tenant in TENANTS:
                reply = client.call(op="attach", tenant=tenant,
                                    program=ABSORB_PROGRAM)
                assert reply["existing"] and reply["recovered"], reply
                # nothing acked was lost: the recovered high-water mark
                # is exactly the acked prefix
                assert reply["applied_seq"] == KILL_AFTER, reply
                # exactly-once: re-sending an acked op dedups cleanly
                dup = client.call(**streams[tenant][KILL_AFTER - 1])
                assert dup["ok"] and dup["dup"] and dup["durable"], dup
            stream(client, streams, KILL_AFTER, EVENTS + 1)
            recovered = snapshot(client)
            graceful_stop(proc, client)

        assert recovered == reference

    def test_kill9_before_any_checkpoint_still_recovers(self, tmp_path,
                                                        backend):
        """Pure log replay: a huge checkpoint cadence guarantees no
        checkpoint exists when the process dies."""
        reference = reference_state(tmp_path, backend)
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}

        data_dir = tmp_path / f"nockpt-{backend}"
        proc, host, port = spawn_server(
            data_dir, "--checkpoint-rounds", "100000"
        )
        with Client(host, port) as client:
            attach_all(client, backend)
            stream(client, streams, 0, KILL_AFTER)
        kill9(proc)
        assert not (data_dir / "t1.ckpt").exists()

        proc, host, port = spawn_server(
            data_dir, "--checkpoint-rounds", "100000"
        )
        with Client(host, port) as client:
            stream(client, streams, KILL_AFTER, EVENTS + 1)
            recovered = snapshot(client)
            graceful_stop(proc, client)
        assert recovered == reference


class TestKill9Isolation:
    def test_crash_recovery_keeps_tenants_apart(self, tmp_path, backend):
        """After kill -9 and restart, each tenant sees exactly its own
        rows — recovery replays per-tenant logs, never a merged one."""
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}
        data_dir = tmp_path / f"iso-{backend}"
        proc, host, port = spawn_server(data_dir)
        with Client(host, port) as client:
            attach_all(client, backend)
            stream(client, streams, 0, EVENTS + 1)
        kill9(proc)

        proc, host, port = spawn_server(data_dir)
        with Client(host, port) as client:
            status = client.call(op="status")
            assert status["recovered_tenants"] == list(TENANTS)
            totals = {}
            for tenant in TENANTS:
                [row] = client.call(op="query", tenant=tenant,
                                    relation="acc")["rows"]
                totals[tenant] = row[2]
            expected = sum(range(1, EVENTS + 1))
            assert totals["t1"] == [expected, EVENTS]
            assert totals["t2"] == [100 * expected, EVENTS]
            graceful_stop(proc, client)


class TestWireLog:
    def test_kill9_leaves_only_replayable_tenant_files(self, tmp_path,
                                                       backend):
        data_dir = tmp_path / f"files-{backend}"
        proc, host, port = spawn_server(data_dir)
        with Client(host, port) as client:
            attach_all(client, backend)
            streams = {tenant: ops_for(tenant) for tenant in TENANTS}
            stream(client, streams, 0, 3)
        kill9(proc)
        names = sorted(p.name for p in data_dir.iterdir())
        for name in names:
            # The fencing-epoch marker is the one non-tenant artifact.
            assert name == "EPOCH" or name.split(".")[0] in TENANTS, names
        assert "t1.wal" in names and "t2.wal" in names
