"""Shared serve-test machinery: a real server subprocess + line client.

The e2e suites spawn ``repro serve`` exactly as an operator would
(``python -m repro.cli serve --data-dir ...``), parse the announce line
for the bound port, and speak the newline-delimited JSON protocol over a
blocking socket.  Crash tests SIGKILL the subprocess — no atexit, no
flush, the real ``kill -9`` — and restart it on the same data directory.
"""

import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

#: Tiny accumulator pack used by the crash-equivalence e2e: every event
#: is folded into the running total and consumed, so the fixed point is
#: a pure function of the acked stream — ideal for bit-equivalence.
ABSORB_PROGRAM = """
(literalize ev n)
(literalize acc total count)
(p absorb
    (ev ^n <n>)
    (acc ^total <t> ^count <c>)
    -->
    (modify 2 ^total (compute <t> + <n>) ^count (compute <c> + 1))
    (remove 1))
"""


def spawn_server(data_dir, *extra_args, timeout=30.0):
    """Start ``repro serve`` on *data_dir*; returns (proc, host, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--data-dir", str(data_dir), *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if not line.startswith("serving on "):
        stderr = ""
        if proc.poll() is not None:
            stderr = proc.stderr.read()
        proc.kill()
        raise AssertionError(
            f"server failed to announce: stdout={line!r} stderr={stderr!r}"
        )
    host, _, port = line.strip().rpartition(" ")[2].rpartition(":")
    return proc, host, int(port)


def kill9(proc):
    """The real thing: SIGKILL, no cleanup handlers run."""
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()


def graceful_stop(proc, client=None):
    """Protocol shutdown (when a client is given) or SIGTERM; waits."""
    if client is not None:
        try:
            client.call(op="shutdown")
        except (ConnectionError, OSError):
            pass
    else:
        proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()


class Client:
    """A blocking line-protocol client for one connection."""

    def __init__(self, host, port, timeout=30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rwb")

    def call(self, **body):
        self.file.write(json.dumps(body).encode("utf-8") + b"\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
