"""RuleServer in-process: attach, routing, dedup, backpressure,
group-commit rounds, restart recovery — one event loop per test."""

import asyncio
import json

import pytest

from repro.obs import Observability
from repro.serve.backpressure import AdmissionController, AdmissionPolicy
from repro.serve.protocol import parse_request
from repro.serve.server import RuleServer, scan_tenants

PROGRAM = """
(literalize ev n)
(literalize acc total count)
(p absorb
    (ev ^n <n>)
    (acc ^total <t> ^count <c>)
    -->
    (modify 2 ^total (compute <t> + <n>) ^count (compute <c> + 1))
    (remove 1))
"""

OTHER_PROGRAM = """
(literalize ev n)
(p drop (ev ^n <n>) --> (remove 1))
"""


def run(coro):
    return asyncio.run(coro)


async def connect(server):
    reader, writer = await asyncio.open_connection(server.host, server.port)

    async def call(**body):
        writer.write(json.dumps(body).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    return call, writer


async def started_server(tmp_path, **kwargs):
    server = RuleServer(str(tmp_path), **kwargs)
    await server.start()
    return server


class TestScanTenants:
    def test_finds_wal_segments_and_sidecars(self, tmp_path):
        for name in (
            "t1.wal",
            "t2.wal.00000001-00000009.seg",  # active lost: still a tenant
            "t3.wal.walmeta",
            "t1.ckpt",  # checkpoint alone never defines a tenant
            "notes.txt",
            "bad name.wal",
        ):
            (tmp_path / name).write_text("")
        assert scan_tenants(str(tmp_path)) == ["t1", "t2", "t3"]


class TestRequestPaths:
    def test_ping_attach_insert_query_stats_status(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            assert (await call(op="ping"))["pong"] is True

            reply = await call(op="attach", tenant="t1", program=PROGRAM)
            assert reply["ok"] and reply["existing"] is False

            reply = await call(op="insert", tenant="t1", seq=1,
                               relation="acc",
                               values={"total": 0, "count": 0})
            assert reply["ok"] and reply["durable"] is True
            reply = await call(op="insert", tenant="t1", seq=2,
                               relation="ev", values={"n": 4})
            assert reply["ok"] and reply["durable"] is True

            reply = await call(op="query", tenant="t1", relation="acc")
            assert [row[2] for row in reply["rows"]] == [[4, 1]]

            reply = await call(op="stats", tenant="t1")
            assert reply["applied_seq"] == 2

            status = await call(op="status")
            assert list(status["tenants"]) == ["t1"]
            assert status["rounds"] >= 1
            assert status["group_commits"] >= 1

            writer.close()
            await server.shutdown()

        run(scenario())

    def test_mutation_before_attach_is_refused(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            reply = await call(op="insert", tenant="ghost", seq=1,
                               relation="ev", values={"n": 1})
            assert reply["ok"] is False
            assert "attach first" in reply["error"]
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_malformed_line_gets_an_error_not_a_hangup(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            # the connection survives for the next request
            writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
            await writer.drain()
            assert json.loads(await reader.readline())["pong"] is True
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_duplicate_seq_acked_without_reapplying(self, tmp_path):
        async def scenario():
            obs = Observability(collect_metrics=True)
            server = await started_server(tmp_path, obs=obs)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            await call(op="insert", tenant="t1", seq=1, relation="ev",
                       values={"n": 1})
            reply = await call(op="insert", tenant="t1", seq=1,
                               relation="ev", values={"n": 1})
            assert reply["dup"] is True and reply["durable"] is True
            rows = (await call(op="query", tenant="t1",
                               relation="ev"))["rows"]
            assert len(rows) == 1  # applied once, acked twice
            counters = obs.metrics.snapshot()["counters"]
            assert counters["serve.dup_acks"] == 1
            writer.close()
            await server.shutdown()

        run(scenario())


class TestAttachSemantics:
    def test_reattach_same_program_reports_existing(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            first = await call(op="attach", tenant="t1", program=PROGRAM)
            second = await call(op="attach", tenant="t1", program=PROGRAM)
            assert second["existing"] is True
            assert second["pack_crc"] == first["pack_crc"]
            third = await call(op="attach", tenant="t1")  # programless ping
            assert third["ok"] is True
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_reattach_with_different_program_refused(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            reply = await call(op="attach", tenant="t1",
                               program=OTHER_PROGRAM)
            assert reply["ok"] is False
            assert "different" in reply["error"]
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_new_tenant_without_program_refused(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            reply = await call(op="attach", tenant="t1")
            assert reply["ok"] is False
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_unparsable_program_refused_cleanly(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            reply = await call(op="attach", tenant="t1",
                               program="(p broken")
            assert reply["ok"] is False
            assert server.registry.get("t1") is None
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_two_tenants_share_one_pack(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            await call(op="attach", tenant="t2", program=PROGRAM)
            status = await call(op="status")
            [pack] = status["packs"]
            assert pack["tenants"] == ["t1", "t2"]
            s1, s2 = server.registry.get("t1"), server.registry.get("t2")
            assert s1.pack is s2.pack
            assert s1.system is not s2.system
            writer.close()
            await server.shutdown()

        run(scenario())


class TestTenantIsolation:
    def test_mutations_never_leak_across_tenants(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            await call(op="attach", tenant="t2", program=PROGRAM)
            for tenant, n in (("t1", 10), ("t2", 20)):
                await call(op="insert", tenant=tenant, seq=1,
                           relation="acc", values={"total": 0, "count": 0})
                await call(op="insert", tenant=tenant, seq=2,
                           relation="ev", values={"n": n})
            r1 = await call(op="query", tenant="t1", relation="acc")
            r2 = await call(op="query", tenant="t2", relation="acc")
            assert [row[2] for row in r1["rows"]] == [[10, 1]]
            assert [row[2] for row in r2["rows"]] == [[20, 1]]
            # seq spaces are independent: t2's seq 2 did not dup t1's
            s1 = await call(op="stats", tenant="t1")
            s2 = await call(op="stats", tenant="t2")
            assert s1["applied_seq"] == s2["applied_seq"] == 2
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_each_tenant_gets_its_own_wal(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            await call(op="attach", tenant="t2", program=PROGRAM)
            writer.close()
            await server.shutdown()

        run(scenario())
        assert (tmp_path / "t1.wal").exists()
        assert (tmp_path / "t2.wal").exists()
        assert scan_tenants(str(tmp_path)) == ["t1", "t2"]


class TestBackpressure:
    def test_shed_when_the_queue_is_full(self, tmp_path):
        async def scenario():
            admission = AdmissionController(
                AdmissionPolicy(defer_depth=1, shed_depth=2)
            )
            server = await started_server(tmp_path, admission=admission)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            session = server.registry.get("t1")
            # wedge the queue past the shed threshold without draining
            for seq in (1, 2):
                session.enqueue(parse_request(json.dumps(
                    {"op": "insert", "tenant": "t1", "seq": seq,
                     "relation": "ev", "values": {"n": seq}}
                )))
            reply = await call(op="insert", tenant="t1", seq=3,
                               relation="ev", values={"n": 3})
            assert reply["ok"] is False and reply["shed"] is True
            assert "retry" in reply["error"]
            assert admission.shed == 1
            # the shed op was never queued; the wedged two still are
            assert session.depth == 2
            writer.close()
            await server.shutdown()

        run(scenario())

    def test_defer_waits_for_the_drain_then_applies(self, tmp_path):
        async def scenario():
            admission = AdmissionController(
                AdmissionPolicy(defer_depth=1, shed_depth=100)
            )
            server = await started_server(tmp_path, admission=admission)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            session = server.registry.get("t1")
            session.enqueue(parse_request(json.dumps(
                {"op": "insert", "tenant": "t1", "seq": 1,
                 "relation": "ev", "values": {"n": 1}}
            )))
            server._work.set()  # the queued op drains this round
            # dispatch directly (no network awaits in between) so the
            # depth-1 queue is still wedged when admission looks at it
            reply = await server._dispatch(parse_request(json.dumps(
                {"op": "insert", "tenant": "t1", "seq": 2,
                 "relation": "ev", "values": {"n": 2}}
            )))
            assert reply["ok"] is True and reply["durable"] is True
            assert admission.deferred == 1
            assert session.applied_seq == 2
            writer.close()
            await server.shutdown()

        run(scenario())


class TestRestartRecovery:
    def test_graceful_restart_recovers_every_tenant(self, tmp_path):
        async def first_life():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            await call(op="attach", tenant="t2", program=OTHER_PROGRAM)
            await call(op="insert", tenant="t1", seq=1, relation="acc",
                       values={"total": 0, "count": 0})
            await call(op="insert", tenant="t1", seq=2, relation="ev",
                       values={"n": 6})
            await call(op="insert", tenant="t2", seq=1, relation="ev",
                       values={"n": 1})
            writer.close()
            await server.shutdown()

        async def second_life():
            server = await started_server(tmp_path)
            assert server.recovered_tenants == ["t1", "t2"]
            call, writer = await connect(server)
            reply = await call(op="attach", tenant="t1", program=PROGRAM)
            assert reply["existing"] is True and reply["recovered"] is True
            assert reply["applied_seq"] == 2
            rows = (await call(op="query", tenant="t1",
                               relation="acc"))["rows"]
            assert [row[2] for row in rows] == [[6, 1]]
            # recovered tenants intern packs exactly like fresh ones
            assert len(server.registry.packs) == 2
            dup = await call(op="insert", tenant="t1", seq=2,
                             relation="ev", values={"n": 6})
            assert dup["dup"] is True
            fresh = await call(op="insert", tenant="t1", seq=3,
                               relation="ev", values={"n": 1})
            assert fresh["ok"] is True and "dup" not in fresh
            writer.close()
            await server.shutdown()

        run(first_life())
        run(second_life())

    def test_shutdown_cuts_a_final_checkpoint(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path, checkpoint_rounds=10_000)
            call, writer = await connect(server)
            await call(op="attach", tenant="t1", program=PROGRAM)
            await call(op="insert", tenant="t1", seq=1, relation="ev",
                       values={"n": 1})
            writer.close()
            await server.shutdown()

        run(scenario())
        assert (tmp_path / "t1.ckpt").exists()

    def test_shutdown_op_stops_serve_forever(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            call, writer = await connect(server)
            reply = await call(op="shutdown")
            assert reply["ok"] is True
            await asyncio.wait_for(server.serve_forever(), timeout=10)
            writer.close()
            await server.shutdown()

        run(scenario())
