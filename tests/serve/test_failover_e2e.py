"""The failover e2e: a real primary/warm-standby pair, a real ``kill -9``
of the primary mid-stream, and bit-equivalence after promotion.

Two tenants stream the accumulator workload into a primary whose WAL is
shipped live to a ``--follow`` standby.  The primary is SIGKILLed while
ops are in flight, the standby is promoted over the wire (``promote``),
and the clients resume against it — re-sending one acked op to prove
exactly-once dedup survives the epoch change.  The promoted run's final
per-tenant state must equal an uninterrupted reference run bit for bit:
no acked client op may be lost across the failover.  The restarted old
primary is then offered a handshake at the promoted epoch and must be
fenced, naming its stale epoch in the error.  Parametrized over both
storage backends.
"""

import time

import pytest

from tests.serve.conftest import (
    ABSORB_PROGRAM,
    Client,
    graceful_stop,
    kill9,
    spawn_server,
)

TENANTS = ("t1", "t2")
EVENTS = 12          # events per tenant after the accumulator insert
PRE_FOLLOW = 4       # acked ops per tenant before the standby attaches
KILL_AFTER = 8       # acked ops per tenant before the primary dies

#: Stats keys that must be bit-identical between the promoted standby
#: and the uninterrupted reference.
COMPARED = (
    "applied_seq", "position", "cycles", "fired", "wm_size", "output",
    "halted",
)


def ops_for(tenant):
    scale = 1 if tenant == "t1" else 100
    ops = [("acc", {"total": 0, "count": 0})]
    ops += [("ev", {"n": scale * (i + 1)}) for i in range(EVENTS)]
    return [
        {"op": "insert", "tenant": tenant, "seq": seq,
         "relation": relation, "values": values}
        for seq, (relation, values) in enumerate(ops, start=1)
    ]


def attach_all(client, backend):
    for tenant in TENANTS:
        reply = client.call(op="attach", tenant=tenant,
                            program=ABSORB_PROGRAM,
                            config={"backend": backend})
        assert reply["ok"], reply


def stream(client, streams, start, stop, epoch=None):
    for index in range(start, stop):
        for tenant in TENANTS:
            reply = client.call(**streams[tenant][index])
            assert reply["ok"] and reply["durable"], reply
            if epoch is not None:
                assert reply["epoch"] == epoch, reply


def snapshot(client):
    state = {}
    for tenant in TENANTS:
        stats = client.call(op="stats", tenant=tenant)
        state[tenant] = {
            **{key: stats[key] for key in COMPARED},
            "acc": client.call(op="query", tenant=tenant,
                               relation="acc")["rows"],
            "ev": client.call(op="query", tenant=tenant,
                              relation="ev")["rows"],
        }
    return state


def wait_attached(client, timeout=10.0):
    """Poll the primary until its shipper reports a live follower."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.call(op="status")
        if status["replication"]["follower_attached"]:
            return status
        time.sleep(0.05)
    raise AssertionError("follower never attached")


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    return request.param


def reference_state(tmp_path, backend):
    data_dir = tmp_path / f"ref-{backend}"
    proc, host, port = spawn_server(data_dir)
    with Client(host, port) as client:
        attach_all(client, backend)
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}
        stream(client, streams, 0, EVENTS + 1)
        state = snapshot(client)
        graceful_stop(proc, client)
    return state


class TestFailoverEquivalence:
    def test_kill9_promote_standby_matches_uninterrupted(self, tmp_path,
                                                         backend):
        reference = reference_state(tmp_path, backend)
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}

        primary_dir = tmp_path / f"primary-{backend}"
        standby_dir = tmp_path / f"standby-{backend}"
        pproc, phost, pport = spawn_server(primary_dir)
        client = Client(phost, pport)
        attach_all(client, backend)
        # An acked prefix before the standby exists: the handshake must
        # bootstrap it from snapshot frames, not just the live stream.
        stream(client, streams, 0, PRE_FOLLOW, epoch=1)

        fproc, fhost, fport = spawn_server(
            standby_dir, "--follow", f"{phost}:{pport}",
            "--takeover-deadline", "0",
        )
        wait_attached(client)
        # Mid-stream: these ops ship live under semi-sync acks.
        stream(client, streams, PRE_FOLLOW, KILL_AFTER, epoch=1)
        kill9(pproc)
        client.close()

        standby = Client(fhost, fport)
        promoted = standby.call(op="promote")
        assert promoted["ok"] and promoted["epoch"] == 2, promoted
        assert sorted(promoted["tenants"]) == list(TENANTS), promoted

        for tenant in TENANTS:
            # Nothing acked was lost across the failover.
            stats = standby.call(op="stats", tenant=tenant)
            assert stats["applied_seq"] == KILL_AFTER, stats
            # Exactly-once survives the epoch change.
            dup = standby.call(**streams[tenant][KILL_AFTER - 1])
            assert dup["ok"] and dup["dup"] and dup["durable"], dup
            assert dup["epoch"] == 2, dup
        stream(standby, streams, KILL_AFTER, EVENTS + 1, epoch=2)
        recovered = snapshot(standby)
        assert recovered == reference

        # The restarted old primary is fenced: its handshake at the
        # promoted epoch is refused, naming its own stale epoch.
        p2proc, p2host, p2port = spawn_server(primary_dir)
        with Client(p2host, p2port) as stale:
            fenced = stale.call(op="follow", epoch=promoted["epoch"],
                                have={})
            assert not fenced["ok"] and fenced["fenced"], fenced
            assert fenced["epoch"] == 1, fenced
            assert "stale epoch 1" in fenced["error"], fenced
        # A follow handshake ends its connection; stop over a fresh one.
        with Client(p2host, p2port) as fresh:
            graceful_stop(p2proc, fresh)
        graceful_stop(fproc, standby)
        standby.close()


class TestAutomaticTakeover:
    def test_standby_promotes_itself_past_deadline(self, tmp_path):
        """With a short takeover deadline, the standby notices the dead
        primary and promotes itself without an operator."""
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}
        primary_dir = tmp_path / "auto-primary"
        standby_dir = tmp_path / "auto-standby"
        pproc, phost, pport = spawn_server(primary_dir)
        client = Client(phost, pport)
        attach_all(client, "memory")
        stream(client, streams, 0, PRE_FOLLOW)

        fproc, fhost, fport = spawn_server(
            standby_dir, "--follow", f"{phost}:{pport}",
            "--takeover-deadline", "0.5",
        )
        wait_attached(client)
        stream(client, streams, PRE_FOLLOW, KILL_AFTER)
        kill9(pproc)
        client.close()

        standby = Client(fhost, fport)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            status = standby.call(op="status")
            if status["role"] == "primary":
                break
            time.sleep(0.1)
        else:
            raise AssertionError(f"standby never took over: {status}")
        assert status["epoch"] == 2, status
        # The self-promoted standby accepts writes at the new epoch.
        stream(standby, streams, KILL_AFTER, EVENTS + 1, epoch=2)
        for tenant in TENANTS:
            stats = standby.call(op="stats", tenant=tenant)
            assert stats["applied_seq"] == EVENTS + 1, stats
        graceful_stop(fproc, standby)
        standby.close()


class TestReadReplica:
    def test_follower_serves_reads_refuses_writes(self, tmp_path):
        streams = {tenant: ops_for(tenant) for tenant in TENANTS}
        primary_dir = tmp_path / "rr-primary"
        standby_dir = tmp_path / "rr-standby"
        pproc, phost, pport = spawn_server(primary_dir)
        client = Client(phost, pport)
        attach_all(client, "memory")
        fproc, fhost, fport = spawn_server(
            standby_dir, "--follow", f"{phost}:{pport}",
            "--takeover-deadline", "0",
        )
        wait_attached(client)
        stream(client, streams, 0, KILL_AFTER)

        with Client(fhost, fport) as standby:
            status = standby.call(op="status")
            assert status["role"] == "follower", status
            assert status["replication"]["lag_records"] == 0, status
            # Reads come straight off the replicated working memory.
            for tenant in TENANTS:
                scale = 1 if tenant == "t1" else 100
                [row] = standby.call(op="query", tenant=tenant,
                                     relation="acc")["rows"]
                expected = scale * sum(range(1, KILL_AFTER))
                assert row[2] == [expected, KILL_AFTER - 1], row
                stats = standby.call(op="stats", tenant=tenant)
                assert stats["applied_seq"] == KILL_AFTER, stats
            # Writes are refused with a pointer at the primary.
            refused = standby.call(op="insert", tenant="t1", seq=99,
                                   relation="ev", values={"n": 1})
            assert not refused["ok"] and refused["follower"], refused
            assert "read-only follower" in refused["error"], refused
            graceful_stop(fproc, standby)
        graceful_stop(pproc, client)
        client.close()
