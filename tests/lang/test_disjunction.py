"""Tests for OPS5 value disjunctions ``<< a b c >>``."""

import pytest

from repro.engine import ProductionSystem, WorkingMemory
from repro.errors import ParseError, RuleError
from repro.instrument import Counters
from repro.lang import analyze_program, format_rule, parse_program, parse_rule
from repro.lang.ast import DisjunctionTest
from repro.match import STRATEGIES
from repro.storage.predicate import Membership


class TestParsing:
    def test_disjunction_parses(self):
        rule = parse_rule(
            "(p r (Emp ^dept << Toy Shoe 7 nil >>) --> (halt))"
        )
        (test,) = rule.condition_elements[0].tests
        assert test == DisjunctionTest("dept", ("Toy", "Shoe", 7, None))

    def test_empty_disjunction_rejected(self):
        with pytest.raises(ParseError, match="empty"):
            parse_rule("(p r (Emp ^dept << >>) --> (halt))")

    def test_variable_inside_disjunction_rejected(self):
        with pytest.raises(ParseError, match="constants"):
            parse_rule("(p r (Emp ^dept << <X> >>) --> (halt))")

    def test_inside_brace_conjunction(self):
        rule = parse_rule(
            "(p r (Emp ^dept {<< Toy Shoe >> <D>}) --> (halt))"
        )
        tests = rule.condition_elements[0].tests
        assert isinstance(tests[0], DisjunctionTest)
        assert tests[1].operand.name == "D"

    def test_round_trip(self):
        rule = parse_rule(
            "(p r (Emp ^dept << Toy |odd name| 3 >>) --> (remove 1))"
        )
        assert parse_rule(format_rule(rule)) == rule


class TestSemantics:
    def test_membership_predicate_in_analysis(self):
        program = parse_program(
            "(literalize Emp dept)"
            "(p r (Emp ^dept << Toy Shoe >>) --> (remove 1))"
        )
        analyses = analyze_program(program.rules, program.schemas)
        predicate = analyses["r"].conditions[0].constant_predicate
        assert predicate == Membership("dept", ("Toy", "Shoe"))

    def test_all_strategies_agree(self):
        source = """
        (literalize Emp name dept n)
        (p watched (Emp ^dept << Toy Shoe >> ^name <N>) --> (remove 1))
        (p range (Emp ^n << 1 2 3 >> ^dept <D>) --> (remove 1))
        """
        program = parse_program(source)
        analyses = analyze_program(program.rules, program.schemas)
        wm = WorkingMemory(program.schemas)
        strategies = [
            STRATEGIES[name](wm, analyses, counters=Counters())
            for name in sorted(STRATEGIES)
        ]
        wm.insert("Emp", ("Ann", "Toy", 1))
        wm.insert("Emp", ("Bob", "Hat", 9))
        wm.insert("Emp", ("Cid", "Shoe", 2))
        reference = strategies[0].conflict_set_keys()
        assert len(reference) == 4  # Ann x2 rules, Cid x2 rules
        for strategy in strategies[1:]:
            assert strategy.conflict_set_keys() == reference

    def test_engine_fires_on_disjunction(self):
        system = ProductionSystem(
            """
            (literalize T v)
            (literalize Hit v)
            (p pick (T ^v << a c >>) --> (remove 1) (make Hit ^v 1))
            """
        )
        for value in ("a", "b", "c"):
            system.insert("T", (value,))
        system.run()
        assert len(list(system.wm.tuples("Hit"))) == 2
        assert [t.values[0] for t in system.wm.tuples("T")] == ["b"]

    def test_disjunction_on_unknown_attribute_rejected(self):
        program = parse_program(
            "(literalize Emp dept)"
            "(p r (Emp ^shoe << a >>) --> (remove 1))"
        )
        with pytest.raises(RuleError, match="no attribute"):
            analyze_program(program.rules, program.schemas)

    def test_numeric_equality_semantics(self):
        system = ProductionSystem(
            """
            (literalize T v)
            (p pick (T ^v << 1 2 >>) --> (remove 1))
            """
        )
        system.insert("T", (1.0,))  # 1.0 == 1 under OPS5 equality
        system.run()
        assert list(system.wm.tuples("T")) == []
