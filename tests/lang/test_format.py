"""Formatter tests: readable output plus parse/format round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse_program, parse_rule
from repro.lang.ast import (
    AttributeTest,
    ComputeExpr,
    ConditionElement,
    Constant,
    ConstExpr,
    MakeAction,
    Program,
    Rule,
    Variable,
    VarExpr,
)
from repro.lang.format import (
    format_program,
    format_rule,
    format_value,
)
from repro.storage.schema import RelationSchema


class TestFormatValue:
    def test_plain_symbol_unquoted(self):
        assert format_value("Mike") == "Mike"

    def test_nil(self):
        assert format_value(None) == "nil"

    def test_numbers(self):
        assert format_value(7) == "7"
        assert format_value(-2.5) == "-2.5"

    def test_reserved_and_odd_strings_quoted(self):
        assert format_value("*") == "|*|"
        assert format_value("nil") == "|nil|"
        assert format_value("hello world") == "|hello world|"
        assert format_value("12") == "|12|"
        assert format_value("-x") == "|-x|"
        assert format_value("") == "||"


class TestFormatRule:
    def test_example_renders_and_reparses(self, example3_source):
        program = parse_program(example3_source)
        for rule in program.rules:
            text = format_rule(rule)
            assert parse_rule(text) == rule

    def test_salience_rendered(self):
        rule = parse_rule("(p r (salience 3) (Emp ^a 1) --> (halt))")
        text = format_rule(rule)
        assert "(salience 3)" in text
        assert parse_rule(text) == rule

    def test_negated_condition_rendered(self):
        rule = parse_rule("(p r (Emp ^d <D>) -(Audit ^d <D>) --> (remove 1))")
        text = format_rule(rule)
        assert "-(Audit" in text
        assert parse_rule(text) == rule

    def test_all_action_kinds_round_trip(self):
        source = """
        (p r (Emp ^a <X> ^b > 3)
        -->
        (make Emp ^a (compute <X> + 1 * 2) ^b nil)
        (modify 1 ^b 9)
        (remove 1)
        (bind <Y> 5)
        (write |hi| <Y>)
        (call log <X>)
        (halt))
        """
        rule = parse_rule(source)
        assert parse_rule(format_rule(rule)) == rule

    def test_program_round_trip(self, example2_source):
        program = parse_program(example2_source)
        again = parse_program(format_program(program))
        assert again.schemas == program.schemas
        assert again.rules == program.rules


values = st.one_of(
    st.integers(-99, 99),
    st.text(
        alphabet="abcXYZ*+- 0123456789_|".replace("|", ""), max_size=6
    ),
    st.none(),
)
attr_names = st.sampled_from(["a", "b", "c"])
ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
var_names = st.sampled_from(["x", "y", "z"])

operands = st.one_of(
    values.map(Constant),
    var_names.map(Variable),
)


def make_ce(draws):
    tests = tuple(
        AttributeTest(attr, op, operand) for attr, op, operand in draws
    )
    return ConditionElement("R", tests)


ces = st.lists(
    st.tuples(attr_names, ops, operands), min_size=0, max_size=4
).map(make_ce)


@settings(max_examples=80, deadline=None)
@given(st.lists(ces, min_size=1, max_size=3), st.integers(0, 5))
def test_random_rules_round_trip(condition_elements, salience):
    rule = Rule(
        name="gen",
        condition_elements=tuple(condition_elements),
        actions=(
            MakeAction(
                "R",
                (
                    ("a", ConstExpr(1)),
                    ("b", ComputeExpr("+", ConstExpr(2), VarExpr("q"))),
                ),
            ),
        ),
        salience=salience,
    )
    program = Program(
        schemas={"R": RelationSchema("R", ("a", "b", "c"))}, rules=[rule]
    )
    text = format_program(program)
    reparsed = parse_program(text)
    assert reparsed.rules == [rule]
    assert reparsed.schemas == program.schemas
