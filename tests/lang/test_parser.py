"""Parser tests, built around the paper's own examples."""

import pytest

from repro.errors import ParseError
from repro.lang import (
    AttributeTest,
    ComputeExpr,
    Constant,
    ConstExpr,
    HaltAction,
    MakeAction,
    ModifyAction,
    RemoveAction,
    Variable,
    VarExpr,
    WriteAction,
    parse_program,
    parse_rule,
)


class TestLiteralize:
    def test_literalize_defines_schema(self):
        program = parse_program("(literalize Emp name age salary dno)")
        schema = program.schemas["Emp"]
        assert schema.attributes == ("name", "age", "salary", "dno")

    def test_duplicate_literalize_raises(self):
        with pytest.raises(ParseError, match="literalized twice"):
            parse_program("(literalize E a) (literalize E b)")


class TestConditionElements:
    def test_example2_plusox_structure(self, example2_source):
        program = parse_program(example2_source)
        plusox = program.rule("PlusOX")
        goal, expression = plusox.condition_elements
        assert goal.class_name == "Goal"
        assert goal.tests == (
            AttributeTest("Type", "=", Constant("Simplify")),
            AttributeTest("Object", "=", Variable("N")),
        )
        assert expression.class_name == "Expression"
        assert AttributeTest("Arg1", "=", Constant(0)) in expression.tests
        assert AttributeTest("Op", "=", Constant("+")) in expression.tests

    def test_example3_brace_test(self, example3_source):
        program = parse_program(example3_source)
        r1 = program.rule("R1")
        second = r1.condition_elements[1]
        salary_tests = second.tests_on("salary")
        assert salary_tests == (
            AttributeTest("salary", "=", Variable("S1")),
            AttributeTest("salary", "<", Variable("S")),
        )

    def test_negated_condition(self):
        rule = parse_rule(
            "(p R (Emp ^dno <D>) -(Dept ^dno <D>) --> (remove 1))"
        )
        assert not rule.condition_elements[0].negated
        assert rule.condition_elements[1].negated

    def test_dont_care_star_produces_no_test(self):
        rule = parse_rule("(p R (Emp ^name * ^dno 3) --> (halt))")
        (ce,) = rule.condition_elements
        assert ce.tests == (AttributeTest("dno", "=", Constant(3)),)

    def test_nil_is_none(self):
        rule = parse_rule("(p R (Emp ^name nil) --> (halt))")
        assert rule.condition_elements[0].tests[0].operand == Constant(None)

    def test_operator_tests(self):
        rule = parse_rule("(p R (Emp ^age > 55 ^dno <> 3) --> (halt))")
        (ce,) = rule.condition_elements
        assert ce.tests == (
            AttributeTest("age", ">", Constant(55)),
            AttributeTest("dno", "<>", Constant(3)),
        )

    def test_star_after_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("(p R (Emp ^age > *) --> (halt))")

    def test_empty_brace_rejected(self):
        with pytest.raises(ParseError, match="empty"):
            parse_rule("(p R (Emp ^age {}) --> (halt))")


class TestActions:
    def test_modify_with_nil(self, example2_source):
        program = parse_program(example2_source)
        (action,) = program.rule("PlusOX").actions
        assert action == ModifyAction(
            2, (("Op", ConstExpr(None)), ("Arg1", ConstExpr(None)))
        )

    def test_remove_multiple_indices_expands(self):
        rule = parse_rule("(p R (Emp ^dno 1) --> (remove 1 1))")
        assert rule.actions == (RemoveAction(1), RemoveAction(1))

    def test_remove_without_index_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("(p R (Emp ^dno 1) --> (remove))")

    def test_make_with_expressions(self):
        rule = parse_rule(
            "(p R (Emp ^salary <S>) --> "
            "(make Emp ^salary (compute <S> + 10) ^name New))"
        )
        (action,) = rule.actions
        assert isinstance(action, MakeAction)
        attr, expr = action.assignments[0]
        assert attr == "salary"
        assert expr == ComputeExpr("+", VarExpr("S"), ConstExpr(10))

    def test_compute_left_associative_chain(self):
        rule = parse_rule(
            "(p R (Emp ^salary <S>) --> (write (compute <S> + 1 * 2)))"
        )
        (action,) = rule.actions
        (expr,) = action.expressions
        assert expr == ComputeExpr(
            "*", ComputeExpr("+", VarExpr("S"), ConstExpr(1)), ConstExpr(2)
        )

    def test_halt_write_bind_call(self):
        rule = parse_rule(
            "(p R (Emp ^name <N>) --> "
            "(bind <X> 5) (write |name:| <N> <X>) (call log <N>) (halt))"
        )
        kinds = [type(a).__name__ for a in rule.actions]
        assert kinds == ["BindAction", "WriteAction", "CallAction", "HaltAction"]
        write = rule.actions[1]
        assert isinstance(write, WriteAction)
        assert write.expressions[0] == ConstExpr("name:")

    def test_unknown_action_rejected(self):
        with pytest.raises(ParseError, match="unknown action"):
            parse_rule("(p R (Emp ^dno 1) --> (explode))")

    def test_halt_action_singleton(self):
        rule = parse_rule("(p R (Emp ^dno 1) --> (halt))")
        assert rule.actions == (HaltAction(),)


class TestProductions:
    def test_salience_extension(self):
        rule = parse_rule("(p R (salience 5) (Emp ^dno 1) --> (halt))")
        assert rule.salience == 5

    def test_default_salience_zero(self):
        rule = parse_rule("(p R (Emp ^dno 1) --> (halt))")
        assert rule.salience == 0

    def test_duplicate_rule_rejected(self):
        source = "(p R (Emp ^a 1) --> (halt)) (p R (Emp ^a 1) --> (halt))"
        with pytest.raises(ParseError, match="defined twice"):
            parse_program(source)

    def test_rule_without_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("(p R (Emp ^dno 1) (halt))")

    def test_program_with_rules_and_schemas(self, example3_source):
        program = parse_program(example3_source)
        assert set(program.schemas) == {"Emp", "Dept"}
        assert [r.name for r in program.rules] == ["R1", "R2"]

    def test_unknown_toplevel_form_rejected(self):
        with pytest.raises(ParseError, match="literalize"):
            parse_program("(defrule R)")

    def test_rule_lookup_missing(self, example3_source):
        program = parse_program(example3_source)
        with pytest.raises(Exception, match="no rule named"):
            program.rule("R99")
