"""Tokenizer tests."""

import pytest

from repro.errors import ParseError
from repro.lang import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)]


class TestBasicTokens:
    def test_parens_and_braces(self):
        assert kinds("( ) { }") == ["LPAREN", "RPAREN", "LBRACE", "RBRACE"]

    def test_attribute(self):
        (token,) = tokenize("^salary")
        assert token.kind == "ATTR"
        assert token.value == "salary"

    def test_paper_up_arrow_is_attribute(self):
        (token,) = tokenize("↑salary")
        assert token.kind == "ATTR"
        assert token.value == "salary"

    def test_attribute_without_name_raises(self):
        with pytest.raises(ParseError):
            tokenize("^ )")

    def test_variable(self):
        (token,) = tokenize("<S1>")
        assert token.kind == "VAR"
        assert token.value == "S1"

    def test_malformed_variable_raises(self):
        with pytest.raises(ParseError, match="missing '>'"):
            tokenize("<abc ")

    def test_arrow(self):
        assert kinds("-->") == ["ARROW"]

    def test_minus_alone_is_negation_marker(self):
        assert kinds("- (") == ["MINUS", "LPAREN"]

    def test_numbers(self):
        assert values("7 -3 2.5 -0.5") == [7, -3, 2.5, -0.5]
        assert kinds("7 -3 2.5") == ["NUMBER"] * 3

    def test_symbols(self):
        assert values("Mike Toy PlusOX") == ["Mike", "Toy", "PlusOX"]
        assert kinds("Mike") == ["SYMBOL"]

    def test_star_and_arith_are_symbols(self):
        assert kinds("* + /") == ["SYMBOL"] * 3

    def test_operators(self):
        assert values("= <> < <= > >=") == ["=", "<>", "<", "<=", ">", ">="]
        assert kinds("= <> < <= > >=") == ["OP"] * 6

    def test_strings_three_quote_styles(self):
        assert values("|hello world| 'a' \"b\"") == ["hello world", "a", "b"]
        assert kinds("|x|") == ["STRING"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("|abc")

    def test_comment_skipped(self):
        assert values("Mike ; a comment\nSam") == ["Mike", "Sam"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("#")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestRealisticInput:
    def test_condition_with_brace_test(self):
        tokens = tokenize("(Emp ^name <M> ^salary {<S1> < <S>})")
        assert [t.kind for t in tokens] == [
            "LPAREN", "SYMBOL", "ATTR", "VAR", "ATTR",
            "LBRACE", "VAR", "OP", "VAR", "RBRACE", "RPAREN",
        ]

    def test_negated_condition(self):
        tokens = tokenize("-(Dept ^dno <D>)")
        assert tokens[0].kind == "MINUS"
        assert tokens[1].kind == "LPAREN"

    def test_whole_rule_round_trip(self, example3_source):
        tokens = tokenize(example3_source)
        assert tokens[0].kind == "LPAREN"
        assert tokens[-1].kind == "RPAREN"
        assert sum(1 for t in tokens if t.kind == "ARROW") == 2
