"""Rule-analysis tests: validation, normalization, join components."""

import pytest

from repro.errors import RuleError
from repro.lang import (
    RuleBuilder,
    analyze_program,
    analyze_rule,
    parse_program,
    parse_rule,
    test as optest,
    var,
)
from repro.storage import Comparison, TruePredicate
from repro.storage.query import VariableTest
from repro.storage.schema import RelationSchema

SCHEMAS = {
    "Emp": RelationSchema("Emp", ("name", "salary", "dno", "manager")),
    "Dept": RelationSchema("Dept", ("dno", "dname", "floor", "manager")),
}


def analyze(source, schemas=None):
    program = parse_program(source)
    merged = dict(SCHEMAS)
    merged.update(program.schemas)
    return analyze_rule(program.rules[0], schemas or merged)


class TestNormalization:
    def test_constant_tests_become_predicate(self):
        analysis = analyze("(p R (Emp ^name Mike ^salary > 100) --> (remove 1))")
        (cond,) = analysis.conditions
        assert Comparison("name", "=", "Mike") in cond.constant_predicate.parts
        assert Comparison("salary", ">", 100) in cond.constant_predicate.parts

    def test_no_tests_is_true_predicate(self):
        analysis = analyze("(p R (Emp ^dno <D>) --> (remove 1))")
        (cond,) = analysis.conditions
        assert isinstance(cond.constant_predicate, TruePredicate)

    def test_equality_variables_collected(self):
        analysis = analyze(
            "(p R (Emp ^name <N> ^dno <D>) (Dept ^dno <D>) --> (remove 1))"
        )
        assert analysis.conditions[0].equalities == (("name", "N"), ("dno", "D"))
        assert analysis.conditions[1].equalities == (("dno", "D"),)

    def test_residual_tests_collected(self, example3_source):
        program = parse_program(example3_source)
        analysis = analyze_rule(program.rule("R1"), program.schemas)
        second = analysis.conditions[1]
        assert second.equalities == (("name", "M"), ("salary", "S1"))
        assert second.residual == (VariableTest("salary", "<", "S"),)

    def test_cond_numbers_are_one_based(self, example4_source):
        program = parse_program(example4_source)
        analysis = analyze_rule(program.rules[0], program.schemas)
        assert [c.cond_number for c in analysis.conditions] == [1, 2, 3]
        assert analysis.condition(2).class_name == "B"

    def test_to_conjuncts_round_trip(self):
        analysis = analyze(
            "(p R (Emp ^dno <D>) -(Dept ^dno <D>) --> (remove 1))"
        )
        specs = analysis.to_conjuncts()
        assert specs[0].relation == "Emp"
        assert not specs[0].negated
        assert specs[1].negated


class TestValidation:
    def test_unknown_class_rejected(self):
        with pytest.raises(RuleError, match="never literalized"):
            analyze("(p R (Ghost ^x 1) --> (halt))")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(RuleError, match="no attribute"):
            analyze("(p R (Emp ^shoe 1) --> (halt))")

    def test_negated_condition_variable_must_be_bound(self):
        with pytest.raises(RuleError, match="not bound by an earlier"):
            analyze("(p R (Emp ^name Mike) -(Dept ^dno <D>) --> (remove 1))")

    def test_negated_condition_variable_bound_later_rejected(self):
        # OPS5 evaluates in LHS order: a negated CE cannot use a variable
        # that only a *later* positive CE binds.
        with pytest.raises(RuleError, match="not bound by an earlier"):
            analyze("(p R -(Dept ^dno <D>) (Emp ^dno <D>) --> (remove 2))")

    def test_residual_variable_must_be_bound(self):
        with pytest.raises(RuleError, match="never bound"):
            analyze("(p R (Emp ^salary < <S>) --> (remove 1))")

    def test_rhs_variable_must_be_bound(self):
        with pytest.raises(RuleError, match="never binds"):
            analyze("(p R (Emp ^name Mike) --> (make Emp ^name <Z>))")

    def test_bind_introduces_rhs_variable(self):
        analysis = analyze(
            "(p R (Emp ^name Mike) --> (bind <Z> 7) (make Emp ^salary <Z>))"
        )
        assert analysis.name == "R"

    def test_make_unknown_class_rejected(self):
        with pytest.raises(RuleError, match="unliteralized"):
            analyze("(p R (Emp ^name Mike) --> (make Ghost ^x 1))")

    def test_make_unknown_attribute_rejected(self):
        with pytest.raises(RuleError):
            analyze("(p R (Emp ^name Mike) --> (make Emp ^shoe 1))")

    def test_remove_index_out_of_range(self):
        with pytest.raises(RuleError, match="references condition 2"):
            analyze("(p R (Emp ^name Mike) --> (remove 2))")

    def test_remove_negated_condition_rejected(self):
        with pytest.raises(RuleError, match="negated"):
            analyze(
                "(p R (Emp ^dno <D>) -(Dept ^dno <D>) --> (remove 2))"
            )

    def test_all_negative_lhs_rejected(self):
        with pytest.raises(RuleError, match="positive condition"):
            parse_rule("(p R -(Emp ^name Mike) --> (halt))")

    def test_duplicate_rule_names_rejected(self):
        rule = parse_rule("(p R (Emp ^name Mike) --> (halt))")
        with pytest.raises(RuleError, match="defined twice"):
            analyze_program([rule, rule], SCHEMAS)


class TestJoinComponents:
    def test_example4_is_one_component(self, example4_source):
        program = parse_program(example4_source)
        analysis = analyze_rule(program.rules[0], program.schemas)
        assert analysis.components == ((0, 1, 2),)
        assert analysis.related_conditions(0) == (1, 2)
        assert analysis.related_conditions(1) == (0, 2)

    def test_disconnected_conditions_are_separate_components(self):
        analysis = analyze(
            "(p R (Emp ^name Mike) (Dept ^dname Toy) --> (remove 1))"
        )
        assert analysis.components == ((0,), (1,))
        assert analysis.related_conditions(0) == ()

    def test_chain_join_connects_transitively(self):
        analysis = analyze(
            "(p R (Emp ^dno <D> ^name <N>) (Dept ^dno <D> ^manager <M>) "
            "(Emp ^name <M>) --> (remove 1))"
        )
        assert analysis.components == ((0, 1, 2),)

    def test_variable_classes_map(self, example4_source):
        program = parse_program(example4_source)
        analysis = analyze_rule(program.rules[0], program.schemas)
        assert analysis.variable_classes == {
            "x": {0, 1},
            "y": {1, 2},
            "z": {0, 2},
        }

    def test_conditions_on_class(self, example3_source):
        program = parse_program(example3_source)
        analysis = analyze_rule(program.rule("R1"), program.schemas)
        assert len(analysis.conditions_on("Emp")) == 2
        assert analysis.conditions_on("Dept") == ()


class TestBuilderIntegration:
    def test_builder_rule_analyzes_like_parsed_rule(self):
        built = (
            RuleBuilder("R1")
            .when("Emp", name="Mike", salary=var("S"), manager=var("M"))
            .when("Emp", name=var("M"), salary=(var("S1"), optest("<", var("S"))))
            .remove(1)
            .build()
        )
        parsed = parse_program(
            """
            (p R1
                (Emp ^name Mike ^salary <S> ^manager <M>)
                (Emp ^name <M> ^salary {<S1> < <S>})
                -->
                (remove 1))
            """
        ).rules[0]
        assert built == parsed
