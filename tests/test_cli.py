"""CLI tests (run/check/format/report)."""

import pytest

from repro.cli import main

PROGRAM = """
(literalize Counter value limit)
(p count-up
    (Counter ^value <V> ^limit {<L> > <V>})
    -->
    (modify 1 ^value (compute <V> + 1))
    (write |now at| (compute <V> + 1)))
(make Counter ^value 0 ^limit 3)
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "counter.ops"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_runs_program_with_initial_elements(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "3 cycles" in out
        assert "write: now at 3" in out
        assert "Counter" in out

    def test_quiet_mode(self, program_file, capsys):
        assert main(["run", program_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "write:" not in out
        assert "3 cycles" in out

    @pytest.mark.parametrize("strategy", ["rete", "simplified", "markers"])
    def test_strategy_selection(self, program_file, strategy, capsys):
        assert main(["run", program_file, "--strategy", strategy]) == 0
        assert "3 cycles" in capsys.readouterr().out

    def test_max_cycles(self, program_file, capsys):
        assert main(["run", program_file, "--max-cycles", "2"]) == 0
        assert "cycle limit reached" in capsys.readouterr().out

    @pytest.mark.parametrize("batch_size", ["1", "8"])
    def test_batch_size_same_outcome(self, program_file, batch_size, capsys):
        assert main(
            ["run", program_file, "--batch-size", batch_size]
        ) == 0
        assert "3 cycles" in capsys.readouterr().out

    def test_invalid_batch_size_rejected(self, program_file, capsys):
        assert main(["run", program_file, "--batch-size", "0"]) == 1
        assert "batch_size" in capsys.readouterr().err

    def test_batch_size_recorded_in_manifest(self, program_file, tmp_path,
                                             capsys, monkeypatch):
        import json
        import os

        monkeypatch.chdir(tmp_path)
        assert main(
            ["run", program_file, "--quiet", "--batch-size", "4",
             "--manifest", str(tmp_path / "runs")]
        ) == 0
        out = capsys.readouterr().out
        manifest_path = out.split("manifest:")[1].strip()
        assert os.path.exists(manifest_path)
        payload = json.loads(open(manifest_path).read())
        assert payload["config"]["batch_size"] == 4

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.ops"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.ops"
        bad.write_text("(p broken")
        assert main(["run", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestRunArtifacts:
    def test_trace_and_metrics_out(self, program_file, tmp_path, capsys):
        import json

        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        assert main([
            "run", program_file, "--quiet",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert any(r["type"] == "span" for r in records)
        assert any(r["type"] == "event" for r in records)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["engine.fires"] == 3
        assert "ops.comparisons" in snapshot["gauges"]

    def test_manifest_written(self, program_file, tmp_path, capsys):
        import json

        runs = tmp_path / "runs"
        assert main([
            "run", program_file, "--quiet", "--manifest", str(runs),
        ]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out
        [run_dir] = list(runs.iterdir())
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["config"]["strategy"] == "patterns"
        assert manifest["program"]["path"] == program_file
        assert manifest["result"] == {
            "cycles": 3,
            "status": "quiescent",
            "resolved_batch_size": 1,
        }
        assert (run_dir / "metrics.json").exists()


class TestStats:
    def test_per_rule_phase_table(self, program_file, capsys):
        assert main(["stats", program_file]) == 0
        out = capsys.readouterr().out
        assert "count-up" in out
        for column in ("fires", "match_us", "select_us", "act_us", "total_us"):
            assert column in out
        assert "3 cycles" in out

    def test_bundled_example_program(self, capsys):
        import os

        example = os.path.join(
            os.path.dirname(__file__), "..", "examples", "orders.ops"
        )
        assert main(["stats", example]) == 0
        out = capsys.readouterr().out
        assert "ship-order" in out
        assert "flag-shortage" in out


class TestCheck:
    def test_summary(self, program_file, capsys):
        assert main(["check", program_file]) == 0
        out = capsys.readouterr().out
        assert "1 classes, 1 rules, 1 initial elements" in out
        assert "count-up" in out

    def test_semantic_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.ops"
        bad.write_text(
            "(literalize T x)(p r (T ^x <V>) --> (make T ^x <Z>))"
        )
        assert main(["check", str(bad)]) == 1


class TestFormat:
    def test_round_trips(self, program_file, capsys):
        assert main(["format", program_file]) == 0
        text = capsys.readouterr().out
        from repro.lang import parse_program

        program = parse_program(text)
        assert [r.name for r in program.rules] == ["count-up"]
        assert program.initial_elements == [
            ("Counter", {"value": 0, "limit": 3})
        ]


class TestExplain:
    def test_explains_all_rules(self, program_file, capsys):
        assert main(["explain", program_file]) == 0
        out = capsys.readouterr().out
        assert "count-up" in out
        # the initial (make Counter ...) satisfies the condition
        assert "1 instantiation" in out

    def test_explains_named_rule(self, program_file, capsys):
        assert main(["explain", program_file, "count-up"]) == 0
        assert "count-up" in capsys.readouterr().out

    def test_unknown_rule_is_an_error(self, program_file, capsys):
        assert main(["explain", program_file, "ghost"]) == 1
        assert "error" in capsys.readouterr().err


class TestReport:
    def test_single_experiment(self, capsys):
        assert main(["report", "f1"]) == 0
        assert "F1" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["report", "zz"])


class TestTopLevelMake:
    def test_initial_elements_loaded_by_production_system(self):
        from repro import ProductionSystem

        system = ProductionSystem(PROGRAM)
        (counter,) = system.wm.tuples("Counter")
        assert counter.values == (0, 3)

    def test_variables_rejected_in_toplevel_make(self):
        from repro.errors import ParseError
        from repro.lang import parse_program

        with pytest.raises(ParseError, match="constants"):
            parse_program("(literalize T x)(make T ^x <V>)")


class TestExplainXray:
    def test_support_chain_for_the_initial_wm(self, program_file, capsys):
        assert main(["explain", program_file]) == 0
        out = capsys.readouterr().out
        assert "count-up" in out
        assert "count-up[Counter#" in out  # provenance header
        assert "CE1" in out and "bindings:" in out

    def test_run_first_records_firing_history(self, program_file, capsys):
        assert main(["explain", program_file, "--strategy", "rete",
                     "--max-cycles", "10"]) == 0
        out = capsys.readouterr().out
        assert "via " in out  # join-node path annotations
        assert "fired at cycle(s):" in out
        assert "retracted at cycle" in out

    def test_wal_run_stamps_sequence_numbers(self, program_file, tmp_path,
                                             capsys):
        wal = tmp_path / "explain.wal"
        assert main(["explain", program_file, "--strategy", "rete",
                     "--max-cycles", "10", "--wal", str(wal)]) == 0
        assert "wal_seq=" in capsys.readouterr().out
        assert wal.exists()

    def test_instantiation_selector(self, program_file, capsys):
        assert main(["explain", program_file, "--instantiation", "1"]) == 0
        assert "count-up[" in capsys.readouterr().out

    def test_instantiation_out_of_range(self, program_file, capsys):
        assert main(["explain", program_file, "--instantiation", "9"]) == 1
        err = capsys.readouterr().err
        assert "no #9" in err

    def test_why_not_on_a_quiescent_rule(self, program_file, capsys):
        assert main(["explain", program_file, "--strategy", "rete",
                     "--max-cycles", "10", "--why-not"]) == 0
        out = capsys.readouterr().out
        assert "not satisfied" in out
        assert "blocked at CE1" in out

    def test_why_not_on_a_satisfied_rule(self, program_file, capsys):
        assert main(["explain", program_file, "--why-not"]) == 0
        assert "satisfied — no blocking condition" in \
            capsys.readouterr().out

    def test_network_json(self, program_file, capsys):
        import json as json_

        assert main(["explain", program_file, "--strategy", "rete",
                     "--network"]) == 0
        description = json_.loads(capsys.readouterr().out)
        assert {"alpha", "join", "production"} <= {
            node["kind"] for node in description["nodes"]
        }

    def test_dot_to_stdout(self, program_file, capsys):
        assert main(["explain", program_file, "--strategy", "rete",
                     "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_to_file(self, program_file, tmp_path, capsys):
        target = tmp_path / "net.dot"
        assert main(["explain", program_file, "--strategy", "rete",
                     "--dot", str(target)]) == 0
        assert target.read_text().startswith("digraph")

    def test_dot_requires_a_rete_strategy(self, program_file, capsys):
        assert main(["explain", program_file, "--strategy", "patterns",
                     "--dot"]) == 1
        assert "no node graph" in capsys.readouterr().err


class TestTopCommand:
    def make_trace(self, program_file, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", program_file, "--strategy", "rete",
                     "--batch-size", "8", "--trace-out", str(trace),
                     "--quiet"]) == 0
        return trace

    def test_static_dashboard(self, program_file, tmp_path, capsys):
        trace = self.make_trace(program_file, tmp_path)
        capsys.readouterr()
        assert main(["top", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "cycles 3" in out
        assert "p99" in out
        assert "hottest join nodes" in out

    def test_follow_mode_bounded_by_frames(self, program_file, tmp_path,
                                           capsys):
        trace = self.make_trace(program_file, tmp_path)
        capsys.readouterr()
        assert main(["top", str(trace), "--follow", "--frames", "2",
                     "--interval", "0.01"]) == 0
        assert capsys.readouterr().out.count("repro top") == 2

    def test_missing_trace_file(self, capsys):
        assert main(["top", "no/such/trace.jsonl"]) == 2
        assert "error" in capsys.readouterr().err


class TestRunXrayFlags:
    def test_lineage_flag_keeps_the_outcome(self, program_file, capsys):
        assert main(["run", program_file, "--lineage"]) == 0
        assert "3 cycles" in capsys.readouterr().out

    def test_otel_without_the_sdk_warns_and_continues(self, program_file,
                                                      capsys, monkeypatch):
        import sys as sys_

        monkeypatch.setitem(sys_.modules, "opentelemetry", None)
        assert main(["run", program_file, "--otel"]) == 0
        captured = capsys.readouterr()
        assert "opentelemetry" in captured.err
        assert "3 cycles" in captured.out

    def test_trace_rotation_produces_segments(self, program_file, tmp_path,
                                              capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", program_file, "--trace-out", str(trace),
                     "--trace-rotate-bytes", "400", "--trace-keep", "2",
                     "--quiet"]) == 0
        backups = sorted(p.name for p in tmp_path.glob("trace.jsonl.*"))
        assert backups and backups[0] == "trace.jsonl.1"
        assert len(backups) <= 2


class TestTenantQuotaFlags:
    def test_tenant_depths_parse(self):
        from repro.cli import _tenant_depths

        parsed = _tenant_depths(["t1=8", "noisy=2"], "--tenant-defer-depth")
        assert parsed == {"t1": 8, "noisy": 2}
        assert _tenant_depths(None, "--tenant-defer-depth") == {}

    @pytest.mark.parametrize("bad", ["t1", "t1=", "=8", "t1=eight", "t1=-2"])
    def test_malformed_overrides_rejected(self, bad):
        from repro.cli import _tenant_depths
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="TENANT=N"):
            _tenant_depths([bad], "--tenant-defer-depth")
