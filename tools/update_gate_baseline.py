#!/usr/bin/env python
"""Regenerate the metric-snapshot gate baseline.

Thin wrapper over ``python -m repro.obs.gate --update`` that first runs
the gate in *check* mode and prints the drift being banked, so a
baseline refresh in a PR shows reviewers exactly which counters moved::

    PYTHONPATH=src python tools/update_gate_baseline.py

Run it whenever instrumentation legitimately changes — a new counter or
histogram appears (the gate tracks ``hist.<name>.count`` observation
counts), an algorithm change shifts operation counts, or a metric is
renamed.  The refreshed baseline lives at
``tests/baselines/metrics_baseline.json`` and is asserted by
``tests/obs/test_gate.py``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.obs.gate import DEFAULT_BASELINE, DEFAULT_TOLERANCE, run_gate

    parser = argparse.ArgumentParser(
        prog="tools/update_gate_baseline.py",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="show the drift without rewriting the baseline",
    )
    args = parser.parse_args(argv)

    try:
        ok, violations, _ = run_gate(
            baseline_path=args.baseline, tolerance=args.tolerance
        )
    except FileNotFoundError:
        ok, violations = False, []
        print(f"no baseline at {args.baseline}; creating one")
    if ok:
        print("gate already passes; baseline refresh only banks decreases")
    for violation in violations:
        print(f"  banking: {violation}")
    if args.dry_run:
        return 0
    _, _, current = run_gate(
        baseline_path=args.baseline, tolerance=args.tolerance, update=True
    )
    print(f"baseline updated: {args.baseline} ({len(current)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
