#!/usr/bin/env python
"""Documentation consistency checker (run in CI's docs job).

Walks every tracked markdown file and verifies that the documentation
cannot silently rot:

* **Links** — every relative markdown link ``[text](target)`` resolves to
  a file in the repository (anchors are stripped; external schemes are
  skipped).
* **Code references** — every inline-code fragment that *looks like* a
  repository artifact actually exists:

  - dotted module/attribute paths starting with ``repro.`` must import
    (``repro.match.base.MatchStrategy``, ``repro.bench.report`` …);
  - path-like fragments ending in ``.py``/``.md``/``.ops``/``.yml`` must
    exist on disk;
  - ``--flag`` fragments appearing in ``docs/*.md`` or ``README.md`` —
    inline code *and* fenced command blocks — must be declared somewhere
    under ``src/`` or ``tools/`` (the CLI surface), unless they belong
    to well-known external tools (pytest, pip).

* **Cross-links** — every file under ``docs/`` must be the target of at
  least one markdown link from *another* tracked markdown file, so a new
  guide cannot land unreachable from the documentation graph.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Flags owned by external tools, allowed to appear without a repo match.
EXTERNAL_FLAGS = {
    "--benchmark-only",
    "--find-links",
    "--hypothesis-seed",
    "--quiet",
    "-e",
    "-m",
    "-q",
    "-x",
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
FENCE_RE = re.compile(r"^```.*?\n(.*?)^```", re.MULTILINE | re.DOTALL)
DOTTED_RE = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+(\(\))?$")
FLAG_RE = re.compile(r"^--[a-z][a-z0-9-]*$")
PATHLIKE_RE = re.compile(r"^[\w./-]+\.(py|md|ops|yml)$")


#: Meta files of the repo-growth process, not product documentation —
#: they quote external repos and abbreviated paths on purpose.
EXCLUDED = {"ISSUE.md", "SNIPPETS.md", "PAPERS.md", "PAPER.md", "CHANGES.md"}


def tracked_markdown() -> list[Path]:
    docs = sorted(REPO.glob("*.md")) + sorted(REPO.glob("docs/*.md"))
    return [p for p in docs if p.is_file() and p.name not in EXCLUDED]


def check_links(
    path: Path, text: str, problems: list[str], linked: set[Path]
) -> None:
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith(("#", "mailto:")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO)}: broken link {target}")
        elif resolved != path:
            linked.add(resolved)


def check_flags(
    path: Path, fragment: str, src_text: str, problems: list[str]
) -> None:
    for flag in re.findall(r"--[a-z][a-z0-9-]*", fragment):
        if flag in EXTERNAL_FLAGS:
            continue
        if FLAG_RE.match(flag) and flag not in src_text:
            problems.append(
                f"{path.relative_to(REPO)}: flag {flag} "
                "not declared under src/ or tools/"
            )


def check_dotted(path: Path, ref: str, problems: list[str]) -> None:
    parts = ref.removesuffix("()").split(".")
    # Find the longest importable module prefix, then getattr the rest.
    module = None
    index = len(parts)
    while index > 0:
        try:
            module = importlib.import_module(".".join(parts[:index]))
            break
        except ImportError:
            index -= 1
    if module is None:
        problems.append(f"{path.relative_to(REPO)}: unimportable ref {ref}")
        return
    obj = module
    for attr in parts[index:]:
        if not hasattr(obj, attr):
            problems.append(
                f"{path.relative_to(REPO)}: {ref} has no attribute {attr!r}"
            )
            return
        obj = getattr(obj, attr)


def check_code_refs(
    path: Path,
    text: str,
    src_text: str,
    problems: list[str],
    linked: set[Path],
) -> None:
    flags_checked = path.parent.name == "docs" or path.name == "README.md"
    for match in CODE_RE.finditer(text):
        ref = match.group(1).strip()
        if DOTTED_RE.match(ref):
            check_dotted(path, ref, problems)
        elif PATHLIKE_RE.match(ref) and "/" in ref:
            if not (REPO / ref).exists():
                problems.append(
                    f"{path.relative_to(REPO)}: missing file ref {ref}"
                )
            elif ref.endswith(".md"):
                resolved = (REPO / ref).resolve()
                if resolved != path:
                    linked.add(resolved)
        elif flags_checked:
            check_flags(path, ref, src_text, problems)
    if flags_checked:
        for block in FENCE_RE.findall(text):
            check_flags(path, block, src_text, problems)


def main() -> int:
    src_text = "\n".join(
        p.read_text(encoding="utf-8")
        for root in ("src", "tools")
        for p in sorted((REPO / root).rglob("*.py"))
    )
    problems: list[str] = []
    linked: set[Path] = set()
    for path in tracked_markdown():
        text = path.read_text(encoding="utf-8")
        check_links(path, text, problems, linked)
        check_code_refs(path, text, src_text, problems, linked)
    for path in tracked_markdown():
        if path.parent.name == "docs" and path not in linked:
            problems.append(
                f"{path.relative_to(REPO)}: orphan — no other markdown "
                "file links to it"
            )
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print(f"docs ok: {len(tracked_markdown())} markdown files checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
