#!/usr/bin/env python
"""Nightly bench smoke: reduced A5–A10 runs plus a regression gate.

Runs the A5 (token-batched Rete propagation), A6 (WAL overhead and
crash recovery), A7 (compiled match kernels vs the interpreted walk),
A8 (parallel sharded match), A9 (multi-tenant serving over the
k8s-auto-fix workload) and A10 (warm-standby replication and kill -9
failover) experiments at a fraction of their
report budgets and writes a ``BENCH_obs.json`` trajectory artifact:
every row with its wall-clock figures (recorded for trend charts, never
gated — CI runners are noisy) and a ``gate`` section of *deterministic
operation counts* (node activations, comparisons, join probes, batches,
fsyncs, replayed batches, fanned items, critical-path items, final
WM/conflict sizes).

The A8 rows also carry an unconditional acceptance check, baseline or
not: the deterministic ``speedup_bound`` (fanned items over the
round-robin critical path) must show at least one worker-scaling win —
a multi-worker row measurably above the serial bound of 1.  The A9 rows
carry their own baseline-free acceptance: nothing shed at the nominal
one-in-flight rate, every event consumed at quiescence, and every
tenant's exactly-once ``applied_seq`` recovered intact after the
in-process ``kill -9`` stand-in.  The A10 rows gate the replication
invariants the same way: zero steady-state lag under semi-sync acks,
the full acked stream surviving promotion, and exactly one fencing
epoch bump.

With ``--baseline PREV.json`` the gate compares those counts against the
previous trajectory and fails (exit 1) when any grew more than the
tolerance (default 20%) — the nightly job's definition of a perf
regression that survives runner noise.  Without a baseline it only
writes the artifact (first night, or after an intentional reset)::

    PYTHONPATH=src python tools/bench_smoke.py --out BENCH_obs.json \
        [--baseline previous/BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: Allowed relative growth of a gated count before the smoke fails.
DEFAULT_TOLERANCE = 0.20

#: Deterministic row columns gated per experiment; everything else in a
#: row (ms, us/event, run_ms, recover_ms) is trajectory-only.
GATED_COLUMNS = {
    "a5": ("activations", "comparisons", "join_probes", "batches",
           "conflict_size"),
    "a6": ("fsyncs", "replayed", "wm"),
    "a7": ("interp_cmp", "compiled_cmp", "conflict_size"),
    "a8": ("fanouts", "fanned_items", "critical_path", "conflict_size"),
    "a9": ("applied_seq", "events_left", "remediations", "tickets", "wm",
           "shed"),
    "a10": ("lag_records", "applied_seq", "events_left", "remediations",
            "tickets", "wm", "epoch"),
}

#: The deterministic speedup bound a multi-worker A8 row must clear for
#: the nightly to count a worker-scaling win.
SCALING_WIN_BOUND = 1.5


def collect(stream_length: int, cycles: int, serve_events: int = 60) -> dict:
    """Run the reduced experiments and assemble the trajectory payload."""
    from repro.bench.report import (
        report_a5,
        report_a6,
        report_a7,
        report_a8,
        report_a9,
        report_a10,
    )

    title_a5, rows_a5 = report_a5(
        stream_length=stream_length,
        batch_sizes=(1, 16),
        strategies=("rete", "rete-shared", "patterns"),
    )
    title_a6, rows_a6 = report_a6(cycles=cycles, fsync_everys=(64,),
                                  checkpoint_every=20)
    title_a7, rows_a7 = report_a7(
        stream_length=stream_length,
        batch_sizes=(64,),
        strategies=("rete", "rete-shared"),
    )
    title_a8, rows_a8 = report_a8(
        stream_length=stream_length,
        worker_counts=(1, 2, 4),
        strategies=("rete",),
    )
    title_a9, rows_a9 = report_a9(events_per_tenant=serve_events, tenants=2)
    title_a10, rows_a10 = report_a10(events_per_tenant=serve_events,
                                     tenants=2)
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "budget": {"a5_stream_length": stream_length, "a6_cycles": cycles,
                   "a7_stream_length": stream_length,
                   "a8_stream_length": stream_length,
                   "a9_events_per_tenant": serve_events,
                   "a10_events_per_tenant": serve_events},
        "a5": {"title": title_a5, "rows": rows_a5},
        "a6": {"title": title_a6, "rows": rows_a6},
        "a7": {"title": title_a7, "rows": rows_a7},
        "a8": {"title": title_a8, "rows": rows_a8},
        "a9": {"title": title_a9, "rows": rows_a9},
        "a10": {"title": title_a10, "rows": rows_a10},
        "gate": {},
    }
    gate = payload["gate"]
    for row in rows_a5:
        label = f"a5[{row['strategy']}/batch={row['batch']}]"
        for column in GATED_COLUMNS["a5"]:
            gate[f"{label}.{column}"] = row[column]
    for row in rows_a6:
        label = f"a6[{row['mode']}]"
        for column in GATED_COLUMNS["a6"]:
            gate[f"{label}.{column}"] = row[column]
    for row in rows_a7:
        label = f"a7[{row['strategy']}/batch={row['batch']}]"
        for column in GATED_COLUMNS["a7"]:
            gate[f"{label}.{column}"] = row[column]
    for row in rows_a8:
        label = f"a8[{row['strategy']}/w{row['workers']}]"
        for column in GATED_COLUMNS["a8"]:
            gate[f"{label}.{column}"] = row[column]
    for row in rows_a9:
        label = f"a9[{row['tenant']}]"
        for column in GATED_COLUMNS["a9"]:
            gate[f"{label}.{column}"] = row[column]
    for row in rows_a10:
        label = f"a10[{row['tenant']}]"
        for column in GATED_COLUMNS["a10"]:
            gate[f"{label}.{column}"] = row[column]
    return payload


def scaling_failures(payload: dict, bound: float = SCALING_WIN_BOUND) -> list[str]:
    """A8 acceptance: at least one multi-worker row clears *bound*.

    The speedup bound is a deterministic function of the fanned work, so
    this check needs no baseline and survives runner noise.
    """
    rows = payload.get("a8", {}).get("rows", [])
    parallel = [row for row in rows if row["workers"] > 1]
    if not parallel:
        return ["a8: no multi-worker rows produced"]
    best = max(row["speedup_bound"] for row in parallel)
    if best < bound:
        return [
            f"a8: no worker-scaling win — best speedup_bound {best} "
            f"across {len(parallel)} multi-worker rows is below {bound}"
        ]
    return []


def serving_failures(payload: dict) -> list[str]:
    """A9 acceptance: the serving invariants hold, no baseline needed.

    Every column here is deterministic in the workload seed, so a
    violation is a real serving bug (shed at nominal load, an event the
    pack failed to consume, or an exactly-once mark lost across the
    crash), never runner noise.
    """
    from repro.workload.k8s import k8s_setup

    rows = payload.get("a9", {}).get("rows", [])
    if not rows:
        return ["a9: no serving rows produced"]
    inventory = len(k8s_setup())
    failures = []
    for row in rows:
        tenant = row["tenant"]
        if row["shed"]:
            failures.append(
                f"a9[{tenant}]: {row['shed']} ops shed at the nominal rate"
            )
        if row["events_left"]:
            failures.append(
                f"a9[{tenant}]: {row['events_left']} events unconsumed "
                "at quiescence"
            )
        if row["applied_seq"] != row["events"] + inventory:
            failures.append(
                f"a9[{tenant}]: recovered applied_seq {row['applied_seq']} "
                f"!= acked stream {row['events'] + inventory}"
            )
    return failures


def replication_failures(payload: dict) -> list[str]:
    """A10 acceptance: the failover invariants hold, no baseline needed.

    Zero steady-state lag, the full acked stream surviving the
    ``kill -9`` / promote failover, and exactly one epoch bump are all
    deterministic in the workload seed; a violation is a replication
    bug (a record the standby never applied, a lost exactly-once mark,
    or a double promotion), never runner noise.
    """
    from repro.workload.k8s import k8s_setup

    rows = payload.get("a10", {}).get("rows", [])
    if not rows:
        return ["a10: no replication rows produced"]
    inventory = len(k8s_setup())
    failures = []
    for row in rows:
        tenant = row["tenant"]
        if row["lag_records"]:
            failures.append(
                f"a10[{tenant}]: {row['lag_records']} records of "
                "steady-state lag under semi-sync acks"
            )
        if row["applied_seq"] != row["events"] + inventory:
            failures.append(
                f"a10[{tenant}]: promoted applied_seq {row['applied_seq']} "
                f"!= acked stream {row['events'] + inventory}"
            )
        if row["events_left"]:
            failures.append(
                f"a10[{tenant}]: {row['events_left']} events unconsumed "
                "on the promoted standby"
            )
        if row["epoch"] != 2:
            failures.append(
                f"a10[{tenant}]: fencing epoch {row['epoch']} after one "
                "promotion (expected 2)"
            )
    return failures


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Gate current counts against the baseline; returns failure lines."""
    failures: list[str] = []
    for name, base_value in sorted(baseline.get("gate", {}).items()):
        value = current["gate"].get(name)
        if value is None:
            failures.append(f"{name}: disappeared (baseline={base_value})")
            continue
        if value > base_value + abs(base_value) * tolerance:
            grown = (
                (value - base_value) / base_value * 100.0
                if base_value
                else float("inf")
            )
            failures.append(
                f"{name}: grew {grown:.1f}% "
                f"(baseline={base_value}, current={value}, "
                f"tolerance={tolerance * 100:.0f}%)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/bench_smoke.py", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", default="BENCH_obs.json",
                        help="trajectory artifact to write")
    parser.add_argument("--baseline", default=None,
                        help="previous trajectory to gate against")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE)
    parser.add_argument("--stream-length", type=int, default=120,
                        help="A5 churn-stream length (default: 120)")
    parser.add_argument("--cycles", type=int, default=60,
                        help="A6 counter cycles (default: 60)")
    parser.add_argument("--serve-events", type=int, default=60,
                        help="A9 events per tenant (default: 60)")
    args = parser.parse_args(argv)

    current = collect(args.stream_length, args.cycles, args.serve_events)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(current, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"trajectory written: {args.out} "
          f"({len(current['gate'])} gated counts)")

    failures = (scaling_failures(current) + serving_failures(current)
                + replication_failures(current))
    if failures:
        print("bench smoke gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    if args.baseline is None:
        print("no baseline given; gate skipped")
        return 0
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(baseline, current, args.tolerance)
    if not failures:
        print(f"bench smoke gate passed "
              f"(vs {baseline.get('generated_at', 'unknown')})")
        return 0
    print("bench smoke gate FAILED:", file=sys.stderr)
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
