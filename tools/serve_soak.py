#!/usr/bin/env python
"""Serve soak: two tenants, sustained k8s events, a kill -9, a resume.

CI's production-shaped endurance check for ``repro serve``.  The soak
spawns the server exactly as an operator would, attaches two tenants to
the k8s-auto-fix pack, and streams deterministic cluster events at the
nominal rate (one in flight per tenant) for half the soak budget.  Then
it ``kill -9``s the server mid-stream, restarts it on the same data
directory, verifies every tenant recovered with its exactly-once mark
intact (re-sending the last acked op must dedup), and streams the rest
of the budget before a clean protocol shutdown.

Hard assertions, all deterministic:

* every mutation ack is ``ok`` and ``durable``; nothing is shed at the
  nominal rate;
* after restart the recovered ``applied_seq`` equals the last acked seq;
* the event relation is empty at quiescence (the pack consumes every
  event — the k8s workload invariant);
* the server exits 0 on protocol shutdown.

Every request/reply pair is appended to a per-phase JSONL trace under
``--trace-dir``; CI uploads the traces when the soak fails.

Usage::

    PYTHONPATH=src python tools/serve_soak.py --duration 30 \
        --trace-dir soak-traces
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.workload.k8s import K8S_PROGRAM, k8s_events, k8s_setup  # noqa: E402

TENANTS = ("acme", "globex")


class SoakFailure(AssertionError):
    pass


def check(condition: bool, detail: str) -> None:
    if not condition:
        raise SoakFailure(detail)


class Tracer:
    """Appends request/reply lines to one JSONL file per phase."""

    def __init__(self, trace_dir: Path, phase: str) -> None:
        trace_dir.mkdir(parents=True, exist_ok=True)
        self.path = trace_dir / f"{phase}.jsonl"
        self.file = self.path.open("a", encoding="utf-8")
        self.started = time.perf_counter()

    def record(self, request: dict, reply: dict) -> None:
        self.file.write(json.dumps(
            {"t": round(time.perf_counter() - self.started, 6),
             "request": request, "reply": reply},
            sort_keys=True,
        ) + "\n")

    def close(self) -> None:
        self.file.flush()
        self.file.close()


class Client:
    def __init__(self, host: str, port: int, tracer: Tracer) -> None:
        self.sock = socket.create_connection((host, port), timeout=60)
        self.file = self.sock.makefile("rwb")
        self.tracer = tracer

    def call(self, **body):
        self.file.write(json.dumps(body).encode("utf-8") + b"\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            raise SoakFailure(f"server hung up on {body.get('op')}")
        reply = json.loads(line)
        self.tracer.record(body, reply)
        return reply

    def close(self) -> None:
        try:
            self.file.close()
        finally:
            self.sock.close()


def spawn(data_dir: Path, *extra: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[1] / "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--data-dir", str(data_dir), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    line = proc.stdout.readline()
    check(line.startswith("serving on "),
          f"server failed to announce: {line!r}")
    host, _, port = line.strip().rpartition(" ")[2].rpartition(":")
    return proc, host, int(port)


def event_request(tenant: str, seq: int, values: dict) -> dict:
    return {"op": "insert", "tenant": tenant, "seq": seq,
            "relation": "event", "values": values}


def stream_until(client, deadline: float, streams, cursors, acked) -> int:
    """Round-robin one acked event per tenant until *deadline*."""
    sent = 0
    while time.perf_counter() < deadline:
        for tenant in TENANTS:
            index = cursors[tenant]
            check(index < len(streams[tenant]),
                  f"{tenant}: event stream exhausted; raise --events")
            _, values = streams[tenant][index]
            seq = acked[tenant] + 1
            reply = client.call(**event_request(tenant, seq, values))
            check(reply.get("ok") is True and reply.get("durable") is True,
                  f"{tenant}: bad ack {reply}")
            check(not reply.get("shed"), f"{tenant}: shed at nominal rate")
            cursors[tenant] = index + 1
            acked[tenant] = seq
            sent += 1
    return sent


def assert_no_shed(client) -> None:
    status = client.call(op="status")
    check(status["admission"]["shed"] == 0,
          f"ops shed at nominal rate: {status['admission']}")


def soak(duration: float, data_dir: Path, trace_dir: Path,
         events: int) -> dict:
    streams = {
        tenant: k8s_events(events, seed=index)
        for index, tenant in enumerate(TENANTS)
    }
    cursors = dict.fromkeys(TENANTS, 0)
    acked = dict.fromkeys(TENANTS, 0)
    started = time.perf_counter()

    # -- phase 1: sustained streaming at the nominal rate ------------------
    tracer = Tracer(trace_dir, "phase1-stream")
    proc, host, port = spawn(data_dir)
    client = Client(host, port, tracer)
    for tenant in TENANTS:
        reply = client.call(op="attach", tenant=tenant, program=K8S_PROGRAM)
        check(reply.get("ok") is True, f"{tenant}: attach failed {reply}")
        for relation, values in k8s_setup():
            seq = acked[tenant] + 1
            reply = client.call(
                op="insert", tenant=tenant, seq=seq,
                relation=relation, values=values,
            )
            check(reply.get("ok") is True, f"{tenant}: setup {reply}")
            acked[tenant] = seq
    phase1 = stream_until(client, started + duration / 2,
                          streams, cursors, acked)
    assert_no_shed(client)
    client.close()
    tracer.close()

    # -- phase 2: kill -9 mid-stream ---------------------------------------
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=60)
    check(proc.returncode != 0, "SIGKILL produced a zero exit?")

    # -- phase 3: restart, verify recovery, resume the stream --------------
    tracer = Tracer(trace_dir, "phase3-resume")
    proc, host, port = spawn(data_dir)
    client = Client(host, port, tracer)
    status = client.call(op="status")
    check(status["recovered_tenants"] == sorted(TENANTS),
          f"recovery missed tenants: {status['recovered_tenants']}")
    for tenant in TENANTS:
        stats = client.call(op="stats", tenant=tenant)
        check(stats["applied_seq"] == acked[tenant],
              f"{tenant}: acked {acked[tenant]} but recovered "
              f"applied_seq {stats['applied_seq']} — an acked op was lost")
        # exactly-once: replaying the last acked op must dedup
        index = cursors[tenant] - 1
        _, values = streams[tenant][index]
        reply = client.call(**event_request(tenant, acked[tenant], values))
        check(reply.get("dup") is True,
              f"{tenant}: replayed acked op was not deduped: {reply}")
    phase3 = stream_until(client, started + duration,
                          streams, cursors, acked)
    assert_no_shed(client)
    for tenant in TENANTS:
        rows = client.call(op="query", tenant=tenant,
                           relation="event")["rows"]
        check(rows == [],
              f"{tenant}: {len(rows)} events unconsumed at quiescence")

    # -- phase 4: clean shutdown -------------------------------------------
    client.call(op="shutdown")
    client.close()
    tracer.close()
    proc.wait(timeout=60)
    check(proc.returncode == 0,
          f"clean shutdown exited {proc.returncode}")

    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": round(elapsed, 2),
        "events_phase1": phase1,
        "events_phase3": phase3,
        "events_total": phase1 + phase3,
        "events_per_s": round((phase1 + phase3) / elapsed, 1),
        "acked": acked,
    }


def failover_soak(duration: float, data_dir: Path, trace_dir: Path,
                  events: int) -> dict:
    """The replicated soak: primary + warm standby, ``kill -9`` of the
    primary mid-stream, promotion over the wire, fenced stale primary.

    Same hard assertions as the plain soak, plus: zero replication lag
    under the nominal rate, no acked op lost across the failover, the
    promoted standby finishes the stream, and the restarted old primary
    is refused with its stale epoch named.
    """
    streams = {
        tenant: k8s_events(events, seed=index)
        for index, tenant in enumerate(TENANTS)
    }
    cursors = dict.fromkeys(TENANTS, 0)
    acked = dict.fromkeys(TENANTS, 0)
    started = time.perf_counter()
    primary_dir = data_dir / "primary"
    standby_dir = data_dir / "standby"

    # -- phase 1: replicated streaming at the nominal rate -----------------
    tracer = Tracer(trace_dir, "phase1-replicated-stream")
    pproc, phost, pport = spawn(primary_dir)
    client = Client(phost, pport, tracer)
    for tenant in TENANTS:
        reply = client.call(op="attach", tenant=tenant, program=K8S_PROGRAM)
        check(reply.get("ok") is True, f"{tenant}: attach failed {reply}")
        for relation, values in k8s_setup():
            seq = acked[tenant] + 1
            reply = client.call(
                op="insert", tenant=tenant, seq=seq,
                relation=relation, values=values,
            )
            check(reply.get("ok") is True, f"{tenant}: setup {reply}")
            acked[tenant] = seq
    fproc, fhost, fport = spawn(
        standby_dir, "--follow", f"{phost}:{pport}",
        "--takeover-deadline", "0",
    )
    attach_deadline = time.perf_counter() + 30
    while True:
        status = client.call(op="status")
        if status["replication"].get("follower_attached"):
            break
        check(time.perf_counter() < attach_deadline,
              "standby never attached to the primary")
        time.sleep(0.1)
    phase1 = stream_until(client, started + duration / 2,
                          streams, cursors, acked)
    assert_no_shed(client)
    status = client.call(op="status")
    check(status["replication"]["degraded"] == 0,
          f"pair degraded during the stream: {status['replication']}")
    client.close()
    tracer.close()

    # -- phase 2: kill -9 the primary --------------------------------------
    pproc.send_signal(signal.SIGKILL)
    pproc.wait(timeout=60)
    check(pproc.returncode != 0, "SIGKILL produced a zero exit?")

    # -- phase 3: promote the standby, verify, resume the stream -----------
    tracer = Tracer(trace_dir, "phase3-promoted")
    client = Client(fhost, fport, tracer)
    lag = client.call(op="status")["replication"]
    check(lag["lag_records"] == 0,
          f"standby lagging at promotion time: {lag}")
    promote_started = time.perf_counter()
    reply = client.call(op="promote")
    promote_ms = (time.perf_counter() - promote_started) * 1e3
    check(reply.get("ok") is True, f"promote failed: {reply}")
    check(sorted(reply["tenants"]) == sorted(TENANTS),
          f"promotion missed tenants: {reply}")
    epoch = reply["epoch"]
    check(epoch >= 2, f"promotion did not bump the epoch: {reply}")
    for tenant in TENANTS:
        stats = client.call(op="stats", tenant=tenant)
        check(stats["applied_seq"] == acked[tenant],
              f"{tenant}: acked {acked[tenant]} but promoted standby has "
              f"applied_seq {stats['applied_seq']} — an acked op was lost")
        index = cursors[tenant] - 1
        _, values = streams[tenant][index]
        reply = client.call(**event_request(tenant, acked[tenant], values))
        check(reply.get("dup") is True,
              f"{tenant}: replayed acked op was not deduped: {reply}")
    phase3 = stream_until(client, started + duration,
                          streams, cursors, acked)
    assert_no_shed(client)
    for tenant in TENANTS:
        rows = client.call(op="query", tenant=tenant,
                           relation="event")["rows"]
        check(rows == [],
              f"{tenant}: {len(rows)} events unconsumed at quiescence")

    # -- phase 4: the restarted old primary is fenced ----------------------
    tracer2 = Tracer(trace_dir, "phase4-fencing")
    p2proc, p2host, p2port = spawn(primary_dir)
    stale = Client(p2host, p2port, tracer2)
    refusal = stale.call(op="follow", epoch=epoch, have={})
    check(refusal.get("ok") is False and refusal.get("fenced") is True,
          f"stale primary was not fenced: {refusal}")
    check("stale epoch" in refusal.get("error", ""),
          f"fencing refusal does not name the stale epoch: {refusal}")
    stale.close()
    # a follow handshake ends its connection; shut down over a fresh one
    stale = Client(p2host, p2port, tracer2)
    stale.call(op="shutdown")
    stale.close()
    tracer2.close()
    p2proc.wait(timeout=60)

    # -- phase 5: clean shutdown of the promoted standby -------------------
    client.call(op="shutdown")
    client.close()
    tracer.close()
    fproc.wait(timeout=60)
    check(fproc.returncode == 0,
          f"promoted standby shutdown exited {fproc.returncode}")

    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": round(elapsed, 2),
        "epoch": epoch,
        "promote_ms": round(promote_ms, 1),
        "events_phase1": phase1,
        "events_phase3": phase3,
        "events_total": phase1 + phase3,
        "events_per_s": round((phase1 + phase3) / elapsed, 1),
        "acked": acked,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/serve_soak.py", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--duration", type=float, default=30.0,
                        help="total soak seconds (default: 30)")
    parser.add_argument("--data-dir", default=None,
                        help="server data dir (default: a temp dir)")
    parser.add_argument("--trace-dir", default="soak-traces",
                        help="where request/reply JSONL traces land")
    parser.add_argument("--events", type=int, default=200_000,
                        help="pre-generated events per tenant (the soak "
                             "fails if the stream runs dry)")
    parser.add_argument("--failover", action="store_true",
                        help="soak a primary/warm-standby pair instead: "
                             "kill -9 the primary mid-stream, promote the "
                             "standby, fence the restarted old primary")
    args = parser.parse_args(argv)

    if args.data_dir is None:
        holder = tempfile.TemporaryDirectory(prefix="serve-soak-")
        data_dir = Path(holder.name)
    else:
        data_dir = Path(args.data_dir)
        data_dir.mkdir(parents=True, exist_ok=True)
    runner = failover_soak if args.failover else soak
    label = "serve failover soak" if args.failover else "serve soak"
    try:
        summary = runner(args.duration, data_dir, Path(args.trace_dir),
                         args.events)
    except SoakFailure as failure:
        print(f"{label} FAILED: {failure}", file=sys.stderr)
        print(f"traces: {args.trace_dir}/", file=sys.stderr)
        return 1
    print(f"{label} passed: " + json.dumps(summary, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
