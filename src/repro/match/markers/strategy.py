"""Tuple-marker rule indexing — the Basic Locking / POSTGRES scheme.

§2.3/§3.2 of the paper: "POSTGRES uses a dual approach, i.e. it stores
identifiers of possibly qualifying rules with the data ... The space
overhead ... is clearly lower than that of the Rete Network, as rule
identifiers require much less space compared to the full data tuples ...
However, the process of identifying qualifying rules is more expensive ...
as more false drops may arise."

Each WM tuple carries markers ``"<rule>.<cen>"`` for every condition element
it satisfies *in isolation*.  A change collects the tuple's markers, treats
every marked rule as a candidate, and must then check the rule's whole LHS
("POSTGRES will of course check the conditions of the rules before the
corresponding actions are performed") — the full-evaluation step whose
frequent failure is exactly the false-drop cost the paper criticizes.
"""

from __future__ import annotations

from repro.instrument import SpaceReport
from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.match.base import MatchStrategy
from repro.match.common import match_condition, result_to_instantiation
from repro.storage.query import evaluate
from repro.storage.tuples import StoredTuple


def marker_name(rule_name: str, cond_number: int) -> str:
    """The marker identifying one condition element."""
    return f"{rule_name}.{cond_number}"


class BasicLockingStrategy(MatchStrategy):
    """Rule markers on data tuples, validated by full LHS evaluation."""

    strategy_name = "markers"
    match_span_name = "match.alpha_test"

    def _prepare(self) -> None:
        self._by_class: dict[str, list[tuple[RuleAnalysis, AnalyzedCondition]]] = {}
        for analysis in self.analyses.values():
            for condition in analysis.conditions:
                self._by_class.setdefault(condition.class_name, []).append(
                    (analysis, condition)
                )

    def on_insert(self, wme: StoredTuple) -> None:
        self._trace_match("insert", wme, self._insert_impl)

    def on_delete(self, wme: StoredTuple) -> None:
        self._trace_match("delete", wme, self._delete_impl)

    def _insert_impl(self, wme: StoredTuple) -> None:
        table = self.wm.relation(wme.relation)
        schema = self.wm.schema(wme.relation)
        candidates: list[tuple[RuleAnalysis, AnalyzedCondition]] = []
        blocked: list[tuple[RuleAnalysis, AnalyzedCondition]] = []
        for analysis, condition in self._by_class.get(wme.relation, []):
            self.counters.comparisons += 1
            if match_condition(condition, schema, wme) is None:
                continue
            table.add_marker(
                wme.tid, marker_name(analysis.name, condition.cond_number)
            )
            if condition.negated:
                blocked.append((analysis, condition))
            else:
                candidates.append((analysis, condition))
        for analysis, condition in blocked:
            self._retract_blocked(analysis, condition, wme)
        for analysis, condition in candidates:
            self._validate_candidate(analysis, condition, wme)

    def _delete_impl(self, wme: StoredTuple) -> None:
        self.conflict_set.remove_wme(wme)
        schema = self.wm.schema(wme.relation)
        for analysis, condition in self._by_class.get(wme.relation, []):
            if not condition.negated:
                continue
            self.counters.comparisons += 1
            if match_condition(condition, schema, wme) is None:
                continue
            # A blocker disappeared; the rule may have become satisfiable.
            found = False
            for result in evaluate(
                analysis.to_conjuncts(), self.wm.catalog, counters=self.counters
            ):
                found = True
                self.conflict_set.add(result_to_instantiation(analysis, result))
            if not found:
                self.counters.false_drops += 1

    # -- candidate validation ------------------------------------------------

    def _validate_candidate(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        """The full LHS check POSTGRES performs on a marker hit."""
        found = False
        for result in evaluate(
            analysis.to_conjuncts(),
            self.wm.catalog,
            counters=self.counters,
            seed_index=condition.index,
            seed_row=wme,
        ):
            found = True
            self.conflict_set.add(result_to_instantiation(analysis, result))
        if not found:
            self.counters.false_drops += 1

    def _retract_blocked(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        schema = self.wm.schema(wme.relation)
        for instantiation in self.conflict_set.for_rule(analysis.name):
            env = match_condition(
                condition, schema, wme, instantiation.binding_map()
            )
            if env is not None:
                self.conflict_set.remove(instantiation)

    # -- accounting -----------------------------------------------------------

    def marked_rules(self, wme: StoredTuple) -> set[str]:
        """Rule names marked on *wme* (the POSTGRES candidate lookup)."""
        markers = self.wm.relation(wme.relation).markers(wme.tid)
        return {marker.rsplit(".", 1)[0] for marker in markers}

    def space_report(self) -> SpaceReport:
        marker_entries = sum(
            self.wm.relation(name).marker_count() for name in self.wm.schemas
        )
        return SpaceReport(
            strategy=self.strategy_name,
            wm_tuples=self.wm.size(),
            stored_tokens=0,
            stored_patterns=0,
            marker_entries=marker_entries,
            # A marker is one rule-id cell on the data tuple.
            estimated_cells=marker_entries,
            detail={"marker_entries": marker_entries},
        )
