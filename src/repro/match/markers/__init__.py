"""The two [STON86a] rule-indexing schemes the paper contrasts (§2.3, §3.2):
Basic Locking (tuple markers) and Predicate Indexing (R-tree search)."""

from repro.match.markers.predicate_indexing import PredicateIndexingStrategy
from repro.match.markers.strategy import BasicLockingStrategy, marker_name

__all__ = ["BasicLockingStrategy", "PredicateIndexingStrategy", "marker_name"]
