"""Predicate Indexing — the second [STON86a] rule-indexing scheme (§2.3).

"In Predicate Indexing, a data structure similar to a discrimination
network is built.  Such a structure allows for the efficient search and
detection of conditions (LHS's) affected by the insertion of a specific
tuple ...  it is suggested that a variation to R-trees, R+-trees, are used
for that reason.  Using Predicate Indexing implies no special treatment of
insertions to base relations, but a search of the whole tree is required
whenever one asks for the conditions affected by an update."

Contrast with Basic Locking (:class:`BasicLockingStrategy`): no markers are
stored on data tuples (zero insert-time marking cost and zero marker
space), but every update pays an R-tree search; candidate rules still
require full LHS validation, so false drops remain.  §2.3's conclusion —
"it is not possible to choose one implementation to efficiently support any
rule-based environment" — is what benchmark E9 measures.
"""

from __future__ import annotations

from repro.instrument import SpaceReport
from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.match.base import MatchStrategy
from repro.match.common import match_condition, result_to_instantiation
from repro.rindex.condition_index import ConditionIndex
from repro.storage.query import evaluate
from repro.storage.tuples import StoredTuple


class PredicateIndexingStrategy(MatchStrategy):
    """R-tree detection of affected conditions + full LHS validation."""

    strategy_name = "predicate-index"
    match_span_name = "match.predicate_probe"

    def _prepare(self) -> None:
        self.condition_index = ConditionIndex(self.analyses, self.wm.schemas)
        self._conditions: dict[tuple[str, int], tuple[RuleAnalysis, AnalyzedCondition]] = {}
        for analysis in self.analyses.values():
            for condition in analysis.conditions:
                self._conditions[(analysis.name, condition.cond_number)] = (
                    analysis,
                    condition,
                )

    def _affected(
        self, wme: StoredTuple
    ) -> list[tuple[RuleAnalysis, AnalyzedCondition]]:
        """Search the predicate index for conditions the tuple may satisfy."""
        self.counters.index_lookups += 1
        hits = self.condition_index.conditions_matching(wme)
        return [self._conditions[hit] for hit in hits]

    def on_insert(self, wme: StoredTuple) -> None:
        self._trace_match("insert", wme, self._insert_impl)

    def on_delete(self, wme: StoredTuple) -> None:
        self._trace_match("delete", wme, self._delete_impl)

    def _insert_impl(self, wme: StoredTuple) -> None:
        schema = self.wm.schema(wme.relation)
        blocked: list[tuple[RuleAnalysis, AnalyzedCondition]] = []
        candidates: list[tuple[RuleAnalysis, AnalyzedCondition]] = []
        for analysis, condition in self._affected(wme):
            self.counters.comparisons += 1
            if match_condition(condition, schema, wme) is None:
                continue  # an index false hit (boxes over-approximate)
            if condition.negated:
                blocked.append((analysis, condition))
            else:
                candidates.append((analysis, condition))
        for analysis, condition in blocked:
            self._retract_blocked(analysis, condition, wme)
        for analysis, condition in candidates:
            self._validate_candidate(analysis, condition, wme)

    def _delete_impl(self, wme: StoredTuple) -> None:
        self.conflict_set.remove_wme(wme)
        schema = self.wm.schema(wme.relation)
        for analysis, condition in self._affected(wme):
            if not condition.negated:
                continue
            self.counters.comparisons += 1
            if match_condition(condition, schema, wme) is None:
                continue
            found = False
            for result in evaluate(
                analysis.to_conjuncts(), self.wm.catalog, counters=self.counters
            ):
                found = True
                self.conflict_set.add(result_to_instantiation(analysis, result))
            if not found:
                self.counters.false_drops += 1

    # -- candidate validation (same economics as POSTGRES, §3.2) -----------

    def _validate_candidate(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        found = False
        for result in evaluate(
            analysis.to_conjuncts(),
            self.wm.catalog,
            counters=self.counters,
            seed_index=condition.index,
            seed_row=wme,
        ):
            found = True
            self.conflict_set.add(result_to_instantiation(analysis, result))
        if not found:
            self.counters.false_drops += 1

    def _retract_blocked(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        schema = self.wm.schema(wme.relation)
        for instantiation in self.conflict_set.for_rule(analysis.name):
            env = match_condition(
                condition, schema, wme, instantiation.binding_map()
            )
            if env is not None:
                self.conflict_set.remove(instantiation)

    # -- accounting ---------------------------------------------------------

    def space_report(self) -> SpaceReport:
        # The index stores one box (arity intervals, 2 endpoints each) per
        # condition element; nothing lives on the data tuples.
        cells = 0
        for class_name, schema in self.wm.schemas.items():
            tree = self.condition_index.tree(class_name)
            if tree is not None:
                cells += len(tree) * schema.arity * 2
        return SpaceReport(
            strategy=self.strategy_name,
            wm_tuples=self.wm.size(),
            stored_tokens=0,
            stored_patterns=0,
            marker_entries=0,
            estimated_cells=cells,
            detail={"indexed_conditions": len(self.condition_index)},
        )
