"""The match-strategy interface.

Each of the paper's indexing schemes — the (DBMS) Rete network (§3),
the simplified re-evaluation algorithm (§4.1), the matching-pattern scheme
(§4.2) and the tuple-marker scheme (§2.3/[STON86a]) — implements this one
interface: it listens to WM changes and maintains a
:class:`~repro.engine.conflict.ConflictSet`.  The engine and the benchmarks
are strategy-agnostic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.delta import INSERT, DeltaBatch
from repro.engine.conflict import ConflictSet, Instantiation
from repro.engine.wm import WorkingMemory
from repro.errors import MatchError
from repro.instrument import Counters, SpaceReport
from repro.lang.analysis import RuleAnalysis
from repro.obs import Observability
from repro.storage.tuples import StoredTuple


@dataclass
class ConditionDiagnosis:
    """Why one condition element is (un)satisfied."""

    cond_number: int
    class_name: str
    negated: bool
    display: str
    matching_elements: int
    satisfied: bool
    detail: dict = field(default_factory=dict)


@dataclass
class RuleDiagnosis:
    """The explain() result for one rule."""

    rule_name: str
    instantiations: int
    conditions: list[ConditionDiagnosis] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return self.instantiations > 0

    def blocking_conditions(self) -> list[ConditionDiagnosis]:
        """The conditions currently preventing the rule from matching."""
        return [c for c in self.conditions if not c.satisfied]

    def __str__(self) -> str:
        lines = [
            f"{self.rule_name}: "
            + (
                f"{self.instantiations} instantiation(s) in the conflict set"
                if self.satisfied
                else "not satisfied"
            )
        ]
        for condition in self.conditions:
            mark = "ok " if condition.satisfied else "BLK"
            polarity = "-" if condition.negated else " "
            lines.append(
                f"  [{mark}] {polarity}({condition.display}) — "
                f"{condition.matching_elements} matching element(s)"
            )
        return "\n".join(lines)


class MatchStrategy:
    """Base class wiring a strategy to a WM and a conflict set.

    Subclasses implement :meth:`on_insert` / :meth:`on_delete` and
    :meth:`space_report`.  Construction registers the strategy as a WM
    listener; WM elements already present are replayed so a strategy can be
    attached to a non-empty working memory.
    """

    #: Short identifier used in benchmark tables.
    strategy_name = "abstract"

    #: Span name for this strategy's match work (§4.2.3's cost unit);
    #: subclasses override it with their algorithm-specific label.
    match_span_name = "match.work"

    def __init__(
        self,
        wm: WorkingMemory,
        analyses: dict[str, RuleAnalysis],
        counters: Counters | None = None,
        obs: Observability | None = None,
        compile_mode: str = "off",
        pool=None,
    ) -> None:
        self.wm = wm
        self.analyses = dict(analyses)
        self.counters = counters or wm.counters
        self.obs = obs or wm.obs
        #: Match-compilation mode (:mod:`repro.match.compile`): ``"off"``
        #: keeps the interpreted reference path; strategies with a native
        #: compiled path consult this during :meth:`_prepare`, the rest
        #: ignore it.
        self.compile_mode = compile_mode
        #: Optional :class:`repro.parallel.WorkerPool`.  ``None`` (the
        #: default) keeps the strictly serial reference path; strategies
        #: with a parallel match phase consult it during
        #: :meth:`_prepare`, the rest ignore it.
        self.pool = pool
        self.conflict_set = ConflictSet()
        self._prepare()
        # A live pool may still be finishing a fan-out issued by a
        # previously attached strategy; wait for it so replay sees a
        # quiescent network.
        if pool is not None:
            pool.drain()
        wm.add_listener(self)
        replay = DeltaBatch.of_inserts(
            wme for class_name in wm.schemas for wme in wm.tuples(class_name)
        )
        if replay:
            self.on_delta(replay)

    # -- hooks ------------------------------------------------------------

    def _prepare(self) -> None:
        """Strategy-specific compilation; runs before replay/registration."""

    def on_insert(self, wme: StoredTuple) -> None:
        """Propagate a WM insertion."""
        raise NotImplementedError

    def on_delete(self, wme: StoredTuple) -> None:
        """Propagate a WM deletion."""
        raise NotImplementedError

    def on_delta(self, batch: DeltaBatch) -> None:
        """Propagate a whole batch of WM changes (set-at-a-time, §4.2.3).

        The engine delivers one call per batch however many elements
        changed; :meth:`_apply_delta` does the strategy-specific work.  The
        base implementation simply replays the batch through the per-tuple
        callbacks in order, so every strategy is batch-capable; set-oriented
        strategies override ``_apply_delta`` to group maintenance by target
        relation.  The surrounding span/metrics record batch size and the
        per-relation group fan-out (the width available to the paper's
        "fully parallelizable" claim).
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            self._apply_delta(batch)
            return
        groups = batch.by_relation()
        group_max = max((len(g) for g in groups.values()), default=0)
        started = time.perf_counter()
        with obs.span(
            "match.batch",
            strategy=self.strategy_name,
            size=len(batch),
            relations=len(groups),
            group_max=group_max,
        ):
            self._apply_delta(batch)
        metrics = obs.metrics
        metrics.counter("match.batches").inc()
        metrics.counter("match.batch_deltas").inc(len(batch))
        metrics.histogram("match.batch_size").observe(len(batch))
        metrics.histogram("match.batch_relations").observe(len(groups))
        metrics.histogram("match.batch_group_max").observe(group_max)
        metrics.log2_histogram("match.batch_us").observe(
            (time.perf_counter() - started) * 1e6
        )

    def _apply_delta(self, batch: DeltaBatch) -> None:
        """Strategy-specific batch maintenance; default is sequential."""
        for delta in batch:
            if delta.op == INSERT:
                self.on_insert(delta.wme)
            else:
                self.on_delete(delta.wme)

    def _trace_match(self, op: str, wme: StoredTuple, impl) -> None:
        """Run ``impl(wme)`` inside this strategy's match span.

        The disabled path is a single predicate check before delegating,
        so un-observed matching costs what it did before the obs layer.
        When enabled, the span carries the strategy, operation and changed
        relation, and per-event counter/latency metrics are recorded.
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            impl(wme)
            return
        started = time.perf_counter()
        with obs.span(
            self.match_span_name,
            strategy=self.strategy_name,
            op=op,
            relation=wme.relation,
        ):
            impl(wme)
        metrics = obs.metrics
        metrics.counter("match.wm_events").inc()
        metrics.log2_histogram("match.event_us").observe(
            (time.perf_counter() - started) * 1e6
        )

    def space_report(self) -> SpaceReport:
        """Report the strategy's auxiliary-storage footprint (§4.2.3)."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-ready structural summary of this strategy's match state.

        The base form reports the space-report gauges plus the conflict
        set; the Rete strategies override it with the full node graph
        (:meth:`repro.match.rete.builder.ReteNetwork.describe`) and the
        pattern scheme with its per-store cardinalities — the non-Rete
        equivalent of per-node introspection.
        """
        report = self.space_report()
        return {
            "strategy": self.strategy_name,
            "rules": sorted(self.analyses),
            "conflict_set": len(self.conflict_set),
            "space": {**report.as_dict(), **report.detail},
        }

    # -- shared helpers ------------------------------------------------------

    def explain(self, rule_name: str) -> RuleDiagnosis:
        """Why is *rule_name* (not) in the conflict set?

        Reports, per condition element, how many WM elements satisfy it in
        isolation — the RULE-DEF Check-bit view of §4.1.1 — plus the
        current instantiation count.  A positive condition with zero
        matching elements, or a negated one with any, is flagged as
        blocking.  (Per-condition satisfaction is necessary, not
        sufficient: join conditions can each be satisfiable without a
        consistent combination existing.)
        """
        from repro.match.common import match_condition

        analysis = self.analyses.get(rule_name)
        if analysis is None:
            raise MatchError(f"no rule named {rule_name!r}")
        diagnosis = RuleDiagnosis(
            rule_name=rule_name,
            instantiations=len(self.conflict_set.for_rule(rule_name)),
        )
        for condition in analysis.conditions:
            schema = self.wm.schema(condition.class_name)
            matching = sum(
                1
                for wme in self.wm.tuples(condition.class_name)
                if match_condition(condition, schema, wme) is not None
            )
            satisfied = (matching == 0) if condition.negated else (matching > 0)
            diagnosis.conditions.append(
                ConditionDiagnosis(
                    cond_number=condition.cond_number,
                    class_name=condition.class_name,
                    negated=condition.negated,
                    display=str(condition.ce).strip("()-"),
                    matching_elements=matching,
                    satisfied=satisfied,
                )
            )
        return diagnosis

    def detach(self) -> None:
        """Stop listening to WM changes and empty the conflict set.

        Idempotent: detaching an already-detached strategy is a no-op.
        The conflict set is cleared without firing its listeners, so a
        detached strategy never reports stale instantiations.  With a
        live worker pool, outstanding fan-outs are drained *first* so no
        worker is probing a memory while the topology changes.
        """
        if self.pool is not None:
            self.pool.drain()
        try:
            self.wm.remove_listener(self)
        except ValueError:
            pass
        self.conflict_set.clear()

    def instantiations(self) -> list[Instantiation]:
        """Current conflict set contents."""
        return self.conflict_set.instantiations()

    def conflict_set_keys(self) -> set:
        """Hashable snapshot of the conflict set (for cross-strategy tests)."""
        return {inst.key for inst in self.conflict_set}

    def _analysis_list(self) -> list[RuleAnalysis]:
        return list(self.analyses.values())

    def _wm_cells(self) -> int:
        """Attribute cells stored in the WM relations themselves."""
        total = 0
        for class_name, schema in self.wm.schemas.items():
            total += len(self.wm.relation(class_name)) * schema.arity
        return total
