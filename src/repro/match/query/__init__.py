"""The simplified query-re-evaluation strategy (§4.1 of the paper)."""

from repro.match.query.cond_relations import (
    CondRelations,
    RuleDefRelation,
    restriction_display,
)
from repro.match.query.planner import (
    apply_recommended_indexes,
    recommend_indexes,
)
from repro.match.query.strategy import (
    IndexedSimplifiedStrategy,
    SimplifiedStrategy,
)

__all__ = [
    "CondRelations",
    "IndexedSimplifiedStrategy",
    "RuleDefRelation",
    "SimplifiedStrategy",
    "apply_recommended_indexes",
    "recommend_indexes",
    "restriction_display",
]
