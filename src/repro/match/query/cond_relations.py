"""COND relations and the RULE-DEF relation (§4.1.1 of the paper).

"There are two basic types of relations: the Working Memory Relations (WM)
and the Condition Relations (COND). ... All condition elements in rules that
refer to a class of WM elements, say C, are stored in a corresponding COND
relation."  RULE-DEF "contains one tuple for each condition of each rule",
with a Check bit showing whether the condition element is currently
satisfied.

This module materializes those relations exactly as the paper's tables show
them (T1/T2 of the reproduction index): one COND-<class> table whose
attribute columns hold the condition's restriction in display form
(constants verbatim, variables as ``<x>``, don't-cares as ``*``, operator
tests as ``op value``), plus the RULE-DEF table with Check bits.
"""

from __future__ import annotations

from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.storage.catalog import Catalog
from repro.storage.predicate import (
    And,
    Comparison,
    Membership,
    Predicate,
    TruePredicate,
)
from repro.storage.schema import RelationSchema, Value


def _constant_display(value: Value) -> str:
    if value is None:
        return "nil"
    return str(value)


def restriction_display(
    condition: AnalyzedCondition, attribute: str
) -> str:
    """Render one attribute's restriction the way the paper's tables do."""
    parts: list[str] = []
    for comparison in _comparisons(condition.constant_predicate):
        if isinstance(comparison, Membership):
            if comparison.attribute == attribute:
                inner = " ".join(
                    _constant_display(v) for v in comparison.values
                )
                parts.append(f"<< {inner} >>")
            continue
        if comparison.attribute == attribute:
            if comparison.op == "=":
                parts.append(_constant_display(comparison.value))
            else:
                parts.append(f"{comparison.op} {_constant_display(comparison.value)}")
    for attr, variable in condition.equalities:
        if attr == attribute:
            parts.append(f"<{variable}>")
    for residual in condition.residual:
        if residual.attribute == attribute:
            parts.append(f"{residual.op} <{residual.variable}>")
    if not parts:
        return "*"
    return " & ".join(parts)


def _comparisons(predicate: Predicate) -> list:
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, (Comparison, Membership)):
        return [predicate]
    if isinstance(predicate, And):
        result: list = []
        for part in predicate.parts:
            result.extend(_comparisons(part))
        return result
    return []


class CondRelations:
    """Builds and owns the COND-<class> tables for a rule set."""

    def __init__(
        self,
        catalog: Catalog,
        analyses: dict[str, RuleAnalysis],
        schemas: dict[str, RelationSchema],
        prefix: str = "COND",
    ) -> None:
        self.catalog = catalog
        self.prefix = prefix
        self._classes: set[str] = set()
        for analysis in analyses.values():
            for condition in analysis.conditions:
                self._ensure_table(condition.class_name, schemas)
                self._insert_condition(analysis, condition, schemas)

    def _table_name(self, class_name: str) -> str:
        return f"{self.prefix}-{class_name}"

    def _ensure_table(
        self, class_name: str, schemas: dict[str, RelationSchema]
    ) -> None:
        if class_name in self._classes:
            return
        schema = schemas[class_name]
        self.catalog.create(
            RelationSchema(
                self._table_name(class_name),
                ("rule_id", "cen", "negated", *schema.attributes),
            )
        )
        self._classes.add(class_name)

    def _insert_condition(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        schemas: dict[str, RelationSchema],
    ) -> None:
        schema = schemas[condition.class_name]
        restrictions = tuple(
            restriction_display(condition, attribute)
            for attribute in schema.attributes
        )
        self.catalog.get(self._table_name(condition.class_name)).insert(
            (
                analysis.name,
                condition.cond_number,
                1 if condition.negated else 0,
                *restrictions,
            )
        )

    def classes(self) -> set[str]:
        """Classes that have a COND relation."""
        return set(self._classes)

    def rows(self, class_name: str) -> list[dict[str, Value]]:
        """The COND-<class> contents as attribute dictionaries."""
        table = self.catalog.get(self._table_name(class_name))
        return [row.as_mapping(table.schema) for row in table.scan()]

    def cell_count(self) -> int:
        """Stored cells across all COND relations (space accounting)."""
        total = 0
        for class_name in self._classes:
            table = self.catalog.get(self._table_name(class_name))
            total += len(table) * table.schema.arity
        return total


class RuleDefRelation:
    """The RULE-DEF relation: one row per condition, with its Check bit."""

    SCHEMA = RelationSchema("RULE-DEF", ("rule_id", "cond_no", "check"))

    def __init__(
        self, catalog: Catalog, analyses: dict[str, RuleAnalysis]
    ) -> None:
        self.catalog = catalog
        self.table = catalog.create(self.SCHEMA)
        self._row_tids: dict[tuple[str, int], int] = {}
        for analysis in analyses.values():
            for condition in analysis.conditions:
                row = self.table.insert(
                    (analysis.name, condition.cond_number, 0)
                )
                self._row_tids[(analysis.name, condition.cond_number)] = row.tid

    def set_check(self, rule_id: str, cond_number: int, satisfied: bool) -> None:
        """Set/reset one Check bit (stored as a fresh row, old row dropped)."""
        key = (rule_id, cond_number)
        old_tid = self._row_tids[key]
        old = self.table.get(old_tid)
        bit = 1 if satisfied else 0
        if old.values[2] == bit:
            return
        self.table.delete(old_tid)
        row = self.table.insert((rule_id, cond_number, bit))
        self._row_tids[key] = row.tid

    def check(self, rule_id: str, cond_number: int) -> bool:
        """Read one Check bit."""
        return bool(self.table.get(self._row_tids[(rule_id, cond_number)]).values[2])

    def all_set(self, rule_id: str, cond_numbers: list[int]) -> bool:
        """True when every listed Check bit is set."""
        return all(self.check(rule_id, n) for n in cond_numbers)

    def rows(self) -> list[tuple[str, int, int]]:
        """Contents sorted by (rule, condition number) — the paper's T2."""
        return sorted(
            (row.values[0], row.values[1], row.values[2])
            for row in self.table.scan()
        )
