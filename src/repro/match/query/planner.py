"""Physical-design helper: index recommendations for WM relations.

§4.1.2: "the performance of the system largely depends on the efficiency
of processing joins" — the evaluator probes equality indexes when they
exist (:meth:`repro.storage.table.Table.select_eq`), so building hash
indexes on the attributes rules join or select on is the obvious physical
design.  :func:`recommend_indexes` derives that attribute set from the
analyzed rules and :func:`apply_recommended_indexes` builds them.
"""

from __future__ import annotations

from repro.engine.wm import WorkingMemory
from repro.lang.analysis import RuleAnalysis
from repro.storage.predicate import And, Comparison, Predicate


def _equality_attributes(predicate: Predicate) -> set[str]:
    if isinstance(predicate, Comparison) and predicate.op == "=":
        return {predicate.attribute}
    if isinstance(predicate, And):
        result: set[str] = set()
        for part in predicate.parts:
            result |= _equality_attributes(part)
        return result
    return set()


def recommend_indexes(
    analyses: dict[str, RuleAnalysis]
) -> dict[str, set[str]]:
    """Attributes worth indexing, per WM class.

    An attribute qualifies when some condition element binds or joins on
    it with ``=`` (the evaluator probes these), or tests it against an
    equality constant (selective scans become lookups).
    """
    recommendations: dict[str, set[str]] = {}
    for analysis in analyses.values():
        for condition in analysis.conditions:
            attributes = {attr for attr, _var in condition.equalities}
            attributes |= _equality_attributes(condition.constant_predicate)
            if attributes:
                recommendations.setdefault(
                    condition.class_name, set()
                ).update(attributes)
    return recommendations


def apply_recommended_indexes(
    wm: WorkingMemory, analyses: dict[str, RuleAnalysis]
) -> int:
    """Create the recommended hash indexes; returns how many were built."""
    built = 0
    for class_name, attributes in recommend_indexes(analyses).items():
        if class_name not in wm.schemas:
            continue
        table = wm.relation(class_name)
        for attribute in sorted(attributes):
            if attribute not in table.indexed_attributes():
                table.create_index(attribute)
                built += 1
    return built
