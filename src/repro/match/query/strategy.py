"""The simplified algorithm of §4.1: re-evaluate LHSs as queries.

"The first alternative is to treat the LHS of each rule as a query to be
evaluated against working memory elements, thus eliminating the need of any
redundant storage."  On every insert the COND relation of the changed class
is searched for condition elements the new tuple satisfies; each hit
re-evaluates the owning rule's LHS as a conjunctive query *seeded* with the
tuple.  Deletions retract instantiations built on the tuple and re-evaluate
rules whose negated conditions may have become satisfiable.

No intermediate join results are stored — the space/time trade-off §4.2.3
contrasts with the matching-pattern scheme.
"""

from __future__ import annotations

from repro.delta import INSERT, DeltaBatch
from repro.instrument import SpaceReport
from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.match.base import MatchStrategy
from repro.match.common import match_condition, result_to_instantiation
from repro.match.query.cond_relations import CondRelations, RuleDefRelation
from repro.storage.catalog import Catalog
from repro.storage.query import evaluate
from repro.storage.tuples import StoredTuple


class SimplifiedStrategy(MatchStrategy):
    """§4.1: COND relations + RULE-DEF check bits + query re-evaluation."""

    strategy_name = "simplified"
    match_span_name = "match.join_recompute"

    #: When true, an R-tree over the conditions' variable-free boxes prunes
    #: the COND search (§4.1.2: "one can use intelligent indexing
    #: techniques such as R-trees ... to check if a given tuple satisfies
    #: conditions stored in the COND relations").
    _use_condition_index = False

    def _prepare(self) -> None:
        # COND and RULE-DEF live in their own catalog so they never collide
        # with WM relation names and their space is separately accountable.
        self.meta_catalog = Catalog(counters=self.counters)
        self.cond_relations = CondRelations(
            self.meta_catalog, self.analyses, self.wm.schemas
        )
        self.rule_def = RuleDefRelation(self.meta_catalog, self.analyses)
        # (class, analysis, condition) routing table.
        self._by_class: dict[str, list[tuple[RuleAnalysis, AnalyzedCondition]]] = {}
        for analysis in self.analyses.values():
            for condition in analysis.conditions:
                self._by_class.setdefault(condition.class_name, []).append(
                    (analysis, condition)
                )
        self.condition_index = None
        if self._use_condition_index:
            from repro.rindex.condition_index import ConditionIndex

            self.condition_index = ConditionIndex(
                self.analyses, self.wm.schemas
            )
        # Per-condition count of WM elements satisfying it in isolation,
        # which drives the Check bits.
        self._satisfier_counts: dict[tuple[str, int], int] = {}
        # A negated condition starts satisfied: no element blocks it yet.
        for analysis in self.analyses.values():
            for condition in analysis.conditions:
                if condition.negated:
                    self.rule_def.set_check(
                        analysis.name, condition.cond_number, satisfied=True
                    )

    def _candidates(
        self, wme: StoredTuple
    ) -> list[tuple[RuleAnalysis, AnalyzedCondition]]:
        """Conditions on the tuple's class worth matching against it.

        With the R-tree, conditions whose variable-free box cannot contain
        the tuple are pruned before the (exact) ``match_condition`` check;
        the index over-approximates, so nothing is ever missed.
        """
        entries = self._by_class.get(wme.relation, [])
        if self.condition_index is None:
            return entries
        self.counters.index_lookups += 1
        hits = set(self.condition_index.conditions_matching(wme))
        return [
            (analysis, condition)
            for analysis, condition in entries
            if (analysis.name, condition.cond_number) in hits
        ]

    # -- change propagation ------------------------------------------------

    def on_insert(self, wme: StoredTuple) -> None:
        self._trace_match("insert", wme, self._insert_impl)

    def on_delete(self, wme: StoredTuple) -> None:
        self._trace_match("delete", wme, self._delete_impl)

    def _insert_impl(self, wme: StoredTuple) -> None:
        entries = self._candidates(wme)
        schema = self.wm.schema(wme.relation)
        self.counters.cond_searches += 1
        for analysis, condition in entries:
            self.counters.comparisons += 1
            env = match_condition(condition, schema, wme)
            if env is None:
                continue
            self._bump_check(analysis, condition, +1)
            if condition.negated:
                self._retract_blocked(analysis, condition, wme)
            else:
                self._evaluate_seeded(analysis, condition, wme)

    def _delete_impl(self, wme: StoredTuple) -> None:
        self.conflict_set.remove_wme(wme)
        entries = self._candidates(wme)
        schema = self.wm.schema(wme.relation)
        self.counters.cond_searches += 1
        for analysis, condition in entries:
            self.counters.comparisons += 1
            env = match_condition(condition, schema, wme)
            if env is None:
                continue
            self._bump_check(analysis, condition, -1)
            if condition.negated:
                # The deleted element may have been the only witness
                # blocking some combinations: re-evaluate the whole LHS.
                self._evaluate_full(analysis)

    def _apply_delta(self, batch: DeltaBatch) -> None:
        """Set-at-a-time re-evaluation: one COND search per changed relation.

        The batch's deltas are grouped by relation, so the COND relation of
        each changed class is searched once per group rather than once per
        tuple.  Check-bit bumps are sums, so processing order within the
        batch is immaterial.  Re-evaluations are deferred to the end and
        deduplicated — in particular the full-LHS re-evaluation a negated
        deletion forces runs at most once per rule per batch, the dominant
        saving of the batched path.  Every evaluation reads the post-batch
        working memory, so deferral cannot admit blocked or dead
        instantiations.
        """
        for delta in batch.deletes:
            self.conflict_set.remove_wme(delta.wme)
        retracts: list[tuple[RuleAnalysis, AnalyzedCondition, StoredTuple]] = []
        seeded: list[tuple[RuleAnalysis, AnalyzedCondition, StoredTuple]] = []
        full: dict[str, RuleAnalysis] = {}
        for relation, deltas in batch.by_relation().items():
            schema = self.wm.schema(relation)
            self.counters.cond_searches += 1
            for delta in deltas:
                for analysis, condition in self._candidates(delta.wme):
                    self.counters.comparisons += 1
                    env = match_condition(condition, schema, delta.wme)
                    if env is None:
                        continue
                    if delta.op == INSERT:
                        self._bump_check(analysis, condition, +1)
                        if condition.negated:
                            retracts.append((analysis, condition, delta.wme))
                        else:
                            seeded.append((analysis, condition, delta.wme))
                    else:
                        self._bump_check(analysis, condition, -1)
                        if condition.negated:
                            full[analysis.name] = analysis
        for analysis, condition, wme in retracts:
            self._retract_blocked(analysis, condition, wme)
        for analysis, condition, wme in seeded:
            self._evaluate_seeded(analysis, condition, wme)
        for analysis in full.values():
            self._evaluate_full(analysis)

    # -- evaluation ------------------------------------------------------------

    def _evaluate_seeded(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        specs = analysis.to_conjuncts()
        for result in evaluate(
            specs,
            self.wm.catalog,
            counters=self.counters,
            seed_index=condition.index,
            seed_row=wme,
        ):
            self.conflict_set.add(result_to_instantiation(analysis, result))

    def _evaluate_full(self, analysis: RuleAnalysis) -> None:
        specs = analysis.to_conjuncts()
        for result in evaluate(specs, self.wm.catalog, counters=self.counters):
            self.conflict_set.add(result_to_instantiation(analysis, result))

    def _retract_blocked(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        """A new element matches a negated condition: retract blocked insts."""
        schema = self.wm.schema(wme.relation)
        for instantiation in self.conflict_set.for_rule(analysis.name):
            env = match_condition(
                condition, schema, wme, instantiation.binding_map()
            )
            if env is not None:
                self.conflict_set.remove(instantiation)

    # -- check bits ---------------------------------------------------------------

    def _bump_check(
        self, analysis: RuleAnalysis, condition: AnalyzedCondition, delta: int
    ) -> None:
        key = (analysis.name, condition.cond_number)
        count = self._satisfier_counts.get(key, 0) + delta
        self._satisfier_counts[key] = count
        if condition.negated:
            # A negated condition's Check bit is set while *no* element
            # satisfies its pattern.
            self.rule_def.set_check(*key, satisfied=count == 0)
        else:
            self.rule_def.set_check(*key, satisfied=count > 0)

    # -- accounting ------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        cond_cells = self.cond_relations.cell_count()
        rule_def_cells = len(self.rule_def.table) * self.rule_def.SCHEMA.arity
        return SpaceReport(
            strategy=self.strategy_name,
            wm_tuples=self.wm.size(),
            stored_tokens=0,
            stored_patterns=0,
            marker_entries=0,
            estimated_cells=cond_cells + rule_def_cells,
            detail={
                "cond_cells": cond_cells,
                "rule_def_cells": rule_def_cells,
            },
        )


class IndexedSimplifiedStrategy(SimplifiedStrategy):
    """§4.1 + the R-tree condition index of §4.1.2/§4.2.3."""

    strategy_name = "simplified-indexed"
    _use_condition_index = True
