"""Matching-pattern strategy (§4.2 of the paper — the core contribution)."""

from repro.match.patterns.pattern import (
    PatternTuple,
    Restrictions,
    Slot,
    merge,
    slot_display,
    specialize,
    template_restrictions,
)
from repro.match.patterns.store import PatternStore, make_stores
from repro.match.patterns.strategy import MatchingPatternsStrategy

__all__ = [
    "MatchingPatternsStrategy",
    "PatternStore",
    "PatternTuple",
    "Restrictions",
    "Slot",
    "make_stores",
    "merge",
    "slot_display",
    "specialize",
    "template_restrictions",
]
