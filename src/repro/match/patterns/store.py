"""The COND relations of the matching-pattern scheme.

One :class:`PatternStore` per WM class, holding original condition rows and
the matching patterns accumulated by propagation.  Patterns are indexed by
(RID, CEN) and deduplicated by their restriction row, so re-derivation of an
existing pattern increments its counters instead of storing a copy.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.instrument import Counters
from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.match.common import match_condition
from repro.match.patterns.pattern import (
    PatternTuple,
    Restrictions,
    merge,
    specialize,
    template_restrictions,
)
from repro.storage.predicate import compare
from repro.storage.schema import RelationSchema, Value
from repro.storage.tuples import StoredTuple


class PatternStore:
    """All pattern tuples for one WM class (the class's COND relation)."""

    def __init__(
        self, class_name: str, schema: RelationSchema, counters: Counters
    ) -> None:
        self.class_name = class_name
        self.schema = schema
        self.counters = counters
        # id(condition) -> compiled constant-test checker, installed by the
        # owning strategy when match compilation is on (repro.match.compile).
        self.checks: dict[int, object] = {}
        # (rid, cen) -> restrictions -> pattern
        self._groups: dict[tuple[str, int], dict[Restrictions, PatternTuple]] = {}
        self._templates: dict[tuple[str, int], PatternTuple] = {}

    # -- construction ------------------------------------------------------

    def add_template(
        self, analysis: RuleAnalysis, condition: AnalyzedCondition
    ) -> PatternTuple:
        """Install the original row for *condition* at compile time."""
        restrictions = template_restrictions(condition, self.schema)
        pattern = PatternTuple(
            rid=analysis.name,
            cen=condition.cond_number,
            restrictions=restrictions,
            rce=analysis.related_conditions(condition.index),
            original=True,
        )
        key = (pattern.rid, pattern.cen)
        self._groups.setdefault(key, {})[restrictions] = pattern
        self._templates[key] = pattern
        self.counters.patterns_created += 1
        return pattern

    # -- access -----------------------------------------------------------------

    def template(self, rid: str, cen: int) -> PatternTuple:
        """The original row for (rid, cen)."""
        return self._templates[(rid, cen)]

    def group(self, rid: str, cen: int) -> list[PatternTuple]:
        """Every pattern (template + specializations) for (rid, cen)."""
        return list(self._groups.get((rid, cen), {}).values())

    def groups(self) -> Iterator[tuple[tuple[str, int], list[PatternTuple]]]:
        """Iterate over (key, patterns) for every condition in this store."""
        for key, patterns in self._groups.items():
            yield key, list(patterns.values())

    def pattern_count(self) -> int:
        """Total stored rows (templates included)."""
        return sum(len(group) for group in self._groups.values())

    def derived_count(self) -> int:
        """Stored matching patterns (templates excluded)."""
        return self.pattern_count() - len(self._templates)

    # -- matching ---------------------------------------------------------------

    def matches_of(
        self,
        condition: AnalyzedCondition,
        rid: str,
        wme: StoredTuple,
    ) -> list[tuple[PatternTuple, dict[str, Value]]]:
        """Patterns of (rid, condition) that *wme* satisfies, with bindings.

        A tuple satisfies a pattern when it satisfies the underlying
        condition element *and* agrees with every pinned constant slot.
        This is the paper's "Search relation COND-C for tuples matching t".
        """
        self.counters.cond_searches += 1
        results: list[tuple[PatternTuple, dict[str, Value]]] = []
        group = self._groups.get((rid, condition.cond_number))
        if not group:
            return results
        env = match_condition(
            condition, self.schema, wme, check=self.checks.get(id(condition))
        )
        self.counters.comparisons += 1
        if env is None:
            return results
        for pattern in group.values():
            self.counters.comparisons += 1
            if self._tuple_agrees(pattern.restrictions, wme):
                results.append((pattern, env))
        return results

    def _tuple_agrees(self, restrictions: Restrictions, wme: StoredTuple) -> bool:
        for slot, value in zip(restrictions, wme.values):
            if slot is not None and slot[0] == "const":
                if not compare("=", slot[1], value):
                    return False
        return True

    def compatible_with(
        self, rid: str, cen: int, desired: Restrictions
    ) -> list[tuple[PatternTuple, Restrictions]]:
        """Patterns unifiable with *desired*, with the merged restrictions."""
        results: list[tuple[PatternTuple, Restrictions]] = []
        for pattern in self.group(rid, cen):
            self.counters.comparisons += 1
            merged = merge(pattern.restrictions, desired)
            if merged is not None:
                results.append((pattern, merged))
        return results

    def find_or_create(
        self,
        source: PatternTuple,
        merged: Restrictions,
    ) -> tuple[PatternTuple, bool]:
        """Return the pattern with *merged* restrictions, creating it from
        *source* (counters copied) when absent.  Second result: created?
        """
        key = (source.rid, source.cen)
        group = self._groups.setdefault(key, {})
        existing = group.get(merged)
        if existing is not None:
            return existing, False
        pattern = PatternTuple(
            rid=source.rid,
            cen=source.cen,
            restrictions=merged,
            rce=source.rce,
            supports={k: set(v) for k, v in source.supports.items()},
            original=False,
            approximate=source.approximate,
        )
        group[merged] = pattern
        self.counters.patterns_created += 1
        return pattern, True

    def discard(self, pattern: PatternTuple) -> None:
        """Drop a fully-unsupported derived pattern.

        Identity-guarded: compaction removes rows from the group without
        touching the owner's reverse support index, so a later deletion can
        drain a *zombie* row and ask to discard it after a live successor
        with the same restrictions has been re-derived.  Popping by
        restriction key alone would evict the successor and lose its
        supports; only the exact object stored in the group is removed.
        """
        if pattern.original:
            return
        group = self._groups.get((pattern.rid, pattern.cen))
        if group is not None and group.get(pattern.restrictions) is pattern:
            del group[pattern.restrictions]

    # -- compaction (§4.2.3 future work) ----------------------------------------

    def compact(
        self,
        max_per_condition: int | None = None,
        on_transfer=None,
    ) -> int:
        """Compact redundant matching patterns; returns how many were
        dropped.

        §4.2.3: "it is obvious that there is a lot of redundancy among
        matching patterns.  Compacting them in a nice way without
        sacrificing performance is crucial."  Two modes:

        * **Subsumption (always).**  A derived pattern P is dropped when a
          sibling Q of the same (RID, CEN) is at least as general and
          carries at least P's support for every related condition —
          strictly lossless.
        * **Folding (when *max_per_condition* is given).**  While a
          condition's group exceeds the cap, its least-supported derived
          pattern is *folded* into the most general sibling that covers
          its restrictions (the original row always qualifies): the
          folded pattern's support sets are unioned into the target, then
          the pattern is dropped.  No support is ever lost — matching
          stays complete — but the target now over-claims joinability for
          bindings the contributor only supported more narrowly, so the
          fire gate may admit more candidates whose act-time selection
          comes back empty (counted false drops).  Space for precision,
          the paper's trade.

        *on_transfer(target, rce_index, contributors)* is invoked for every
        folded support set so the owner can maintain its reverse index.
        """
        removed = 0
        for key, group in list(self._groups.items()):
            removed += self._compact_subsumed(group)
            if max_per_condition is not None:
                removed += self._fold_group(
                    key, group, max_per_condition, on_transfer
                )
        return removed

    def _compact_subsumed(self, group: dict) -> int:
        removed = 0
        for candidate in list(group.values()):
            if candidate.original or candidate.restrictions not in group:
                continue
            for other in list(group.values()):
                if other is candidate:
                    continue
                if _generalizes(
                    other.restrictions, candidate.restrictions
                ) and _covers_supports(other, candidate):
                    del group[candidate.restrictions]
                    removed += 1
                    break
        return removed

    def _fold_group(
        self,
        key: tuple[str, int],
        group: dict,
        max_per_condition: int,
        on_transfer,
    ) -> int:
        removed = 0
        while len(group) > max(max_per_condition, 1):
            derived = [p for p in group.values() if not p.original]
            if not derived:
                break
            victim = min(
                derived,
                key=lambda p: (
                    sum(len(b) for b in p.supports.values()),
                    repr(p.restrictions),
                ),
            )
            target = self._most_general_cover(group, victim)
            if target is None:
                break
            for rce_index, bucket in victim.supports.items():
                if not bucket:
                    continue
                target.supports.setdefault(rce_index, set()).update(bucket)
                if on_transfer is not None:
                    on_transfer(target, rce_index, frozenset(bucket))
            # The target's counters now over-claim joinability for the
            # victim's narrower bindings; flag it so mark-based pruning
            # stops trusting them (completeness over precision).
            target.approximate = True
            del group[victim.restrictions]
            removed += 1
        return removed

    @staticmethod
    def _most_general_cover(group: dict, victim: PatternTuple):
        covers = [
            p
            for p in group.values()
            if p is not victim
            and _generalizes(p.restrictions, victim.restrictions)
        ]
        if not covers:
            return None
        # Fewest pinned constants = most general; originals win ties.
        return min(
            covers,
            key=lambda p: (
                sum(
                    1
                    for slot in p.restrictions
                    if slot is not None and slot[0] == "const"
                ),
                not p.original,
            ),
        )

    # -- bindings / display ---------------------------------------------------------

    def pattern_bindings(
        self, condition: AnalyzedCondition, pattern: PatternTuple
    ) -> dict[str, Value]:
        """Variable bindings implied by the pattern's pinned slots."""
        template = template_restrictions(condition, self.schema)
        bindings: dict[str, Value] = {}
        for slot, original in zip(pattern.restrictions, template):
            if (
                slot is not None
                and slot[0] == "const"
                and original is not None
                and original[0] == "var"
            ):
                bindings[str(original[1])] = slot[1]
        return bindings

    def display_rows(
        self, negated_indices_of: dict[str, frozenset[int]]
    ) -> list[dict[str, str]]:
        """All rows in the paper's table format, templates first."""
        rows: list[dict[str, str]] = []
        for (rid, _cen), group in sorted(self._groups.items()):
            negated = negated_indices_of.get(rid, frozenset())
            ordered = sorted(
                group.values(), key=lambda p: (not p.original, repr(p.restrictions))
            )
            for pattern in ordered:
                rows.append(pattern.display_row(self.schema, negated))
        return rows

    def cell_count(self) -> int:
        """Stored cells: one per attribute slot + RID/CEN/RCE/Mark columns."""
        per_row = self.schema.arity + 4
        return self.pattern_count() * per_row


def _generalizes(general: Restrictions, specific: Restrictions) -> bool:
    """True when every tuple matching *specific* also matches *general*."""
    for general_slot, specific_slot in zip(general, specific):
        if general_slot is None or general_slot[0] == "var":
            continue  # unconstrained (or variable) slot admits anything
        if general_slot != specific_slot:
            return False
    return True


def _covers_supports(general: PatternTuple, specific: PatternTuple) -> bool:
    """True when *general* carries at least *specific*'s support per mark."""
    for rce_index, bucket in specific.supports.items():
        if not bucket <= general.supports.get(rce_index, set()):
            return False
    return True


def make_stores(
    analyses: dict[str, RuleAnalysis],
    schemas: dict[str, RelationSchema],
    counters: Counters,
) -> dict[str, PatternStore]:
    """Build one store per class and install every condition's template."""
    stores: dict[str, PatternStore] = {}
    for analysis in analyses.values():
        for condition in analysis.conditions:
            store = stores.get(condition.class_name)
            if store is None:
                store = PatternStore(
                    condition.class_name,
                    schemas[condition.class_name],
                    counters,
                )
                stores[condition.class_name] = store
            store.add_template(analysis, condition)
    return stores
