"""The matching-pattern match strategy — the paper's core contribution (§4.2).

Matching a changed tuple is "a single search over a COND relation"; pattern
propagation then records, in the COND relations of the *related* condition
elements, which bindings are now joinable ("we are actually doing the join
in an incremental way").  A tuple matching patterns whose Marks cover every
related condition puts the rule into the conflict set.

Paper-mandated refinements implemented here:

* counters instead of Mark bits (§4.2.2) so deletions and multiply-supported
  patterns work — realized as *support sets* of contributing WM elements, so
  that a deletion withdraws exactly what the insertion contributed (the
  counter the paper describes is the set's size);
* inverted marks for negated condition elements (§4.2.2): their counter
  counts blockers and the mark is "set" while it is zero.

Exactness: a matching pattern "does not store pointers to ... the actual
tuples of the WM relations.  These tuples must be selected before executing
the RHS actions" (§5.1).  That selection runs immediately when a pattern
fires, so the conflict set always holds real, validated instantiations;
fired candidates that select zero combinations are counted as false drops
(the same failure economics the paper describes for POSTGRES markers in
§3.2, at a much lower rate).
"""

from __future__ import annotations

from repro.delta import INSERT, DeltaBatch
from repro.instrument import SpaceReport
from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.match.base import MatchStrategy
from repro.match.common import match_condition, result_to_instantiation
from repro.match.patterns.pattern import (
    PatternTuple,
    WmeKey,
    specialize,
    template_restrictions,
)
from repro.match.patterns.store import PatternStore, make_stores
from repro.storage.query import evaluate
from repro.storage.schema import Value
from repro.storage.tuples import StoredTuple


class MatchingPatternsStrategy(MatchStrategy):
    """§4.2: COND relations with matching patterns and mark counters."""

    strategy_name = "patterns"
    match_span_name = "match.pattern_propagation"

    def _prepare(self) -> None:
        self.stores: dict[str, PatternStore] = make_stores(
            self.analyses, self.wm.schemas, self.counters
        )
        # Compiled constant-test checkers (repro.match.compile), keyed by
        # condition identity; the interpreted per-call closure build stays
        # the reference path when compilation is off.
        self._checks: dict[int, object] = {}
        if self.compile_mode != "off":
            from repro.match.compile import compile_condition_checks

            self._checks = compile_condition_checks(
                self.analyses, self.wm.schemas, self.compile_mode
            )
            for store in self.stores.values():
                store.checks = self._checks
        self._by_class: dict[str, list[tuple[RuleAnalysis, AnalyzedCondition]]] = {}
        self._negated_indices: dict[str, frozenset[int]] = {}
        # (wme key) -> {(pattern, rce index)} reverse map for exact deletion.
        self._support_index: dict[WmeKey, set[tuple[PatternTuple, int]]] = {}
        # §4.2.3 parallelism accounting: per-event maintenance operations
        # grouped by target COND relation.  Propagation to distinct COND
        # relations is independent, so a parallel system's maintenance
        # makespan is the per-event *maximum* over relations, while a
        # serial one pays the sum.
        self.maintenance_serial_ops = 0
        self.maintenance_parallel_ops = 0
        self._event_profile: dict[str, int] = {}
        for analysis in self.analyses.values():
            self._negated_indices[analysis.name] = frozenset(
                c.index for c in analysis.conditions if c.negated
            )
            for condition in analysis.conditions:
                self._by_class.setdefault(condition.class_name, []).append(
                    (analysis, condition)
                )

    # -- WM change entry points ------------------------------------------------

    def on_insert(self, wme: StoredTuple) -> None:
        self._trace_match("insert", wme, self._insert_impl)

    def on_delete(self, wme: StoredTuple) -> None:
        self._trace_match("delete", wme, self._delete_impl)

    def _insert_impl(self, wme: StoredTuple) -> None:
        self._event_profile = {}
        seeded: list[tuple[RuleAnalysis, AnalyzedCondition, StoredTuple]] = []
        self._insert_maintenance(wme, seeded)
        self._close_event_profile()
        for analysis, condition, seed in seeded:
            self._select_seeded(analysis, condition, seed)

    def _delete_impl(self, wme: StoredTuple) -> None:
        self._event_profile = {}
        fired: dict[int, tuple[RuleAnalysis, AnalyzedCondition, PatternTuple]] = {}
        self._delete_maintenance(wme, fired)
        self._close_event_profile()
        for analysis, condition, pattern in fired.values():
            self._select_pattern(analysis, condition, pattern)

    def _apply_delta(self, batch: DeltaBatch) -> None:
        """Set-at-a-time maintenance (§4.2.3): one pass, deferred selection.

        Pattern maintenance runs per delta in batch order, but the §4.2.3
        parallelism profile closes once for the whole batch — maintenance
        targeting distinct COND relations anywhere in the batch is
        independent, so the batch is the paper's natural parallel unit.
        Act-time selections (§5.1) are collected during the pass and run
        once at the end, deduplicated; every selection evaluates against
        the post-batch working memory, so deferral cannot admit blocked or
        dead instantiations.
        """
        self._event_profile = {}
        seeded: list[tuple[RuleAnalysis, AnalyzedCondition, StoredTuple]] = []
        fired: dict[int, tuple[RuleAnalysis, AnalyzedCondition, PatternTuple]] = {}
        for delta in batch:
            if delta.op == INSERT:
                self._insert_maintenance(delta.wme, seeded)
            else:
                self._delete_maintenance(delta.wme, fired)
        self._close_event_profile()
        for analysis, condition, seed in seeded:
            self._select_seeded(analysis, condition, seed)
        for analysis, condition, pattern in fired.values():
            self._select_pattern(analysis, condition, pattern)

    def _insert_maintenance(
        self,
        wme: StoredTuple,
        seeded: list[tuple[RuleAnalysis, AnalyzedCondition, StoredTuple]],
    ) -> None:
        """COND-relation maintenance for one insertion.

        Selections earned by fired patterns are appended to *seeded* for the
        caller to run after maintenance settles.
        """
        for analysis, condition in self._by_class.get(wme.relation, []):
            store = self.stores[condition.class_name]
            matches = store.matches_of(condition, analysis.name, wme)
            if not matches:
                continue
            bindings = matches[0][1]
            if condition.negated:
                self._retract_blocked(analysis, condition, wme)
                self._propagate(
                    analysis,
                    store.template(analysis.name, condition.cond_number),
                    bindings,
                    contributor=(wme.relation, wme.tid),
                    check_compatibility=False,
                )
            else:
                patterns = [p for p, _ in matches]
                if self._union_full(analysis, condition, patterns):
                    seeded.append((analysis, condition, wme))
                for source in patterns:
                    self._propagate(
                        analysis,
                        source,
                        bindings,
                        contributor=(wme.relation, wme.tid),
                        check_compatibility=True,
                    )

    def _delete_maintenance(
        self,
        wme: StoredTuple,
        fired: dict[int, tuple[RuleAnalysis, AnalyzedCondition, PatternTuple]],
    ) -> None:
        """Support withdrawal for one deletion.

        Patterns whose inverted marks become full (a blocker vanished) are
        recorded in *fired* — keyed by pattern identity so a pattern
        transitioning repeatedly within one batch selects once.  On an
        *approximate* pattern (post-folding) the blocked→full transition
        test is unreliable — folded-in supports can keep unrelated marks
        non-zero — so any blocker withdrawal fires it; over-firing only
        costs a counted false drop because act-time selection is exact.
        """
        self.conflict_set.remove_wme(wme)
        contributor: WmeKey = (wme.relation, wme.tid)
        entries = self._support_index.pop(contributor, set())
        for pattern, rce_index in entries:
            analysis = self.analyses[pattern.rid]
            negated = self._negated_indices[pattern.rid]
            condition = analysis.conditions[pattern.index]
            was_full = pattern.is_full(negated)
            if not pattern.remove_support(rce_index, contributor):
                continue
            self.counters.patterns_updated += 1
            self._tally_maintenance(condition.class_name)
            if (
                rce_index in negated
                and not condition.negated
                and (
                    pattern.approximate
                    or (not was_full and pattern.is_full(negated))
                )
            ):
                fired[id(pattern)] = (analysis, condition, pattern)
            if pattern.all_zero() and not pattern.original:
                self.stores[condition.class_name].discard(pattern)

    # -- §4.2.3 parallelism accounting ------------------------------------------

    def _tally_maintenance(self, class_name: str) -> None:
        self._event_profile[class_name] = (
            self._event_profile.get(class_name, 0) + 1
        )

    def _close_event_profile(self) -> None:
        if not self._event_profile:
            return
        self.maintenance_serial_ops += sum(self._event_profile.values())
        self.maintenance_parallel_ops += max(self._event_profile.values())
        self._event_profile = {}

    def parallel_speedup_estimate(self) -> float:
        """Maintenance speedup if propagation to distinct COND relations
        ran in parallel (§4.2.3: "our scheme can be fully parallelized").

        Ratio of serial maintenance operations to the sum of per-event
        maxima over target relations; 1.0 when nothing was parallelizable.
        """
        if self.maintenance_parallel_ops == 0:
            return 1.0
        return self.maintenance_serial_ops / self.maintenance_parallel_ops

    # -- propagation (the maintenance process, §4.2.2 / §5) -------------------

    def _propagate(
        self,
        analysis: RuleAnalysis,
        source: PatternTuple,
        bindings: dict[str, Value],
        contributor: WmeKey,
        check_compatibility: bool,
    ) -> None:
        """Propagate one matched pattern's bindings to its related COND rows.

        For a positive source this records support; for a negated source
        (``check_compatibility=False``) it records a blocker.  Both create
        new matching patterns when the propagated bindings specialize an
        existing row.
        """
        negated = self._negated_indices[analysis.name]
        source_negated = source.index in negated
        for related_index in source.rce:
            related = analysis.conditions[related_index]
            if source_negated and related.negated:
                continue  # blockers only matter to positive conditions
            store = self.stores[related.class_name]
            desired = specialize(
                template_restrictions(related, store.schema), bindings
            )
            for target, merged in store.compatible_with(
                analysis.name, related.cond_number, desired
            ):
                if check_compatibility and not self._marks_compatible(
                    source, target, negated
                ):
                    continue
                if merged == target.restrictions:
                    adjusted = target
                else:
                    adjusted, created = store.find_or_create(target, merged)
                    if created:
                        self._register_copied_supports(adjusted)
                self._record(adjusted, source.index, contributor)

    def _record(
        self, pattern: PatternTuple, rce_index: int, contributor: WmeKey
    ) -> None:
        if pattern.add_support(rce_index, contributor):
            self.counters.patterns_updated += 1
            analysis = self.analyses[pattern.rid]
            self._tally_maintenance(
                analysis.conditions[pattern.index].class_name
            )
            self._support_index.setdefault(contributor, set()).add(
                (pattern, rce_index)
            )

    def _register_copied_supports(self, pattern: PatternTuple) -> None:
        """Index the contributors a freshly-created pattern inherited."""
        for rce_index, bucket in pattern.supports.items():
            for contributor in bucket:
                self._support_index.setdefault(contributor, set()).add(
                    (pattern, rce_index)
                )

    def _union_full(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        matched: list[PatternTuple],
    ) -> bool:
        """Fire gate: every positive related condition is supported by some
        matched pattern.

        A single pattern carrying all Marks (the paper's criterion) implies
        this, but support recorded on sibling specializations also counts —
        merging into an existing pattern does not re-copy marks, so the
        single-pattern test alone can miss completions.  Candidates passing
        this gate still go through exact act-time selection (§5.1), which
        also enforces negated conditions, so over-admission costs only a
        counted false drop.
        """
        negated = self._negated_indices[analysis.name]
        for related_index in analysis.related_conditions(condition.index):
            if related_index in negated:
                continue
            if not any(p.count(related_index) > 0 for p in matched):
                return False
        return True

    @staticmethod
    def _marks_compatible(
        source: PatternTuple, target: PatternTuple, negated: frozenset[int]
    ) -> bool:
        """§4.2.2: "each Mark bit must be set in T if the corresponding Mark
        bit is set in the matching tuple M" — over the third-party positive
        related conditions the two patterns share.

        A target made *approximate* by folding compaction carries inflated
        counters, so a set mark on it no longer proves binding-consistent
        support; pruning on it would lose completeness (a specialization
        the inflated mark suppresses may be the only row able to accept a
        later contributor's support).  Approximate targets are therefore
        always accepted — the cost is extra patterns and counted false
        drops, never a missed match.
        """
        if target.approximate:
            return True
        shared = set(source.rce) & set(target.rce)
        for index in shared:
            if index in negated:
                continue
            if target.count(index) > 0 and source.count(index) == 0:
                return False
        return True

    # -- act-time selection (§5.1) -----------------------------------------------

    def _select_seeded(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        """Select WM combinations for a fired pattern matched by *wme*."""
        found = False
        for result in evaluate(
            analysis.to_conjuncts(),
            self.wm.catalog,
            counters=self.counters,
            seed_index=condition.index,
            seed_row=wme,
        ):
            found = True
            self.conflict_set.add(result_to_instantiation(analysis, result))
        if not found:
            self.counters.false_drops += 1

    def _select_pattern(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        pattern: PatternTuple,
    ) -> None:
        """Select WM combinations within a pattern's pinned bindings."""
        store = self.stores[condition.class_name]
        seed_bindings = store.pattern_bindings(condition, pattern)
        found = False
        for result in evaluate(
            analysis.to_conjuncts(),
            self.wm.catalog,
            counters=self.counters,
            seed_bindings=seed_bindings,
        ):
            found = True
            self.conflict_set.add(result_to_instantiation(analysis, result))
        if not found:
            self.counters.false_drops += 1

    def _retract_blocked(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        wme: StoredTuple,
    ) -> None:
        """A new negated-condition witness retracts blocked instantiations."""
        schema = self.wm.schema(wme.relation)
        check = self._checks.get(id(condition))
        for instantiation in self.conflict_set.for_rule(analysis.name):
            env = match_condition(
                condition, schema, wme, instantiation.binding_map(),
                check=check,
            )
            if env is not None:
                self.conflict_set.remove(instantiation)

    # -- compaction (§4.2.3 future work) ---------------------------------------

    def compact(self, max_per_condition: int | None = None) -> int:
        """Compact the COND relations; returns the patterns removed.

        Without a cap only strictly-subsumed patterns go; with
        *max_per_condition* each condition's group is folded down to the
        cap, trading match precision (counted false drops) for space — see
        :meth:`repro.match.patterns.store.PatternStore.compact`.
        """

        def on_transfer(target: PatternTuple, rce_index: int, contributors) -> None:
            for contributor in contributors:
                self._support_index.setdefault(contributor, set()).add(
                    (target, rce_index)
                )

        return sum(
            store.compact(max_per_condition, on_transfer)
            for store in self.stores.values()
        )

    # -- display / accounting ------------------------------------------------------

    def explain(self, rule_name: str):
        """Base diagnosis enriched with the COND relations' mark state."""
        diagnosis = super().explain(rule_name)
        analysis = self.analyses[rule_name]
        negated = self._negated_indices[rule_name]
        for entry in diagnosis.conditions:
            condition = analysis.condition(entry.cond_number)
            store = self.stores[condition.class_name]
            group = store.group(rule_name, entry.cond_number)
            entry.detail["patterns"] = len(group)
            entry.detail["full_patterns"] = sum(
                1 for p in group if p.is_full(negated)
            )
            entry.detail["mark_bits"] = sorted(
                {p.mark_bits(negated) for p in group}
            )
        return diagnosis

    def cond_rows(self, class_name: str) -> list[dict[str, str]]:
        """The COND relation of *class_name* in the paper's table format."""
        return self.stores[class_name].display_rows(self._negated_indices)

    def describe(self) -> dict:
        """Base summary plus per-COND-relation pattern cardinalities —
        the pattern scheme's analogue of per-node Rete introspection."""
        description = super().describe()
        description["stores"] = {
            class_name: {
                "patterns": store.pattern_count(),
                "derived": store.derived_count(),
                "cells": store.cell_count(),
            }
            for class_name, store in sorted(self.stores.items())
        }
        description["maintenance"] = {
            "serial_ops": self.maintenance_serial_ops,
            "parallel_ops": self.maintenance_parallel_ops,
        }
        description["compile"] = {
            "mode": "on" if self._checks else "off",
            "checks": len(self._checks),
        }
        return description

    def space_report(self) -> SpaceReport:
        patterns = sum(store.pattern_count() for store in self.stores.values())
        derived = sum(store.derived_count() for store in self.stores.values())
        cells = sum(store.cell_count() for store in self.stores.values())
        return SpaceReport(
            strategy=self.strategy_name,
            wm_tuples=self.wm.size(),
            stored_tokens=0,
            stored_patterns=patterns,
            marker_entries=0,
            estimated_cells=cells,
            detail={
                "templates": patterns - derived,
                "derived_patterns": derived,
            },
        )
