"""Matching-pattern tuples (§4.2.1 of the paper).

Each tuple in a COND relation has: the Rule ID (RID), the Condition Element
Number (CEN), a restriction on each attribute of the corresponding WM
relation, the list of Related Condition Elements (RCE), and one Mark per
RCE.  "A tuple in a COND relation with at least one Mark bit set is called a
matching pattern" — it records that a tuple exists elsewhere that is
joinable with future arrivals matching the restrictions.

Marks are counters, as §4.2.2 recommends ("Mark bits can easily be replaced
by counters to record the number of contributing tuples"), and for a
*negated* related condition the sense is inverted (§4.2.2): the counter
counts blockers and the mark is satisfied while it is zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.analysis import AnalyzedCondition
from repro.storage.schema import RelationSchema, Value

#: One attribute restriction: a pinned constant, a still-free variable, or
#: a don't-care (the paper's ``*``).
Slot = tuple[str, object] | None  # ("const", value) | ("var", name) | None

Restrictions = tuple[Slot, ...]


def template_restrictions(
    condition: AnalyzedCondition, schema: RelationSchema
) -> Restrictions:
    """The original (unspecialized) restriction row for *condition*.

    Equality constants pin slots; ``=``-variables occupy slots as free
    variables; everything else (don't-cares, operator tests, residual
    variable tests) renders as don't-care here — those tests still apply,
    via the condition itself, whenever a tuple is matched against the
    pattern.
    """
    slots: list[Slot] = [None] * schema.arity
    from repro.storage.predicate import And, Comparison, TruePredicate

    def visit(predicate) -> None:
        if isinstance(predicate, Comparison) and predicate.op == "=":
            slots[schema.position(predicate.attribute)] = (
                "const",
                predicate.value,
            )
        elif isinstance(predicate, And):
            for part in predicate.parts:
                visit(part)

    visit(condition.constant_predicate)
    for attribute, variable in condition.equalities:
        position = schema.position(attribute)
        if slots[position] is None:
            slots[position] = ("var", variable)
    return tuple(slots)


def specialize(
    restrictions: Restrictions, bindings: dict[str, Value]
) -> Restrictions:
    """Pin variable slots whose variable is bound in *bindings*."""
    result: list[Slot] = []
    for slot in restrictions:
        if slot is not None and slot[0] == "var" and slot[1] in bindings:
            result.append(("const", bindings[slot[1]]))
        else:
            result.append(slot)
    return tuple(result)


def merge(left: Restrictions, right: Restrictions) -> Restrictions | None:
    """Unify two specializations of the same template.

    Returns the most specific combination, or ``None`` when two pinned
    constants disagree.
    """
    merged: list[Slot] = []
    for a, b in zip(left, right):
        if a == b:
            merged.append(a)
        elif a is not None and a[0] == "const":
            if b is not None and b[0] == "const" and a[1] != b[1]:
                return None
            merged.append(a)
        elif b is not None and b[0] == "const":
            merged.append(b)
        else:
            # var vs None, or var vs var — same template, so identical apart
            # from const pinning; keep the more specific description.
            merged.append(a if a is not None else b)
    return tuple(merged)


def slot_display(slot: Slot) -> str:
    """Render one slot the way the paper's tables print it."""
    if slot is None:
        return "*"
    kind, value = slot
    if kind == "var":
        return f"<{value}>"
    return "nil" if value is None else str(value)


#: Identity of a contributing WM element: (relation, tid).
WmeKey = tuple[str, int]


@dataclass(eq=False)
class PatternTuple:
    """One row of a COND relation in the matching-pattern scheme.

    Attributes:
        rid: Rule ID.
        cen: 1-based Condition Element Number within the rule.
        index: 0-based condition index (``cen - 1``).
        restrictions: Per-attribute restriction slots.
        rce: 0-based indices of the related condition elements.
        supports: Per-related-condition sets of contributing WM elements.
            §4.2.2's counters "record the number of contributing tuples";
            recording the contributors themselves makes deletion exact: a
            "−" token removes precisely the support its "+" token added,
            regardless of which propagation paths have appeared since.  The
            paper's counter is ``len(supports[k])``; the Mark bit is
            ``len > 0`` for a positive related condition and ``len == 0``
            (no blockers) for a negated one.
        original: True for the row created at rule-compilation time (these
            are never garbage-collected).
        approximate: True once folding compaction has unioned a narrower
            sibling's supports into this row.  The counters then over-claim
            joinability for bindings the contributor only supported more
            narrowly, so mark-based *pruning* decisions (the §4.2.2
            compatibility check, the unblock-transition test) must not
            trust them — see ``PatternStore.compact``.  Copies made from an
            approximate row inherit the flag.
    """

    rid: str
    cen: int
    restrictions: Restrictions
    rce: tuple[int, ...]
    supports: dict[int, set[WmeKey]] = field(default_factory=dict)
    original: bool = False
    approximate: bool = False

    @property
    def index(self) -> int:
        return self.cen - 1

    def count(self, rce_index: int) -> int:
        """The paper's Mark counter for one related condition."""
        return len(self.supports.get(rce_index, ()))

    def add_support(self, rce_index: int, contributor: WmeKey) -> bool:
        """Record a contributing element; returns False when already known."""
        bucket = self.supports.setdefault(rce_index, set())
        if contributor in bucket:
            return False
        bucket.add(contributor)
        return True

    def remove_support(self, rce_index: int, contributor: WmeKey) -> bool:
        """Withdraw a contributor; returns False when it was not recorded."""
        bucket = self.supports.get(rce_index)
        if bucket is None or contributor not in bucket:
            return False
        bucket.discard(contributor)
        return True

    def mark_bits(self, negated_indices: frozenset[int]) -> str:
        """Render the Mark column as the paper does ("10", "11", ...)."""
        bits = []
        for rce_index in self.rce:
            count = self.count(rce_index)
            if rce_index in negated_indices:
                bits.append("1" if count == 0 else "0")
            else:
                bits.append("1" if count > 0 else "0")
        return "".join(bits)

    def is_full(self, negated_indices: frozenset[int]) -> bool:
        """All marks set: every positive RCE supported, no negated blocked."""
        for rce_index in self.rce:
            count = self.count(rce_index)
            if rce_index in negated_indices:
                if count > 0:
                    return False
            elif count == 0:
                return False
        return True

    def blocks(self, negated_indices: frozenset[int]) -> bool:
        """True when some negated related condition currently has a witness."""
        return any(
            self.count(rce_index) > 0
            for rce_index in self.rce
            if rce_index in negated_indices
        )

    def all_zero(self) -> bool:
        """No support left from any related condition."""
        return all(not bucket for bucket in self.supports.values())

    def display_row(
        self, schema: RelationSchema, negated_indices: frozenset[int]
    ) -> dict[str, str]:
        """One table row in the paper's format."""
        row = {"RID": self.rid, "CEN": str(self.cen)}
        for attribute, slot in zip(schema.attributes, self.restrictions):
            row[attribute] = slot_display(slot)
        row["RCE"] = ",".join(str(i + 1) for i in self.rce)
        row["Mark"] = self.mark_bits(negated_indices)
        return row
