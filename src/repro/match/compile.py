"""Attach-time rule compilation: join plans and specialized kernels.

The interpreted match stack evaluates alpha tests by walking predicate
AST closures (:func:`repro.storage.predicate.compile_predicate`) and join
tests by dispatching :class:`~repro.match.rete.runtime.JoinTest` records
per candidate pair.  This module lowers both at *attach* time:

* :func:`compile_alpha_test` fuses a whole constant-test conjunction into
  one ``compile()``-generated code object over the row tuple — positions
  resolved, equality and membership inlined (``compare("=", a, b)`` is
  exactly ``a == b`` over the value domain: a string never equals a
  non-string under either), ordering guarded by the same ``_orderable``
  rules as :func:`~repro.storage.predicate.compare`.
* :func:`plan_join` splits a node's join tests into the *equality subset*
  (hash-indexable — ``compare("=")`` agrees with dict-key equality, the
  invariant ``NegativeNode.hash_eligible`` already relies on) and the
  *residual*, ordered by operator selectivity, and rejects any plan that
  would exceed the CORGI-style quadratic per-probe envelope
  (:class:`PlanBoundError`).
* :class:`JoinKernel` executes a plan over the columnar memories: one
  hash build over the opposing memory's value columns plus one probe per
  token — O(T + R + output) instead of the O(T × R) interpreted scan —
  with residual tests filtered inside each bucket.  Pair order is
  bit-identical to the interpreted nested loop (token-major on LEFT
  activations, element-major on RIGHT; buckets preserve memory insertion
  order), which is what keeps compiled and interpreted modes
  snapshot-equal.

Interpreted mode stays the reference: a network built with
``compile_mode="off"`` never touches this module, and ``"auto"`` falls
back per node when a kernel cannot be built.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.storage.predicate import (
    And,
    AttributeComparison,
    Comparison,
    Membership,
    Not,
    Or,
    Predicate,
    TruePredicate,
    compare,
)
from repro.storage.schema import RelationSchema

#: Recognized ``--compile`` modes.
COMPILE_MODES = ("off", "on", "auto")

#: The CORGI-style envelope: no per-probe plan may cost more than
#: O(T × R) — the interpreted nested scan.  Hash-keyed plans are linear.
MAX_COST_EXPONENT = 2

#: Deterministic selectivity rank per operator, best first: equality keys
#: the hash index; orderings halve on average; ``<>`` barely filters.
_SELECTIVITY = {"=": 0, "<": 1, ">": 1, "<=": 2, ">=": 2, "<>": 3}


class PlanBoundError(Exception):
    """A join plan violates the quadratic worst-case envelope."""


class CompileError(Exception):
    """A rule could not be lowered to a kernel (``--compile on`` only)."""


# ---------------------------------------------------------------------------
# Join planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinPlan:
    """An executable ordering of one two-input node's join tests.

    ``level`` is the LEFT memory's level (condition elements covered by
    its tokens); a test ``levels_up`` above the candidate reads the LEFT
    slot column ``level - levels_up``.
    """

    level: int
    eq_tests: tuple
    residual: tuple

    @property
    def kind(self) -> str:
        """``hash`` (keyed probe), ``nested`` (scan), or ``cross``."""
        if self.eq_tests:
            return "hash"
        return "nested" if self.residual else "cross"

    @property
    def cost_exponent(self) -> int:
        """Per-probe cost as the exponent of O((T + R)^e).

        Hash-keyed and cross-product plans are output-linear (1); a
        residual-only plan scans every pair (2); any test reaching above
        the LEFT memory's level cannot be answered from the slot columns
        and would force a per-pair chain walk (+1) — those plans are
        rejected by :func:`validate_plan`.
        """
        exponent = 1 if (self.eq_tests or not self.residual) else 2
        if any(
            test.levels_up > self.level
            for test in (*self.eq_tests, *self.residual)
        ):
            exponent += 1
        return exponent

    def describe(self) -> dict:
        """JSON-ready plan summary for ``ReteNetwork.describe()``."""
        return {
            "kind": self.kind,
            "eq": len(self.eq_tests),
            "residual": [test.key() for test in self.residual],
            "cost_exponent": self.cost_exponent,
        }


def validate_plan(plan: JoinPlan) -> JoinPlan:
    """Reject *plan* unless it fits the quadratic envelope."""
    if plan.cost_exponent > MAX_COST_EXPONENT:
        raise PlanBoundError(
            f"join plan exceeds the O(n^{MAX_COST_EXPONENT}) bound "
            f"(cost exponent {plan.cost_exponent}): eq={plan.eq_tests} "
            f"residual={plan.residual} at level {plan.level}"
        )
    return plan


def plan_join(tests: tuple, level: int) -> JoinPlan:
    """Order *tests* by selectivity into a validated :class:`JoinPlan`.

    Equality tests form the hash key (sorted by their canonical key for
    determinism); the residual runs inside each bucket, most selective
    operator first.
    """
    eq = tuple(
        sorted((t for t in tests if t.op == "="), key=lambda t: t.key())
    )
    residual = tuple(
        sorted(
            (t for t in tests if t.op != "="),
            key=lambda t: (_SELECTIVITY.get(t.op, 9), t.key()),
        )
    )
    return validate_plan(JoinPlan(level=level, eq_tests=eq, residual=residual))


# ---------------------------------------------------------------------------
# Join kernels
# ---------------------------------------------------------------------------


class JoinKernel:
    """Executes one :class:`JoinPlan` over columnar LEFT/RIGHT memories.

    Comparison accounting: building a hash key costs one counted
    comparison per equality test per element (the ``_witness_key``
    precedent), and each evaluated residual test costs one — so a keyed
    probe counts O((T + R)·eq + candidates·residual) dispatches where the
    interpreted scan counts O(T·R·tests).
    """

    __slots__ = ("plan", "label", "_eq", "_res", "_all", "_n_eq")

    def __init__(self, plan: JoinPlan) -> None:
        self.plan = plan
        self.label = plan.kind
        level = plan.level
        # spec: (left slot column, other position, own position, op, levels_up)
        self._eq = tuple(
            (level - t.levels_up, t.other_position, t.own_position, t.op,
             t.levels_up)
            for t in plan.eq_tests
        )
        self._res = tuple(
            (level - t.levels_up, t.other_position, t.own_position, t.op,
             t.levels_up)
            for t in plan.residual
        )
        self._all = self._eq + self._res
        self._n_eq = len(self._eq)

    # -- shared key/test primitives ----------------------------------------

    def token_key(self, bmem, row: int, counters) -> tuple | None:
        """The LEFT token's values at the tested slots (``None``: no key).

        A ``None`` ancestor slot (negated CE upstream) fails every join
        test, so such a token can match nothing at all.
        """
        key = []
        for slot, other_pos, _own, _op, _u in self._eq:
            counters.comparisons += 1
            other = bmem.slot_column(slot)[row]
            if other is None:
                return None
            key.append(other.values[other_pos])
        return tuple(key)

    def wme_eq_key(self, values: tuple, counters) -> tuple:
        """The RIGHT element's values at the equality-tested positions."""
        counters.comparisons += self._n_eq
        return tuple(values[own] for _s, _o, own, _op, _u in self._eq)

    def residual_ok(self, bmem, row: int, values: tuple, counters) -> bool:
        for slot, other_pos, own_pos, op, _u in self._res:
            counters.comparisons += 1
            other = bmem.slot_column(slot)[row]
            if other is None:
                return False
            if not compare(op, values[own_pos], other.values[other_pos]):
                return False
        return True

    def pair_test(self, token, wme, counters) -> bool:
        """Fused per-pair test for the tuple-at-a-time paths.

        Walks the token chain like the interpreted ``_run_join_tests``
        but over the precompiled, selectivity-ordered spec tuples.
        """
        values = wme.values
        for _slot, other_pos, own_pos, op, levels_up in self._all:
            counters.comparisons += 1
            other = token.ancestor(levels_up - 1).wme
            if other is None:
                return False
            if op == "=":
                if values[own_pos] != other.values[other_pos]:
                    return False
            elif not compare(op, values[own_pos], other.values[other_pos]):
                return False
        return True

    def _right_index(self, amem, counters) -> dict:
        """Hash-build over the RIGHT memory's equality value columns."""
        rows = list(amem.rows())
        counters.comparisons += self._n_eq * len(rows)
        columns = [amem.column(own) for _s, _o, own, _op, _u in self._eq]
        wme_at = amem.wme_at
        index: dict[tuple, list] = {}
        for row in rows:
            key = tuple(column[row] for column in columns)
            index.setdefault(key, []).append(wme_at(row))
        return index

    # -- join-node probes ---------------------------------------------------

    def probe_left(self, node, tokens: list, counters) -> list:
        """Token-major pairs for a LEFT token-set arrival."""
        bmem, amem = node.bmem, node.amem
        pairs: list = []
        if self._n_eq:
            index = self._right_index(amem, counters)
            for token in tokens:
                row = bmem.row_of(token)
                key = self.token_key(bmem, row, counters)
                if key is None:
                    continue
                bucket = index.get(key)
                if not bucket:
                    continue
                if self._res:
                    pairs.extend(
                        (token, wme)
                        for wme in bucket
                        if self.residual_ok(bmem, row, wme.values, counters)
                    )
                else:
                    pairs.extend((token, wme) for wme in bucket)
            return pairs
        rights = amem.wmes()
        if not self._res:
            return [(token, wme) for token in tokens for wme in rights]
        for token in tokens:
            row = bmem.row_of(token)
            pairs.extend(
                (token, wme)
                for wme in rights
                if self.residual_ok(bmem, row, wme.values, counters)
            )
        return pairs

    def probe_right(self, node, wmes: list, counters) -> list:
        """Element-major pairs for a RIGHT token-set arrival."""
        bmem = node.bmem
        pairs: list = []
        if self._n_eq:
            index: dict[tuple, list] = {}
            for token, row in bmem.row_items():
                key = self.token_key(bmem, row, counters)
                if key is not None:
                    index.setdefault(key, []).append((token, row))
            for wme in wmes:
                values = wme.values
                bucket = index.get(self.wme_eq_key(values, counters))
                if not bucket:
                    continue
                if self._res:
                    pairs.extend(
                        (token, wme)
                        for token, row in bucket
                        if self.residual_ok(bmem, row, values, counters)
                    )
                else:
                    pairs.extend((token, wme) for token, _row in bucket)
            return pairs
        lefts = list(bmem.row_items())
        if not self._res:
            return [(token, wme) for wme in wmes for token, _row in lefts]
        for wme in wmes:
            values = wme.values
            pairs.extend(
                (token, wme)
                for token, row in lefts
                if self.residual_ok(bmem, row, values, counters)
            )
        return pairs

    # -- negative-node witness maintenance ----------------------------------

    def witness_lists(self, node, tokens: list, counters) -> list:
        """Per-token witness candidates for a LEFT token-set arrival."""
        bmem, amem = node.bmem, node.amem
        lists: list = []
        if self._n_eq:
            index = self._right_index(amem, counters)
            for token in tokens:
                row = bmem.row_of(token)
                key = self.token_key(bmem, row, counters)
                bucket = index.get(key, ()) if key is not None else ()
                if bucket and self._res:
                    bucket = [
                        wme
                        for wme in bucket
                        if self.residual_ok(bmem, row, wme.values, counters)
                    ]
                lists.append(bucket)
            return lists
        rights = amem.wmes()
        for token in tokens:
            row = bmem.row_of(token)
            lists.append(
                [
                    wme
                    for wme in rights
                    if self.residual_ok(bmem, row, wme.values, counters)
                ]
                if self._res
                else rights
            )
        return lists

    def index_right(self, wmes: list, counters) -> dict | None:
        """Bucket an incoming RIGHT set by equality key (``None``: no eq)."""
        if not self._n_eq:
            return None
        buckets: dict[tuple, list] = {}
        for wme in wmes:
            buckets.setdefault(
                self.wme_eq_key(wme.values, counters), []
            ).append(wme)
        return buckets

    def bucket_hits(self, node, token, buckets, wmes: list, counters) -> list:
        """The incoming RIGHT elements that witness *token*."""
        bmem = node.bmem
        row = bmem.row_of(token)
        if buckets is not None:
            key = self.token_key(bmem, row, counters)
            candidates = buckets.get(key, ()) if key is not None else ()
        else:
            candidates = wmes
        if not self._res:
            return candidates
        return [
            wme
            for wme in candidates
            if self.residual_ok(bmem, row, wme.values, counters)
        ]


# ---------------------------------------------------------------------------
# Alpha-test compilation
# ---------------------------------------------------------------------------

_ORDERING_PYOPS = {"<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _const_ref(value, consts: list) -> str:
    consts.append(value)
    return f"_K[{len(consts) - 1}]"


def _predicate_expr(
    predicate: Predicate, schema: RelationSchema, consts: list
) -> str:
    """One Python expression equivalent to *predicate* over row tuple ``v``."""
    if isinstance(predicate, TruePredicate):
        return "True"
    if isinstance(predicate, Comparison):
        slot = f"v[{schema.position(predicate.attribute)}]"
        value = predicate.value
        if predicate.op == "=":
            return f"({slot} == {_const_ref(value, consts)})"
        if predicate.op == "<>":
            return f"({slot} != {_const_ref(value, consts)})"
        pyop = _ORDERING_PYOPS[predicate.op]
        if value is None:
            return "False"  # ordering against nil never holds
        if isinstance(value, (int, float)):
            return (
                f"(isinstance({slot}, (int, float)) and "
                f"{slot} {pyop} {_const_ref(value, consts)})"
            )
        return (
            f"({slot} is not None and not isinstance({slot}, (int, float)) "
            f"and {slot} {pyop} {_const_ref(value, consts)})"
        )
    if isinstance(predicate, Membership):
        slot = f"v[{schema.position(predicate.attribute)}]"
        return f"({slot} in {_const_ref(tuple(predicate.values), consts)})"
    if isinstance(predicate, AttributeComparison):
        left = f"v[{schema.position(predicate.left)}]"
        right = f"v[{schema.position(predicate.right)}]"
        if predicate.op == "=":
            return f"({left} == {right})"
        if predicate.op == "<>":
            return f"({left} != {right})"
        return f"_compare({predicate.op!r}, {left}, {right})"
    if isinstance(predicate, And):
        if not predicate.parts:
            return "True"
        return "(" + " and ".join(
            _predicate_expr(part, schema, consts) for part in predicate.parts
        ) + ")"
    if isinstance(predicate, Or):
        if not predicate.parts:
            return "False"
        return "(" + " or ".join(
            _predicate_expr(part, schema, consts) for part in predicate.parts
        ) + ")"
    if isinstance(predicate, Not):
        return f"(not {_predicate_expr(predicate.part, schema, consts)})"
    raise CompileError(f"cannot lower predicate {predicate!r}")


def compile_alpha_test(
    predicate: Predicate, schema: RelationSchema
) -> Callable[[tuple], bool]:
    """Fuse a constant-test conjunction into one generated code object.

    Equality and membership are inlined as plain ``==`` / ``in`` (exactly
    :func:`compare`'s ``=`` over the value domain); ordering against a
    constant is specialized on the constant's type, reproducing the
    ``_orderable`` guard.  The interpreted closure chain this replaces
    costs one Python call per predicate node per row.
    """
    consts: list = []
    expression = _predicate_expr(predicate, schema, consts)
    source = f"lambda v: {expression}"
    namespace = {
        "_compare": compare,
        "_K": tuple(consts),
        "isinstance": isinstance,
        "int": int,
        "float": float,
        "__builtins__": {},
    }
    return eval(compile(source, "<repro.match.compile>", "eval"), namespace)


def compile_condition_checks(
    analyses: dict, schemas: dict[str, RelationSchema], mode: str = "auto"
) -> dict[int, Callable[[tuple], bool]]:
    """Compiled constant-predicate checkers for every rule condition.

    Keyed by ``id(condition)`` — callers must keep *analyses* alive for
    the mapping's lifetime (strategies hold them for exactly that long).
    Used by the matching-patterns strategy so ``match_condition`` stops
    re-deriving the checker per element.
    """
    checks: dict[int, Callable[[tuple], bool]] = {}
    for analysis in analyses.values():
        for condition in analysis.conditions:
            schema = schemas[condition.class_name]
            try:
                checks[id(condition)] = compile_alpha_test(
                    condition.constant_predicate, schema
                )
            except Exception as error:
                if mode == "on":
                    raise CompileError(
                        f"rule {analysis.name!r} condition "
                        f"{condition.index}: {error}"
                    ) from error
    return checks


# ---------------------------------------------------------------------------
# Network attachment
# ---------------------------------------------------------------------------


def attach_network_kernels(network, mode: str = "auto") -> dict:
    """Compile alpha tests and two-input kernels onto a built network.

    Returns (and stores as ``network.compile_summary``) a summary dict:
    ``mode`` is the resolved mode (``"on"`` once anything compiled),
    ``kernels``/``alpha`` count compiled nodes, ``ns`` the attach-time
    compilation cost (the ``rete.kernel_ns`` metric).  Under ``"auto"``
    a node that fails to compile silently keeps its interpreted path;
    under ``"on"`` the failure raises :class:`CompileError`.
    """
    summary = {"mode": "off", "kernels": 0, "alpha": 0, "ns": 0}
    network.compile_summary = summary
    if mode == "off":
        return summary
    if mode not in COMPILE_MODES:
        raise ValueError(f"unknown compile mode {mode!r}")
    started = time.perf_counter_ns()
    for amem in network.alpha_memories:
        predicate = getattr(amem, "predicate", None)
        schema = getattr(amem, "schema", None)
        if predicate is None or schema is None:
            if mode == "on":
                raise CompileError(
                    f"alpha memory {amem.name} carries no predicate AST"
                )
            continue
        try:
            amem.test = compile_alpha_test(predicate, schema)
            summary["alpha"] += 1
        except Exception as error:
            if mode == "on":
                raise CompileError(
                    f"alpha memory {amem.name}: {error}"
                ) from error
    for node in (*network.join_nodes, *network.negative_nodes):
        try:
            plan = plan_join(node.tests, node.bmem.level)
            node.kernel = JoinKernel(plan)
            node.plan = plan
            summary["kernels"] += 1
        except Exception as error:
            if mode == "on":
                raise CompileError(f"node {node.name}: {error}") from error
    summary["ns"] = time.perf_counter_ns() - started
    summary["mode"] = "on"
    return summary
