"""Match strategies: the paper's rule-indexing schemes.

===================  ==========================================
Strategy             Paper section
===================  ==========================================
Rete network         §3.1 (OPS5); ``ReteStrategy``
DBMS Rete            §3.2 (persisted memories); ``DbmsReteStrategy``
Shared (MQO) Rete    §3.2/§6 future work; ``SharedReteStrategy``
Simplified queries   §4.1; ``SimplifiedStrategy``
Matching patterns    §4.2 (the contribution); ``MatchingPatternsStrategy``
Tuple markers        §2.3/§3.2 (POSTGRES); ``BasicLockingStrategy``
===================  ==========================================
"""

from repro.match.base import MatchStrategy
from repro.match.markers import BasicLockingStrategy, PredicateIndexingStrategy
from repro.match.patterns import MatchingPatternsStrategy
from repro.match.query import IndexedSimplifiedStrategy, SimplifiedStrategy
from repro.match.rete import DbmsReteStrategy, ReteStrategy, SharedReteStrategy

#: All strategy classes, keyed by their ``strategy_name``.
STRATEGIES = {
    cls.strategy_name: cls
    for cls in (
        ReteStrategy,
        SharedReteStrategy,
        DbmsReteStrategy,
        SimplifiedStrategy,
        IndexedSimplifiedStrategy,
        MatchingPatternsStrategy,
        BasicLockingStrategy,
        PredicateIndexingStrategy,
    )
}

__all__ = [
    "BasicLockingStrategy",
    "DbmsReteStrategy",
    "IndexedSimplifiedStrategy",
    "MatchStrategy",
    "MatchingPatternsStrategy",
    "PredicateIndexingStrategy",
    "ReteStrategy",
    "STRATEGIES",
    "SharedReteStrategy",
    "SimplifiedStrategy",
]
