"""Helpers shared by the query, pattern and marker strategies."""

from __future__ import annotations

from repro.engine.conflict import Instantiation
from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.storage.predicate import compare, compile_predicate
from repro.storage.query import QueryResult
from repro.storage.schema import RelationSchema, Value
from repro.storage.tuples import StoredTuple

Bindings = dict[str, Value]


def match_condition(
    condition: AnalyzedCondition,
    schema: RelationSchema,
    wme: StoredTuple,
    bindings: Bindings | None = None,
    check=None,
) -> Bindings | None:
    """Match one WM element against one condition element.

    Checks the constant tests, unifies ``=``-variables (consistently with
    *bindings* and with repeated occurrences inside the element), and checks
    residual tests whose variable is already bound (by *bindings* or within
    this element).  Residual tests on variables bound only by *other*
    condition elements are skipped — they are join conditions, to be checked
    when combinations are formed.

    *check* overrides the constant-test evaluator — callers with a cached
    (or compiled, :mod:`repro.match.compile`) checker skip the per-call
    :func:`compile_predicate` closure build.

    Returns the extended bindings on success, ``None`` on failure.
    """
    if check is None:
        check = compile_predicate(condition.constant_predicate, schema)
    if not check(wme.values):
        return None
    env: Bindings = dict(bindings or {})
    for attribute, variable in condition.equalities:
        value = wme.values[schema.position(attribute)]
        if variable in env:
            if not compare("=", env[variable], value):
                return None
        else:
            env[variable] = value
    for test in condition.residual:
        if test.variable not in env:
            continue  # a join condition; checked at combination time
        value = wme.values[schema.position(test.attribute)]
        if not compare(test.op, value, env[test.variable]):
            return None
    return env


def result_to_instantiation(
    analysis: RuleAnalysis, result: QueryResult
) -> Instantiation:
    """Convert a query result over a rule's conjuncts to an instantiation."""
    return Instantiation(
        rule_name=analysis.name,
        wmes=result.rows,
        bindings=result.bindings,
        salience=analysis.rule.salience,
    )
