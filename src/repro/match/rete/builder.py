"""Compiling rules into a Rete network.

Two modes:

* ``share=False`` — the naive OPS5 compilation of §3.1/Figure 3: each rule
  gets its own alpha tests and its own join chain.
* ``share=True``  — the multiple-query-optimized network §3.2/§6 call for:
  alpha memories are shared by (class, tests) and join chains are shared by
  common prefix, so "multiple relation accesses" for common sub-conditions
  are avoided.

Join order follows LHS order, as OPS5's compiler does; variable tests are
placed at the first level where both endpoints are bound.  Memories can be
mirrored into storage-engine relations (the LEFT/RIGHT relations of the
§3.2 DBMS implementation) by passing a mirror catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.delta import DeltaBatch
from repro.engine.conflict import ConflictSet
from repro.errors import RuleError
from repro.instrument import Counters
from repro.lang.analysis import AnalyzedCondition, RuleAnalysis
from repro.match.rete.runtime import (
    AlphaMemory,
    BetaMemory,
    JoinNode,
    JoinTest,
    MemoryMirror,
    NegativeNode,
    ProductionNode,
    ReteRuntime,
)
from repro.parallel.pool import merge_counters
from repro.parallel.shard import hash_shards
from repro.storage.catalog import Catalog
from repro.storage.predicate import (
    AttributeComparison,
    Predicate,
    conjunction,
    compile_predicate,
    reverse_operator,
)
from repro.storage.schema import RelationSchema
from repro.storage.tuples import StoredTuple


@dataclass
class ReteNetwork:
    """A compiled network plus its runtime state."""

    counters: Counters
    runtime: ReteRuntime
    conflict_set: ConflictSet
    top: BetaMemory
    alpha_by_class: dict[str, list[AlphaMemory]] = field(default_factory=dict)
    alpha_memories: list[AlphaMemory] = field(default_factory=list)
    beta_memories: list[BetaMemory] = field(default_factory=list)
    join_nodes: list[JoinNode] = field(default_factory=list)
    negative_nodes: list[NegativeNode] = field(default_factory=list)
    production_nodes: list[ProductionNode] = field(default_factory=list)
    mirrors: list[MemoryMirror] = field(default_factory=list)
    mirror_catalog: Catalog | None = None
    #: Attach-time compilation summary (``repro.match.compile``); stays
    #: ``{"mode": "off", ...}``-shaped or ``None`` for interpreted networks.
    compile_summary: dict | None = None
    #: Per-rule join chain, recorded at compile time: one
    #: ``(condition, alpha_memory, two_input_node)`` triple per condition
    #: element, in LHS order.  The chain is *static* in this network (one
    #: linear chain per rule, joins in LHS order), which is what lets
    #: lineage capture (:mod:`repro.obs.xray`) reconstruct a token's join
    #: path without tagging any token on the hot path.
    rule_chains: dict[str, list[tuple]] = field(default_factory=dict)

    def insert(self, wme: StoredTuple) -> None:
        """Propagate a "+" token through the network."""
        self.counters.tokens += 1
        for amem in self.alpha_by_class.get(wme.relation, ()):
            if amem.try_activate(wme):
                self.runtime.register_alpha(wme, amem)

    def remove(self, wme: StoredTuple) -> None:
        """Propagate a "−" token: retract everything built on *wme*."""
        self.counters.tokens += 1
        self.runtime.remove_wme(wme)

    def apply_batch(self, batch: DeltaBatch) -> None:
        """Propagate a whole delta batch set-at-a-time (§4.2.3 for Rete).

        The batch is netted first (an element born and destroyed inside
        one batch never touches a join), then propagated in two phases:

        1. every "−" token retracts its token tree; negative-node unblocks
           are deferred and re-propagated as *sets* once all deletes ran;
        2. "+" tokens flow as one token set per WM class — each alpha
           memory filters the set in bulk and each successor join probes
           its opposing memory once for the whole admitted set.

        Mirrored LEFT/RIGHT relations buffer their writes for the duration
        and flush through ``insert_many``/``delete_many`` in one catalog
        transaction.  The final network state (memories, witness sets,
        conflict set) equals the tuple-at-a-time result: deltas of distinct
        elements commute, and each probe joins a consistent snapshot of the
        opposing memory, so every cross pair of the batch's own deltas is
        produced exactly once (the semi-naive two-sided delta-join
        argument; see ``docs/ALGORITHMS.md`` §8).

        Under a worker pool (``runtime.pool``) the insert phase's alpha
        masks are precomputed in parallel (:meth:`_parallel_alpha_masks`)
        and the admission/propagation loop then consumes them in the
        same serial order — bit-identical state evolution, see
        ``docs/ALGORITHMS.md`` §11.
        """
        batch = batch.net()
        if not batch:
            return
        runtime = self.runtime
        runtime.batch_seq += 1
        for mirror in self.mirrors:
            mirror.begin_buffer()
        try:
            deletes = batch.deletes
            if deletes:
                runtime.pending_unblocks = {}
                try:
                    for delta in deletes:
                        self.counters.tokens += 1
                        runtime.remove_wme(delta.wme)
                    pending = runtime.pending_unblocks
                finally:
                    runtime.pending_unblocks = None
                for node, entries in pending.items():
                    node.flush_unblocked(runtime, entries, "(unblock)")
            groups: dict[str, list[StoredTuple]] = {}
            for delta in batch.inserts:
                groups.setdefault(delta.relation, []).append(delta.wme)
            pool = runtime.pool
            masks = (
                self._parallel_alpha_masks(groups, pool)
                if pool is not None and pool.active and groups
                else None
            )
            for class_name, wmes in groups.items():
                self.counters.tokens += len(wmes)
                for amem in self.alpha_by_class.get(class_name, ()):
                    if masks is not None:
                        admitted = amem.admit_set(
                            wmes, masks[(class_name, id(amem))]
                        )
                    else:
                        admitted = amem.insert_set(wmes)
                    for wme in admitted:
                        runtime.register_alpha(wme, amem)
                    if admitted:
                        # Downstream-first, mirroring ``try_activate``: with
                        # a shared alpha memory a deep join must consume the
                        # admitted set before upstream joins push the same
                        # set's tokens into its left memory.
                        for successor in reversed(list(amem.successors)):
                            successor.right_activate_set(admitted, class_name)
        finally:
            self._flush_mirrors()

    def _parallel_alpha_masks(
        self, groups: dict[str, list[StoredTuple]], pool
    ) -> dict[tuple[str, int], list[bool]] | None:
        """Precompute every alpha admit mask for a batch's insert phase.

        Alpha constant tests are pure functions of element values, so all
        (class, memory) masks can be evaluated before any admission
        mutates the network.  Each class's element set is hash-sharded by
        tuple id and every (memory, shard) cell becomes one fan-out task;
        per-shard mask fragments scatter back through the recorded
        positions, so the assembled masks — and the serial admission that
        consumes them (:meth:`AlphaMemory.admit_set`) — are independent
        of shard count and scheduling.  Returns ``None`` when the batch
        is too small to be worth fanning out.
        """
        cells: list[tuple[tuple[str, int], int, list[int]]] = []
        thunks: list = []
        for class_name, wmes in groups.items():
            amems = self.alpha_by_class.get(class_name, ())
            if not amems:
                continue
            shards = hash_shards(wmes, pool.shard_count(len(wmes)))
            for amem in amems:
                for positions, elements in shards:

                    def thunk(amem=amem, elements=elements):
                        task_counters = Counters()
                        return (
                            amem.evaluate(elements, task_counters),
                            task_counters,
                        )

                    cells.append(((class_name, id(amem)), len(wmes), positions))
                    thunks.append(thunk)
        if sum(len(positions) for _, _, positions in cells) < pool.min_fanout_items:
            return None
        results = pool.map_tasks(
            thunks,
            sizes=[len(positions) for _, _, positions in cells],
            label="alpha",
        )
        masks: dict[tuple[str, int], list[bool]] = {}
        for (key, length, positions), (fragment, task_counters) in zip(
            cells, results
        ):
            merge_counters(self.counters, task_counters)
            mask = masks.setdefault(key, [False] * length)
            for position, admitted in zip(positions, fragment):
                mask[position] = admitted
        return masks

    def _flush_mirrors(self) -> None:
        if not self.mirrors:
            return
        if self.mirror_catalog is not None:
            with self.mirror_catalog.transaction():
                for mirror in self.mirrors:
                    mirror.flush_buffer()
        else:
            for mirror in self.mirrors:
                mirror.flush_buffer()

    # -- introspection / accounting ----------------------------------------

    def node_count(self) -> int:
        """One-input + two-input + production node total."""
        return (
            len(self.alpha_memories)
            + len(self.join_nodes)
            + len(self.negative_nodes)
            + len(self.production_nodes)
        )

    def stored_tokens(self) -> int:
        """Tokens/elements held in memories (the paper's redundancy)."""
        alpha = sum(len(am) for am in self.alpha_memories)
        # The dummy top token is bookkeeping, not a stored match.
        beta = sum(len(bm) for bm in self.beta_memories) - 1
        negative = sum(n.stored_results() for n in self.negative_nodes)
        return alpha + beta + negative

    def stored_cells(self) -> int:
        """Attribute cells held in memories (tuples stored at full width)."""
        cells = 0
        for amem in self.alpha_memories:
            for wme in amem.wmes():
                cells += len(wme.values)
        for bmem in self.beta_memories:
            for token in bmem.tokens():
                for wme in token.chain():
                    if wme is not None:
                        cells += len(wme.values)
        return cells

    def describe(self) -> dict:
        """The node graph with live per-node gauges, JSON-ready.

        ``nodes`` carries one entry per network node (memory sizes, probe
        counts, largest batch group, negative witness counts), ``edges``
        the dataflow arcs, ``rules`` each rule's static join chain (node
        ids in LHS order), ``counts`` the aggregate totals.  This is the
        engine-side answer to "which join is hot / which memory is big"
        without attaching a debugger.
        """
        nodes: list[dict] = []
        edges: list[list[str]] = []
        for amem in self.alpha_memories:
            nodes.append(
                {
                    "id": amem.name,
                    "kind": "alpha",
                    "class": amem.class_name,
                    "size": len(amem),
                }
            )
            for successor in amem.successors:
                edges.append([amem.name, successor.name])
        for bmem in self.beta_memories:
            nodes.append(
                {
                    "id": bmem.name,
                    "kind": "beta",
                    "level": bmem.level,
                    "size": len(bmem),
                }
            )
            for child in bmem.children:
                edges.append([bmem.name, child.name])
        for join in self.join_nodes:
            entry = {
                "id": join.name,
                "kind": "join",
                "left": join.bmem.name,
                "right": join.amem.name,
                "left_size": len(join.bmem),
                "right_size": len(join.amem),
                "tests": len(join.tests),
                "probes": join.probes,
                "max_group": join.max_group,
            }
            if join.plan is not None:
                entry["plan"] = join.plan.describe()
            nodes.append(entry)
        for negative in self.negative_nodes:
            entry = {
                "id": negative.name,
                "kind": "negative",
                "left": negative.bmem.name,
                "right": negative.amem.name,
                "left_size": len(negative.bmem),
                "right_size": len(negative.amem),
                "tests": len(negative.tests),
                "probes": negative.probes,
                "max_group": negative.max_group,
                "witnesses": negative.stored_results(),
            }
            if negative.plan is not None:
                entry["plan"] = negative.plan.describe()
            nodes.append(entry)
        for production in self.production_nodes:
            node_id = f"p:{production.analysis.name}"
            nodes.append(
                {
                    "id": node_id,
                    "kind": "production",
                    "rule": production.analysis.name,
                    "size": len(production.items),
                }
            )
        for two_input in [*self.join_nodes, *self.negative_nodes]:
            for child in two_input.children:
                if isinstance(child, ProductionNode):
                    edges.append(
                        [two_input.name, f"p:{child.analysis.name}"]
                    )
                else:
                    edges.append([two_input.name, child.name])
        return {
            "nodes": nodes,
            "edges": edges,
            "rules": {
                rule: [node.name for _, _, node in chain]
                for rule, chain in sorted(self.rule_chains.items())
            },
            "counts": {
                "alpha_memories": len(self.alpha_memories),
                "beta_memories": len(self.beta_memories),
                "join_nodes": len(self.join_nodes),
                "negative_nodes": len(self.negative_nodes),
                "production_nodes": len(self.production_nodes),
                "stored_tokens": self.stored_tokens(),
                "stored_cells": self.stored_cells(),
            },
            "compile": self.compile_summary or {"mode": "off"},
        }

    def to_dot(self) -> str:
        """The node graph as Graphviz DOT (``dot -Tsvg`` renders it)."""
        description = self.describe()
        shapes = {
            "alpha": "ellipse",
            "beta": "box",
            "join": "diamond",
            "negative": "diamond",
            "production": "doubleoctagon",
        }
        lines = ["digraph rete {", "  rankdir=TB;"]
        for node in description["nodes"]:
            kind = node["kind"]
            label = node["id"]
            if kind == "alpha":
                label = f"{node['id']}\\n{node['class']} ({node['size']})"
            elif kind == "beta":
                label = f"{node['id']}\\nlevel {node['level']} ({node['size']})"
            elif kind in ("join", "negative"):
                extra = (
                    f"\\nwitnesses {node['witnesses']}"
                    if kind == "negative"
                    else ""
                )
                label = f"{node['id']}\\nprobes {node['probes']}{extra}"
            elif kind == "production":
                label = f"{node['rule']}\\n({node['size']})"
            style = ' style=dashed' if kind == "negative" else ""
            lines.append(
                f'  "{node["id"]}" [shape={shapes[kind]} '
                f'label="{label}"{style}];'
            )
        for src, dst in description["edges"]:
            lines.append(f'  "{src}" -> "{dst}";')
        lines.append("}")
        return "\n".join(lines)


@dataclass(frozen=True)
class _VariableUse:
    """One occurrence of a variable: (condition index, attribute, op)."""

    ce_index: int
    attribute: str
    op: str


def _binding_sites(
    conditions: tuple[AnalyzedCondition, ...]
) -> dict[str, tuple[int, str]]:
    """First positive '=' occurrence of each variable, in LHS order."""
    sites: dict[str, tuple[int, str]] = {}
    for condition in conditions:
        if condition.negated:
            continue
        for attribute, variable in condition.equalities:
            sites.setdefault(variable, (condition.index, attribute))
    return sites


def _variable_tests(
    analysis: RuleAnalysis,
    schemas: dict[str, RelationSchema],
) -> tuple[list[tuple[int, AttributeComparison]], list[tuple[int, JoinTest]]]:
    """Derive intra-element and join tests from variable occurrences.

    Returns ``(alpha_tests, join_tests)`` where each entry is tagged with
    the condition index the test is evaluated at.
    """
    sites = _binding_sites(analysis.conditions)
    alpha_tests: list[tuple[int, AttributeComparison]] = []
    join_tests: list[tuple[int, JoinTest]] = []
    for condition in analysis.conditions:
        for attribute, variable in condition.equalities:
            _append_variable_test(
                analysis, schemas, sites, variable,
                _VariableUse(condition.index, attribute, "="),
                alpha_tests, join_tests,
            )
        for residual in condition.residual:
            _append_variable_test(
                analysis, schemas, sites, residual.variable,
                _VariableUse(condition.index, residual.attribute, residual.op),
                alpha_tests, join_tests,
            )
    return alpha_tests, join_tests


def _append_variable_test(
    analysis: RuleAnalysis,
    schemas: dict[str, RelationSchema],
    sites: dict[str, tuple[int, str]],
    variable: str,
    use: _VariableUse,
    alpha_tests: list[tuple[int, AttributeComparison]],
    join_tests: list[tuple[int, JoinTest]],
) -> None:
    site = sites.get(variable)
    if site is None:
        raise RuleError(
            f"rule {analysis.name!r}: variable <{variable}> is never bound"
        )
    site_index, site_attribute = site
    if (use.ce_index, use.attribute) == site and use.op == "=":
        return  # the binding occurrence itself tests nothing
    use_schema = schemas[analysis.conditions[use.ce_index].class_name]
    site_schema = schemas[analysis.conditions[site_index].class_name]
    if use.ce_index == site_index:
        alpha_tests.append(
            (
                use.ce_index,
                AttributeComparison(use.attribute, use.op, site_attribute),
            )
        )
    elif site_index < use.ce_index:
        join_tests.append(
            (
                use.ce_index,
                JoinTest(
                    own_position=use_schema.position(use.attribute),
                    op=use.op,
                    levels_up=use.ce_index - site_index,
                    other_position=site_schema.position(site_attribute),
                ),
            )
        )
    else:
        # The variable is bound *later* than this (residual) use: evaluate
        # at the binding level, with the comparison reversed.
        join_tests.append(
            (
                site_index,
                JoinTest(
                    own_position=site_schema.position(site_attribute),
                    op=reverse_operator(use.op),
                    levels_up=site_index - use.ce_index,
                    other_position=use_schema.position(use.attribute),
                ),
            )
        )


class NetworkBuilder:
    """Builds a :class:`ReteNetwork` from analyzed rules."""

    def __init__(
        self,
        schemas: dict[str, RelationSchema],
        counters: Counters | None = None,
        share: bool = False,
        mirror_catalog: Catalog | None = None,
        compile_mode: str = "off",
    ) -> None:
        self.schemas = schemas
        self.counters = counters or Counters()
        self.share = share
        self.mirror_catalog = mirror_catalog
        self.compile_mode = compile_mode
        self._mirror_serial = 0
        self._alpha_cache: dict[tuple, AlphaMemory] = {}
        self._join_cache: dict[tuple, JoinNode] = {}
        self._negative_cache: dict[tuple, NegativeNode] = {}
        self._bmem_cache: dict[tuple, BetaMemory] = {}
        runtime = ReteRuntime(self.counters)
        top = BetaMemory("top", 0, self.counters)
        top.make_dummy()
        self.network = ReteNetwork(
            counters=self.counters,
            runtime=runtime,
            conflict_set=ConflictSet(),
            top=top,
            mirror_catalog=mirror_catalog,
        )
        self.network.beta_memories.append(top)

    # -- mirrors --------------------------------------------------------------

    def _mirror(self, prefix: str, arity: int) -> MemoryMirror | None:
        if self.mirror_catalog is None:
            return None
        self._mirror_serial += 1
        mirror = MemoryMirror(
            self.mirror_catalog, f"{prefix}_{self._mirror_serial}", arity
        )
        self.network.mirrors.append(mirror)
        return mirror

    # -- alpha network ----------------------------------------------------------

    def _alpha_memory(
        self,
        analysis: RuleAnalysis,
        condition: AnalyzedCondition,
        intra_tests: list[AttributeComparison],
    ) -> AlphaMemory:
        predicate: Predicate = conjunction(
            [condition.constant_predicate, *intra_tests]
        )
        key_tests = _predicate_key(predicate)
        key: tuple = (condition.class_name, key_tests)
        if not self.share:
            key = (analysis.name, condition.index, *key)
        cached = self._alpha_cache.get(key)
        if cached is not None:
            return cached
        schema = self.schemas[condition.class_name]
        amem = AlphaMemory(
            name=f"am{len(self.network.alpha_memories)}",
            class_name=condition.class_name,
            test=compile_predicate(predicate, schema),
            counters=self.counters,
            mirror=self._mirror("am", 1),
            arity=schema.arity,
        )
        # Stashed for attach-time lowering (``repro.match.compile``): the
        # kernel compiler regenerates ``test`` from the predicate AST.
        amem.predicate = predicate
        amem.schema = schema
        self._alpha_cache[key] = amem
        self.network.alpha_memories.append(amem)
        self.network.alpha_by_class.setdefault(condition.class_name, []).append(
            amem
        )
        return amem

    # -- beta network -------------------------------------------------------------

    def _beta_memory_below(self, node: JoinNode | NegativeNode,
                           level: int, rule_tag: tuple) -> BetaMemory:
        key = ("bmem", id(node), *rule_tag)
        cached = self._bmem_cache.get(key)
        if cached is not None:
            return cached
        bmem = BetaMemory(
            name=f"bm{len(self.network.beta_memories)}",
            level=level,
            counters=self.counters,
            mirror=self._mirror("bm", level),
        )
        node.children.append(bmem)
        self._bmem_cache[key] = bmem
        self.network.beta_memories.append(bmem)
        return bmem

    def _two_input_node(
        self,
        bmem: BetaMemory,
        amem: AlphaMemory,
        tests: tuple[JoinTest, ...],
        negated: bool,
        rule_tag: tuple,
    ) -> JoinNode | NegativeNode:
        cache = self._negative_cache if negated else self._join_cache
        key = (id(bmem), id(amem), tuple(t.key() for t in tests), *rule_tag)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if negated:
            node: JoinNode | NegativeNode = NegativeNode(
                name=f"neg{len(self.network.negative_nodes)}",
                bmem=bmem,
                amem=amem,
                tests=tests,
                counters=self.counters,
            )
            self.network.negative_nodes.append(node)
        else:
            node = JoinNode(
                name=f"j{len(self.network.join_nodes)}",
                bmem=bmem,
                amem=amem,
                tests=tests,
                counters=self.counters,
            )
            self.network.join_nodes.append(node)
        node.runtime = self.network.runtime
        cache[key] = node
        return node

    # -- rules ----------------------------------------------------------------------

    def add_rule(self, analysis: RuleAnalysis) -> ProductionNode:
        """Compile one rule into the network; returns its terminal node."""
        alpha_tagged, join_tagged = _variable_tests(analysis, self.schemas)
        rule_tag = () if self.share else (analysis.name,)

        current: BetaMemory = self.network.top
        last_node: JoinNode | NegativeNode | None = None
        count = len(analysis.conditions)
        chain: list[tuple] = []
        for condition in analysis.conditions:
            intra = [t for i, t in alpha_tagged if i == condition.index]
            joins = tuple(
                sorted(
                    (t for i, t in join_tagged if i == condition.index),
                    key=JoinTest.key,
                )
            )
            amem = self._alpha_memory(analysis, condition, intra)
            node = self._two_input_node(
                current, amem, joins, condition.negated, rule_tag
            )
            chain.append((condition, amem, node))
            last_node = node
            if condition.index < count - 1:
                current = self._beta_memory_below(
                    node, condition.index + 1, rule_tag
                )
        self.network.rule_chains[analysis.name] = chain
        production = ProductionNode(
            analysis=analysis,
            conflict_set=self.network.conflict_set,
            counters=self.counters,
            schemas=self.schemas,
        )
        assert last_node is not None
        last_node.children.append(production)
        self.network.production_nodes.append(production)
        return production

    def build(self, analyses: dict[str, RuleAnalysis]) -> ReteNetwork:
        """Compile every rule and return the finished network."""
        for analysis in analyses.values():
            self.add_rule(analysis)
        # Deferred import: repro.match.compile imports JoinTest consumers.
        from repro.match.compile import attach_network_kernels

        attach_network_kernels(self.network, self.compile_mode)
        return self.network


def _predicate_key(predicate: Predicate) -> tuple:
    """Canonical, hashable form of a variable-free predicate for sharing."""
    from repro.storage.predicate import (  # local import to avoid cycle noise
        And,
        Comparison,
        Membership,
        TruePredicate,
    )

    if isinstance(predicate, TruePredicate):
        return ("true",)
    if isinstance(predicate, Comparison):
        return (
            ("cmp", predicate.attribute, predicate.op, predicate.value),
        )
    if isinstance(predicate, Membership):
        return (("member", predicate.attribute, predicate.values),)
    if isinstance(predicate, AttributeComparison):
        return (("attrcmp", predicate.left, predicate.op, predicate.right),)
    if isinstance(predicate, And):
        parts: list[tuple] = []
        for part in predicate.parts:
            parts.extend(_predicate_key(part))
        return tuple(sorted(parts, key=repr))
    raise RuleError(f"cannot canonicalize predicate {predicate!r}")


def build_network(
    analyses: dict[str, RuleAnalysis],
    schemas: dict[str, RelationSchema],
    counters: Counters | None = None,
    share: bool = False,
    mirror_catalog: Catalog | None = None,
    compile_mode: str = "off",
) -> ReteNetwork:
    """Convenience wrapper: build a network for *analyses* in one call."""
    builder = NetworkBuilder(
        schemas,
        counters=counters,
        share=share,
        mirror_catalog=mirror_catalog,
        compile_mode=compile_mode,
    )
    return builder.build(analyses)
