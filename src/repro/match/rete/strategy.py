"""Rete network as a match strategy.

Three flavours, all over the same compiled network:

* ``ReteStrategy``            — OPS5-style, memories in main memory (§3.1).
* ``SharedReteStrategy``      — multiple-query-optimized network (§3.2/§6).
* ``DbmsReteStrategy``        — memories mirrored into LEFT/RIGHT relations
                                of a storage catalog (§3.2), optionally on
                                the SQLite backend.
"""

from __future__ import annotations

from repro.engine.wm import WorkingMemory
from repro.instrument import Counters, SpaceReport
from repro.lang.analysis import RuleAnalysis
from repro.match.base import MatchStrategy
from repro.match.rete.builder import ReteNetwork, build_network
from repro.storage.catalog import Catalog
from repro.storage.tuples import StoredTuple


class ReteStrategy(MatchStrategy):
    """Classic Rete: one network, unshared nodes, in-memory memories."""

    strategy_name = "rete"
    match_span_name = "match.token_propagation"
    _share = False
    _mirror_backend: str | None = None

    def _prepare(self) -> None:
        self.mirror_catalog: Catalog | None = None
        if self._mirror_backend is not None:
            self.mirror_catalog = Catalog(
                backend=self._mirror_backend, counters=self.counters
            )
        self.network: ReteNetwork = build_network(
            self.analyses,
            self.wm.schemas,
            counters=self.counters,
            share=self._share,
            mirror_catalog=self.mirror_catalog,
        )
        self.conflict_set = self.network.conflict_set

    def on_insert(self, wme: StoredTuple) -> None:
        self._trace_match("insert", wme, self.network.insert)

    def on_delete(self, wme: StoredTuple) -> None:
        self._trace_match("delete", wme, self.network.remove)

    def space_report(self) -> SpaceReport:
        network = self.network
        stored = network.stored_tokens()
        cells = network.stored_cells()
        if self.mirror_catalog is not None:
            detail_cells = sum(
                len(t) * t.schema.arity for t in self.mirror_catalog.tables()
            )
        else:
            detail_cells = cells
        return SpaceReport(
            strategy=self.strategy_name,
            wm_tuples=self.wm.size(),
            stored_tokens=stored,
            stored_patterns=0,
            marker_entries=0,
            estimated_cells=cells,
            detail={
                "alpha_memories": len(network.alpha_memories),
                "beta_memories": len(network.beta_memories),
                "join_nodes": len(network.join_nodes),
                "negative_nodes": len(network.negative_nodes),
                "mirror_cells": detail_cells,
            },
        )


class SharedReteStrategy(ReteStrategy):
    """Rete with MQO-style node sharing across rules."""

    strategy_name = "rete-shared"
    _share = True


class DbmsReteStrategy(ReteStrategy):
    """Rete whose memories are persisted as relations (§3.2)."""

    strategy_name = "rete-dbms"
    _mirror_backend = "memory"

    def __init__(
        self,
        wm: WorkingMemory,
        analyses: dict[str, RuleAnalysis],
        counters: Counters | None = None,
        memory_backend: str = "memory",
    ) -> None:
        self._mirror_backend = memory_backend
        super().__init__(wm, analyses, counters)
