"""Rete network as a match strategy.

Three flavours, all over the same compiled network:

* ``ReteStrategy``            — OPS5-style, memories in main memory (§3.1).
* ``SharedReteStrategy``      — multiple-query-optimized network (§3.2/§6).
* ``DbmsReteStrategy``        — memories mirrored into LEFT/RIGHT relations
                                of a storage catalog (§3.2), optionally on
                                the SQLite backend.

All three are natively set-oriented: a multi-element :class:`DeltaBatch`
is netted and handed to :meth:`ReteNetwork.apply_batch`, which pushes
per-class token *sets* through the network — one probe of the opposing
LEFT/RIGHT memory per (two-input node, batch group) instead of one per
tuple (§4.2.3's set-at-a-time argument applied to §3.2's DBMS Rete).
Single-element batches take the classic tuple-at-a-time path, so
``batch_size=1`` runs remain bit-for-bit OPS5.
"""

from __future__ import annotations

from repro.delta import INSERT, DeltaBatch
from repro.engine.wm import WorkingMemory
from repro.instrument import Counters, SpaceReport
from repro.lang.analysis import RuleAnalysis
from repro.match.base import MatchStrategy
from repro.match.rete.builder import ReteNetwork, build_network
from repro.storage.catalog import Catalog
from repro.storage.tuples import StoredTuple


class ReteStrategy(MatchStrategy):
    """Classic Rete: one network, unshared nodes, in-memory memories."""

    strategy_name = "rete"
    match_span_name = "match.token_propagation"
    _share = False
    _mirror_backend: str | None = None

    def _prepare(self) -> None:
        self.mirror_catalog: Catalog | None = None
        if self._mirror_backend is not None:
            self.mirror_catalog = Catalog(
                backend=self._mirror_backend, counters=self.counters
            )
        self.network: ReteNetwork = build_network(
            self.analyses,
            self.wm.schemas,
            counters=self.counters,
            share=self._share,
            mirror_catalog=self.mirror_catalog,
            compile_mode=self.compile_mode,
        )
        self.conflict_set = self.network.conflict_set
        self.network.runtime.obs = self.obs
        self.network.runtime.pool = self.pool
        summary = self.network.compile_summary
        obs = self.obs
        if obs is not None and obs.enabled and summary is not None:
            with obs.span(
                "compile.attach",
                strategy=self.strategy_name,
                mode=summary["mode"],
                kernels=summary["kernels"],
                alpha=summary["alpha"],
            ):
                pass
            if summary["mode"] != "off":
                metrics = obs.metrics
                metrics.counter("rete.kernel_ns").inc(summary["ns"])
                metrics.counter("rete.kernels").inc(summary["kernels"])
                metrics.counter("rete.compiled_alpha").inc(summary["alpha"])

    def on_insert(self, wme: StoredTuple) -> None:
        self._trace_match("insert", wme, self.network.insert)

    def on_delete(self, wme: StoredTuple) -> None:
        self._trace_match("delete", wme, self.network.remove)

    def _apply_delta(self, batch: DeltaBatch) -> None:
        """Set-at-a-time maintenance: token batches through the network.

        Netting happens first so insert/delete pairs annihilate before any
        join is probed.  A batch that nets down to a single delta takes
        the per-tuple path — set propagation only pays off when there is a
        set.
        """
        batch = batch.net()
        if len(batch) <= 1:
            for delta in batch:
                if delta.op == INSERT:
                    self.on_insert(delta.wme)
                else:
                    self.on_delete(delta.wme)
            return
        self.network.apply_batch(batch)

    def describe(self) -> dict:
        """The live node graph (memories, probes, witnesses) — §3's network
        rendered as data; see :meth:`ReteNetwork.describe`."""
        description = self.network.describe()
        description["strategy"] = self.strategy_name
        description["conflict_set"] = len(self.conflict_set)
        return description

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the compiled network."""
        return self.network.to_dot()

    def space_report(self) -> SpaceReport:
        network = self.network
        stored = network.stored_tokens()
        cells = network.stored_cells()
        if self.mirror_catalog is not None:
            detail_cells = sum(
                len(t) * t.schema.arity for t in self.mirror_catalog.tables()
            )
        else:
            detail_cells = cells
        return SpaceReport(
            strategy=self.strategy_name,
            wm_tuples=self.wm.size(),
            stored_tokens=stored,
            stored_patterns=0,
            marker_entries=0,
            estimated_cells=cells,
            detail={
                "alpha_memories": len(network.alpha_memories),
                "beta_memories": len(network.beta_memories),
                "join_nodes": len(network.join_nodes),
                "negative_nodes": len(network.negative_nodes),
                "mirror_cells": detail_cells,
            },
        )


class SharedReteStrategy(ReteStrategy):
    """Rete with MQO-style node sharing across rules."""

    strategy_name = "rete-shared"
    _share = True


class DbmsReteStrategy(ReteStrategy):
    """Rete whose memories are persisted as relations (§3.2)."""

    strategy_name = "rete-dbms"
    _mirror_backend = "memory"

    def __init__(
        self,
        wm: WorkingMemory,
        analyses: dict[str, RuleAnalysis],
        counters: Counters | None = None,
        memory_backend: str = "memory",
        compile_mode: str = "off",
        pool=None,
    ) -> None:
        self._mirror_backend = memory_backend
        super().__init__(
            wm, analyses, counters, compile_mode=compile_mode, pool=pool
        )
