"""Rete match network (§3 of the paper).

Three strategy flavours share this package: ``rete`` (the classic §3.1
network), ``rete-shared`` (§3.2/§6 multiple-query-optimized node
sharing) and ``rete-dbms`` (§3.2's DBMS realization, persisting alpha
and beta memories as LEFT/RIGHT relations through
:class:`~repro.match.rete.runtime.MemoryMirror`).  All three propagate
change either tuple-at-a-time (``batch_size=1``, bit-for-bit OPS5) or
as token-batched sets — a netted ``DeltaBatch`` flowing through alpha
tests and join nodes with one opposing-memory probe per (node, batch
group); see ``docs/ALGORITHMS.md`` §8 and ``docs/ARCHITECTURE.md``.
"""

from repro.match.rete.builder import NetworkBuilder, ReteNetwork, build_network
from repro.match.rete.runtime import (
    AlphaMemory,
    BetaMemory,
    JoinNode,
    JoinTest,
    MemoryMirror,
    NegativeNode,
    ProductionNode,
    ReteRuntime,
    Token,
)
from repro.match.rete.strategy import (
    DbmsReteStrategy,
    ReteStrategy,
    SharedReteStrategy,
)

__all__ = [
    "AlphaMemory",
    "BetaMemory",
    "DbmsReteStrategy",
    "JoinNode",
    "JoinTest",
    "MemoryMirror",
    "NegativeNode",
    "NetworkBuilder",
    "ProductionNode",
    "ReteNetwork",
    "ReteRuntime",
    "ReteStrategy",
    "SharedReteStrategy",
    "Token",
    "build_network",
]
