"""Rete match network (§3 of the paper)."""

from repro.match.rete.builder import NetworkBuilder, ReteNetwork, build_network
from repro.match.rete.runtime import (
    AlphaMemory,
    BetaMemory,
    JoinNode,
    JoinTest,
    MemoryMirror,
    NegativeNode,
    ProductionNode,
    ReteRuntime,
    Token,
)
from repro.match.rete.strategy import (
    DbmsReteStrategy,
    ReteStrategy,
    SharedReteStrategy,
)

__all__ = [
    "AlphaMemory",
    "BetaMemory",
    "DbmsReteStrategy",
    "JoinNode",
    "JoinTest",
    "MemoryMirror",
    "NegativeNode",
    "NetworkBuilder",
    "ProductionNode",
    "ReteNetwork",
    "ReteRuntime",
    "ReteStrategy",
    "SharedReteStrategy",
    "Token",
    "build_network",
]
