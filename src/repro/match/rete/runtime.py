"""Rete network runtime: tokens, memories, join/negative/production nodes.

This follows the classic OPS5/Forgy structure (§3.1 of the paper): tuples
tagged "+"/"−" enter through per-class alpha tests; surviving tuples land in
alpha memories; two-input join nodes pair them with partial matches (tokens)
held in beta memories; tokens reaching a production node put the rule into
the conflict set together with the satisfying elements.

Deletion uses token-tree retraction (each token knows its children), so a
"−" tag undoes exactly what the "+" tag built.  Negative nodes keep
per-token join-result sets, the standard treatment of OPS5's negated
condition elements.

Memories optionally *mirror* their contents into storage-engine tables —
the LEFT/RIGHT relations of the paper's §3.2 DBMS implementation — so space
and I/O accounting flows through the storage counters.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.engine.conflict import ConflictSet, Instantiation
from repro.instrument import Counters
from repro.lang.analysis import RuleAnalysis
from repro.storage.catalog import Catalog
from repro.storage.predicate import compare
from repro.storage.schema import RelationSchema
from repro.storage.tuples import StoredTuple

WmeKey = tuple[str, int]


def wme_key(wme: StoredTuple) -> WmeKey:
    """Stable identity of a WM element."""
    return (wme.relation, wme.tid)


@dataclass(frozen=True)
class JoinTest:
    """One inter-element test at a two-input node.

    Compares the candidate element's attribute (at ``own_position``) with an
    attribute of an element earlier in the token, ``levels_up`` levels above
    the candidate (1 = the immediately preceding condition element).
    """

    own_position: int
    op: str
    levels_up: int
    other_position: int

    def key(self) -> tuple:
        return (self.own_position, self.op, self.levels_up, self.other_position)


class Token:
    """A partial match: a chain of WM elements, one per condition element."""

    __slots__ = ("parent", "wme", "node", "children")

    def __init__(
        self, parent: "Token | None", wme: StoredTuple | None, node: object
    ) -> None:
        self.parent = parent
        self.wme = wme
        self.node = node
        self.children: list[Token] = []
        if parent is not None:
            parent.children.append(self)

    def chain(self) -> list[StoredTuple | None]:
        """WM elements from the first condition element to this level."""
        wmes: list[StoredTuple | None] = []
        token: Token | None = self
        while token is not None and token.parent is not None:
            wmes.append(token.wme)
            token = token.parent
        wmes.reverse()
        return wmes

    def ancestor(self, levels_up: int) -> "Token":
        """The token *levels_up* levels above this one (1 = parent)."""
        token = self
        for _ in range(levels_up):
            token = token.parent
        return token


class MemoryMirror:
    """Mirrors a memory's contents into a storage-engine table (§3.2)."""

    def __init__(self, catalog: Catalog, name: str, arity: int) -> None:
        attributes = tuple(f"w{i + 1}" for i in range(max(arity, 1)))
        self.table = catalog.create(RelationSchema(name, attributes))
        self._rows: dict[int, int] = {}

    def add(self, handle: int, tids: tuple[int | None, ...]) -> None:
        row = self.table.insert(tuple(tids) or (None,))
        self._rows[handle] = row.tid

    def remove(self, handle: int) -> None:
        row_tid = self._rows.pop(handle, None)
        if row_tid is not None:
            self.table.delete(row_tid)

    def cells(self) -> int:
        return len(self.table) * self.table.schema.arity


class AlphaMemory:
    """Stores the WM elements passing one constant-test conjunction."""

    def __init__(
        self,
        name: str,
        class_name: str,
        test: Callable[[tuple], bool],
        counters: Counters,
        mirror: MemoryMirror | None = None,
    ) -> None:
        self.name = name
        self.class_name = class_name
        self.test = test
        self.counters = counters
        self.mirror = mirror
        self.items: dict[WmeKey, StoredTuple] = {}
        self.successors: list[JoinNode | NegativeNode] = []

    def try_activate(self, wme: StoredTuple) -> bool:
        """Run the constant test; admit and propagate on success."""
        self.counters.node_activations += 1
        self.counters.comparisons += 1
        if not self.test(wme.values):
            return False
        self.items[wme_key(wme)] = wme
        if self.mirror is not None:
            self.mirror.add(id(wme), (wme.tid,))
        self.counters.tokens += 1
        for successor in list(self.successors):
            successor.right_activate(wme)
        return True

    def retract(self, wme: StoredTuple) -> bool:
        """Remove *wme* if present; returns whether it was stored."""
        if self.items.pop(wme_key(wme), None) is None:
            return False
        if self.mirror is not None:
            self.mirror.remove(id(wme))
        return True

    def __len__(self) -> int:
        return len(self.items)


class BetaMemory:
    """Stores tokens covering a prefix of a rule's condition elements."""

    def __init__(
        self,
        name: str,
        level: int,
        counters: Counters,
        mirror: MemoryMirror | None = None,
    ) -> None:
        self.name = name
        self.level = level  # number of condition elements covered
        self.counters = counters
        self.mirror = mirror
        self.items: list[Token] = []
        self.children: list[JoinNode | NegativeNode] = []
        self.dummy_token: Token | None = None

    def make_dummy(self) -> Token:
        """Install the dummy top token (for the network root)."""
        self.dummy_token = Token(None, None, self)
        self.items.append(self.dummy_token)
        return self.dummy_token

    def left_activate(self, runtime: "ReteRuntime", parent: Token,
                      wme: StoredTuple | None) -> None:
        self.counters.node_activations += 1
        token = Token(parent, wme, self)
        self.items.append(token)
        self.counters.tokens += 1
        if wme is not None:
            runtime.register_token(wme, token)
        if self.mirror is not None:
            tids = tuple(
                w.tid if w is not None else None for w in token.chain()
            )
            self.mirror.add(id(token), tids)
        for child in list(self.children):
            child.left_activate_new_token(runtime, token)

    def remove_token(self, token: Token) -> None:
        self.items.remove(token)
        if self.mirror is not None:
            self.mirror.remove(id(token))
        for child in self.children:
            child.forget_token(token)

    def __len__(self) -> int:
        return len(self.items)


def _run_join_tests(
    tests: tuple[JoinTest, ...],
    token: Token,
    wme: StoredTuple,
    counters: Counters,
) -> bool:
    for test in tests:
        other = token.ancestor(test.levels_up - 1).wme
        counters.comparisons += 1
        if other is None:
            return False
        if not compare(
            test.op, wme.values[test.own_position], other.values[test.other_position]
        ):
            return False
    return True


class JoinNode:
    """Two-input node joining a beta memory (LEFT) and alpha memory (RIGHT)."""

    def __init__(
        self,
        name: str,
        bmem: BetaMemory,
        amem: AlphaMemory,
        tests: tuple[JoinTest, ...],
        counters: Counters,
    ) -> None:
        self.name = name
        self.bmem = bmem
        self.amem = amem
        self.tests = tests
        self.counters = counters
        self.children: list[BetaMemory | NegativeNode | ProductionNode] = []
        bmem.children.append(self)
        amem.successors.append(self)
        self.runtime: ReteRuntime | None = None

    def left_activate_new_token(self, runtime: "ReteRuntime", token: Token) -> None:
        self.counters.node_activations += 1
        for wme in list(self.amem.items.values()):
            if _run_join_tests(self.tests, token, wme, self.counters):
                for child in list(self.children):
                    child.left_activate(runtime, token, wme)

    def right_activate(self, wme: StoredTuple) -> None:
        self.counters.node_activations += 1
        runtime = self.runtime
        for token in list(self.bmem.items):
            if _run_join_tests(self.tests, token, wme, self.counters):
                for child in list(self.children):
                    child.left_activate(runtime, token, wme)

    def forget_token(self, token: Token) -> None:
        """A LEFT token disappeared; plain joins keep no per-token state."""


class NegativeNode:
    """Two-input node for a negated condition element.

    Sits in a join node's position: LEFT input is a beta memory, RIGHT an
    alpha memory.  A LEFT token propagates (with a ``None`` element slot)
    exactly while it has no join partner on the RIGHT.
    """

    def __init__(
        self,
        name: str,
        bmem: BetaMemory,
        amem: AlphaMemory,
        tests: tuple[JoinTest, ...],
        counters: Counters,
    ) -> None:
        self.name = name
        self.bmem = bmem
        self.amem = amem
        self.tests = tests
        self.counters = counters
        self.children: list[BetaMemory | NegativeNode | ProductionNode] = []
        self.results: dict[Token, set[WmeKey]] = {}
        bmem.children.append(self)
        amem.successors.append(self)
        self.runtime: ReteRuntime | None = None

    def left_activate_new_token(self, runtime: "ReteRuntime", token: Token) -> None:
        self.counters.node_activations += 1
        matches = {
            wme_key(wme)
            for wme in self.amem.items.values()
            if _run_join_tests(self.tests, token, wme, self.counters)
        }
        self.results[token] = matches
        for key in matches:
            runtime.register_negative(key, self, token)
        if not matches:
            for child in list(self.children):
                child.left_activate(runtime, token, None)

    def right_activate(self, wme: StoredTuple) -> None:
        self.counters.node_activations += 1
        runtime = self.runtime
        key = wme_key(wme)
        for token, matches in list(self.results.items()):
            if _run_join_tests(self.tests, token, wme, self.counters):
                was_empty = not matches
                matches.add(key)
                runtime.register_negative(key, self, token)
                if was_empty:
                    self._retract_propagation(runtime, token)

    def wme_unblocked(self, runtime: "ReteRuntime", key: WmeKey, token: Token) -> None:
        """A RIGHT witness vanished; re-propagate when none remain."""
        matches = self.results.get(token)
        if matches is None:
            return
        matches.discard(key)
        if not matches:
            for child in list(self.children):
                child.left_activate(runtime, token, None)

    def _retract_propagation(self, runtime: "ReteRuntime", token: Token) -> None:
        """Remove this node's downstream tokens built on *token*."""
        mine = [
            child
            for child in list(token.children)
            if child.wme is None and child.node in self._downstream_nodes()
        ]
        for child in mine:
            runtime.delete_token(child)

    def _downstream_nodes(self) -> set[object]:
        return set(self.children)

    def forget_token(self, token: Token) -> None:
        """LEFT token retracted: drop its join-result bookkeeping."""
        self.results.pop(token, None)

    def stored_results(self) -> int:
        """Number of (token, witness) pairs held (space accounting)."""
        return sum(len(matches) for matches in self.results.values())


class ProductionNode:
    """Terminal node: reports instantiations to the conflict set."""

    def __init__(
        self,
        analysis: RuleAnalysis,
        conflict_set: ConflictSet,
        counters: Counters,
        schemas: dict[str, RelationSchema],
    ) -> None:
        self.analysis = analysis
        self.conflict_set = conflict_set
        self.counters = counters
        self.schemas = schemas
        self.items: list[Token] = []

    def left_activate(self, runtime: "ReteRuntime", parent: Token,
                      wme: StoredTuple | None) -> None:
        self.counters.node_activations += 1
        token = Token(parent, wme, self)
        self.items.append(token)
        if wme is not None:
            runtime.register_token(wme, token)
        self.conflict_set.add(self._instantiation(token))

    def token_deleted(self, token: Token) -> None:
        self.items.remove(token)
        self.conflict_set.remove(self._instantiation(token))

    def _instantiation(self, token: Token) -> Instantiation:
        wmes = tuple(token.chain())
        bindings: dict[str, object] = {}
        for condition, wme in zip(self.analysis.conditions, wmes):
            if wme is None:
                continue
            schema = self.schemas[condition.class_name]
            for attribute, variable in condition.equalities:
                if variable not in bindings:
                    bindings[variable] = wme.values[schema.position(attribute)]
        return Instantiation(
            rule_name=self.analysis.name,
            wmes=wmes,
            bindings=tuple(sorted(bindings.items())),
            salience=self.analysis.rule.salience,
        )


class ReteRuntime:
    """Per-network mutable state: WME registries and retraction machinery."""

    def __init__(self, counters: Counters) -> None:
        self.counters = counters
        self.wme_tokens: dict[WmeKey, list[Token]] = {}
        self.wme_alpha: dict[WmeKey, list[AlphaMemory]] = {}
        self.wme_negatives: dict[WmeKey, list[tuple[NegativeNode, Token]]] = {}

    def register_token(self, wme: StoredTuple, token: Token) -> None:
        self.wme_tokens.setdefault(wme_key(wme), []).append(token)

    def register_alpha(self, wme: StoredTuple, amem: AlphaMemory) -> None:
        self.wme_alpha.setdefault(wme_key(wme), []).append(amem)

    def register_negative(
        self, key: WmeKey, node: NegativeNode, token: Token
    ) -> None:
        self.wme_negatives.setdefault(key, []).append((node, token))

    def remove_wme(self, wme: StoredTuple) -> None:
        """Process a "−" token: full retraction of everything built on it."""
        key = wme_key(wme)
        for amem in self.wme_alpha.pop(key, []):
            amem.retract(wme)
        # Iterate the live bucket: deleting a token also deletes its
        # descendants, which may themselves be registered under this wme
        # (self-joins put one element at several chain levels).
        bucket = self.wme_tokens.get(key)
        while bucket:
            self.delete_token(bucket[0])
        self.wme_tokens.pop(key, None)
        for node, token in self.wme_negatives.pop(key, []):
            node.wme_unblocked(self, key, token)

    def delete_token(self, token: Token) -> None:
        """Delete *token* and every descendant (retraction)."""
        while token.children:
            self.delete_token(token.children[0])
        node = token.node
        if isinstance(node, ProductionNode):
            node.token_deleted(token)
        elif isinstance(node, BetaMemory):
            node.remove_token(token)
        if token.parent is not None:
            token.parent.children.remove(token)
        if token.wme is not None:
            bucket = self.wme_tokens.get(wme_key(token.wme))
            if bucket and token in bucket:
                bucket.remove(token)
