"""Rete network runtime: tokens, memories, join/negative/production nodes.

This follows the classic OPS5/Forgy structure (§3.1 of the paper): tuples
tagged "+"/"−" enter through per-class alpha tests; surviving tuples land in
alpha memories; two-input join nodes pair them with partial matches (tokens)
held in beta memories; tokens reaching a production node put the rule into
the conflict set together with the satisfying elements.

Deletion uses token-tree retraction (each token knows its children), so a
"−" tag undoes exactly what the "+" tag built.  Negative nodes keep
per-token join-result sets, the standard treatment of OPS5's negated
condition elements.

Memories optionally *mirror* their contents into storage-engine tables —
the LEFT/RIGHT relations of the paper's §3.2 DBMS implementation — so space
and I/O accounting flows through the storage counters.

Two propagation granularities coexist (§4.2.3's set-orientation applied to
the Rete family):

* tuple-at-a-time — ``try_activate`` / ``right_activate`` /
  ``left_activate_new_token`` process one "+"/"−" token exactly as OPS5
  does; this remains the path for single-delta changes and retraction
  cascades;
* set-at-a-time — the ``*_set`` variants carry whole *token sets* (all
  same-class WM elements of one delta batch, or all tokens one upstream
  group produced) and probe the opposing LEFT/RIGHT memory relation **once
  per (node, batch group)** instead of once per token.  Each probe is
  traced as a ``rete.batch_join`` span; mirrored memories buffer their
  writes during a batch and flush through ``insert_many``/``delete_many``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.engine.conflict import ConflictSet, Instantiation
from repro.instrument import Counters
from repro.lang.analysis import RuleAnalysis
from repro.obs import Observability
from repro.obs.metrics import SIZE_BUCKETS
from repro.obs.tracing import NULL_SPAN
from repro.storage.catalog import Catalog
from repro.storage.predicate import compare
from repro.storage.schema import RelationSchema
from repro.storage.tuples import StoredTuple

WmeKey = tuple[str, int]


def wme_key(wme: StoredTuple) -> WmeKey:
    """Stable identity of a WM element."""
    return (wme.relation, wme.tid)


@dataclass(frozen=True)
class JoinTest:
    """One inter-element test at a two-input node.

    Compares the candidate element's attribute (at ``own_position``) with an
    attribute of an element earlier in the token, ``levels_up`` levels above
    the candidate (1 = the immediately preceding condition element).
    """

    own_position: int
    op: str
    levels_up: int
    other_position: int

    def key(self) -> tuple:
        return (self.own_position, self.op, self.levels_up, self.other_position)


class Token:
    """A partial match: a chain of WM elements, one per condition element."""

    __slots__ = ("parent", "wme", "node", "children")

    def __init__(
        self, parent: "Token | None", wme: StoredTuple | None, node: object
    ) -> None:
        self.parent = parent
        self.wme = wme
        self.node = node
        self.children: list[Token] = []
        if parent is not None:
            parent.children.append(self)

    def chain(self) -> list[StoredTuple | None]:
        """WM elements from the first condition element to this level."""
        wmes: list[StoredTuple | None] = []
        token: Token | None = self
        while token is not None and token.parent is not None:
            wmes.append(token.wme)
            token = token.parent
        wmes.reverse()
        return wmes

    def ancestor(self, levels_up: int) -> "Token":
        """The token *levels_up* levels above this one (1 = parent)."""
        token = self
        for _ in range(levels_up):
            token = token.parent
        return token


class MemoryMirror:
    """Mirrors a memory's contents into a storage-engine table (§3.2).

    Handles are the mirrored objects themselves (a :class:`StoredTuple` for
    alpha rows, a :class:`Token` for beta rows), so an add/remove pair for
    one object always cancels correctly even inside a buffered batch.

    During set-at-a-time propagation the owning network brackets changes in
    :meth:`begin_buffer` / :meth:`flush_buffer`: writes are accumulated and
    applied through ``delete_many``/``insert_many`` — one bulk statement per
    LEFT/RIGHT relation per batch, inside one catalog transaction.  An
    object added *and* removed while buffering never reaches storage.
    """

    def __init__(self, catalog: Catalog, name: str, arity: int) -> None:
        attributes = tuple(f"w{i + 1}" for i in range(max(arity, 1)))
        self.table = catalog.create(RelationSchema(name, attributes))
        self._rows: dict[object, int] = {}
        self._buffering = False
        self._pending_adds: dict[object, tuple] = {}
        self._pending_removes: list[int] = []

    def add(self, handle: object, tids: tuple[int | None, ...]) -> None:
        values = tuple(tids) or (None,)
        if self._buffering:
            self._pending_adds[handle] = values
            return
        row = self.table.insert(values)
        self._rows[handle] = row.tid

    def remove(self, handle: object) -> None:
        if self._buffering and self._pending_adds.pop(handle, None) is not None:
            return  # born and retracted inside the batch: annihilates
        row_tid = self._rows.pop(handle, None)
        if row_tid is None:
            return
        if self._buffering:
            self._pending_removes.append(row_tid)
        else:
            self.table.delete(row_tid)

    def begin_buffer(self) -> None:
        """Start accumulating writes for one delta batch."""
        self._buffering = True

    def flush_buffer(self) -> None:
        """Apply the accumulated writes set-at-a-time."""
        self._buffering = False
        if self._pending_removes:
            self.table.delete_many(self._pending_removes)
            self._pending_removes = []
        if self._pending_adds:
            stored = self.table.insert_many(list(self._pending_adds.values()))
            for handle, row in zip(self._pending_adds, stored):
                self._rows[handle] = row.tid
            self._pending_adds = {}

    def cells(self) -> int:
        return len(self.table) * self.table.schema.arity


class AlphaMemory:
    """Stores the WM elements passing one constant-test conjunction.

    Storage is columnar (the RIGHT relation of §3.2 viewed column-wise):
    admitted elements occupy a compact row id indexing a parallel list of
    element references plus one value column per attribute position.  The
    insertion-ordered ``_index`` maps element identity to its row; deleted
    rows join a free list and are reused by later inserts, so columns never
    shrink mid-batch and row ids stay dense.  Join kernels probe the value
    columns directly instead of materializing per-element tuples.
    """

    def __init__(
        self,
        name: str,
        class_name: str,
        test: Callable[[tuple], bool],
        counters: Counters,
        mirror: MemoryMirror | None = None,
        arity: int | None = None,
    ) -> None:
        self.name = name
        self.class_name = class_name
        self.test = test
        self.counters = counters
        self.mirror = mirror
        self._index: dict[WmeKey, int] = {}
        self._wme_rows: list[StoredTuple | None] = []
        self._columns: list[list] | None = (
            [[] for _ in range(arity)] if arity is not None else None
        )
        self._free: list[int] = []
        self.successors: list[JoinNode | NegativeNode] = []

    def _admit(self, wme: StoredTuple) -> None:
        if self._columns is None:
            self._columns = [[] for _ in wme.values]
        if self._free:
            row = self._free.pop()
            self._wme_rows[row] = wme
            for column, value in zip(self._columns, wme.values):
                column[row] = value
        else:
            self._wme_rows.append(wme)
            for column, value in zip(self._columns, wme.values):
                column.append(value)
            row = len(self._wme_rows) - 1
        self._index[wme_key(wme)] = row

    def try_activate(self, wme: StoredTuple) -> bool:
        """Run the constant test; admit and propagate on success."""
        self.counters.node_activations += 1
        self.counters.comparisons += 1
        if not self.test(wme.values):
            return False
        self._admit(wme)
        if self.mirror is not None:
            self.mirror.add(wme, (wme.tid,))
        self.counters.tokens += 1
        # Downstream-first: successors append as beta chains grow top-down,
        # so creation order is topological (upstream before downstream).
        # When this memory is shared by several CEs of one rule (MQO), a
        # deep join's right activation must run before the shallow joins
        # push this wme's own token into its left memory, or each
        # self-join pair is produced twice.
        for successor in reversed(list(self.successors)):
            successor.right_activate(wme)
        return True

    def insert_set(self, wmes: list[StoredTuple]) -> list[StoredTuple]:
        """Run the constant test over a whole token set; admit survivors.

        One node activation covers the set.  Successors are *not* activated
        here — the caller propagates the admitted set once per successor,
        so each opposing memory is probed once per (node, batch group).
        """
        self.counters.node_activations += 1
        admitted: list[StoredTuple] = []
        for wme in wmes:
            self.counters.comparisons += 1
            if not self.test(wme.values):
                continue
            self._admit(wme)
            if self.mirror is not None:
                self.mirror.add(wme, (wme.tid,))
            self.counters.tokens += 1
            admitted.append(wme)
        return admitted

    def evaluate(self, wmes: list[StoredTuple], counters: Counters) -> list[bool]:
        """Pure half of :meth:`insert_set`: the constant-test mask.

        Reads nothing but the compiled test and the elements' values, so
        worker threads can evaluate disjoint shards concurrently; the
        caller admits serially with :meth:`admit_set`.  Comparison counts
        go to *counters* (a per-task bag on the parallel path).
        """
        test = self.test
        counters.comparisons += len(wmes)
        return [test(wme.values) for wme in wmes]

    def admit_set(
        self, wmes: list[StoredTuple], mask: list[bool]
    ) -> list[StoredTuple]:
        """Mutating half of :meth:`insert_set`: admit per a computed mask.

        Consumes *wmes* in their original order, so the memory's
        insertion order — and everything downstream — is independent of
        how the mask was sharded.  Counter totals match the serial
        :meth:`insert_set` exactly (one activation per set, one token
        per admitted element; comparisons were counted by ``evaluate``).
        """
        self.counters.node_activations += 1
        admitted: list[StoredTuple] = []
        for wme, ok in zip(wmes, mask):
            if not ok:
                continue
            self._admit(wme)
            if self.mirror is not None:
                self.mirror.add(wme, (wme.tid,))
            self.counters.tokens += 1
            admitted.append(wme)
        return admitted

    def retract(self, wme: StoredTuple) -> bool:
        """Remove *wme* if present; returns whether it was stored."""
        row = self._index.pop(wme_key(wme), None)
        if row is None:
            return False
        self._wme_rows[row] = None
        for column in self._columns or ():
            column[row] = None
        self._free.append(row)
        if self.mirror is not None:
            self.mirror.remove(wme)
        return True

    def wme_keys(self):
        """Identities of the stored elements, in insertion order."""
        return self._index.keys()

    def wmes(self) -> list[StoredTuple]:
        """The stored elements, in insertion order."""
        rows = self._wme_rows
        return [rows[row] for row in self._index.values()]

    def rows(self):
        """Live row ids, in insertion order (kernel probes)."""
        return self._index.values()

    def column(self, position: int) -> list:
        """The value column for one attribute position."""
        assert self._columns is not None
        return self._columns[position]

    def wme_at(self, row: int) -> StoredTuple | None:
        return self._wme_rows[row]

    def __len__(self) -> int:
        return len(self._index)


class BetaMemory:
    """Stores tokens covering a prefix of a rule's condition elements.

    Storage is columnar (the LEFT relation of §3.2 viewed column-wise): a
    compact row id indexes a parallel list of token references plus one
    *slot column* per covered condition element, holding that level's WM
    element (``None`` under a negated CE).  ``_order`` maps a token to its
    row in insertion order; freed rows are reused, making
    :meth:`remove_token` O(1) instead of the former ``list.remove`` scan.
    A join test ``levels_up`` above a candidate reads slot column
    ``level - levels_up`` directly — no token-chain pointer chase.
    """

    def __init__(
        self,
        name: str,
        level: int,
        counters: Counters,
        mirror: MemoryMirror | None = None,
    ) -> None:
        self.name = name
        self.level = level  # number of condition elements covered
        self.counters = counters
        self.mirror = mirror
        self._order: dict[Token, int] = {}
        self._token_rows: list[Token | None] = []
        self._slots: list[list[StoredTuple | None]] = [
            [] for _ in range(level)
        ]
        self._free: list[int] = []
        self.children: list[JoinNode | NegativeNode] = []
        self.dummy_token: Token | None = None

    def _admit(self, token: Token, chain: list[StoredTuple | None]) -> None:
        if self._free:
            row = self._free.pop()
            self._token_rows[row] = token
            for slot, wme in zip(self._slots, chain):
                slot[row] = wme
        else:
            self._token_rows.append(token)
            for slot, wme in zip(self._slots, chain):
                slot.append(wme)
            row = len(self._token_rows) - 1
        self._order[token] = row

    def make_dummy(self) -> Token:
        """Install the dummy top token (for the network root)."""
        self.dummy_token = Token(None, None, self)
        self._admit(self.dummy_token, self.dummy_token.chain())
        return self.dummy_token

    def left_activate(self, runtime: "ReteRuntime", parent: Token,
                      wme: StoredTuple | None) -> None:
        self.counters.node_activations += 1
        token = Token(parent, wme, self)
        chain = token.chain()
        self._admit(token, chain)
        self.counters.tokens += 1
        if wme is not None:
            runtime.register_token(wme, token)
        if self.mirror is not None:
            tids = tuple(w.tid if w is not None else None for w in chain)
            self.mirror.add(token, tids)
        for child in list(self.children):
            child.left_activate_new_token(runtime, token)

    def left_activate_set(
        self,
        runtime: "ReteRuntime",
        pairs: list[tuple[Token, StoredTuple | None]],
        group: str,
    ) -> None:
        """Set counterpart of :meth:`left_activate`.

        Admits one token per ``(parent, wme)`` pair, then activates each
        child exactly once with the whole new-token set, preserving the
        one-probe-per-(node, group) invariant downstream.
        """
        self.counters.node_activations += 1
        tokens: list[Token] = []
        for parent, wme in pairs:
            token = Token(parent, wme, self)
            chain = token.chain()
            self._admit(token, chain)
            self.counters.tokens += 1
            if wme is not None:
                runtime.register_token(wme, token)
            if self.mirror is not None:
                tids = tuple(w.tid if w is not None else None for w in chain)
                self.mirror.add(token, tids)
            tokens.append(token)
        for child in list(self.children):
            child.left_activate_token_set(runtime, tokens, group)

    def remove_token(self, token: Token) -> None:
        row = self._order.pop(token)
        self._token_rows[row] = None
        for slot in self._slots:
            slot[row] = None
        self._free.append(row)
        if self.mirror is not None:
            self.mirror.remove(token)
        for child in self.children:
            child.forget_token(token)

    def tokens(self) -> list[Token]:
        """The stored tokens, in insertion order."""
        return list(self._order)

    def row_items(self):
        """(token, row) pairs in insertion order (kernel probes)."""
        return self._order.items()

    def row_of(self, token: Token) -> int:
        return self._order[token]

    def slot_column(self, index: int) -> list[StoredTuple | None]:
        """The WM-element column for condition-element level *index*."""
        return self._slots[index]

    def __len__(self) -> int:
        return len(self._order)


def _run_join_tests(
    tests: tuple[JoinTest, ...],
    token: Token,
    wme: StoredTuple,
    counters: Counters,
) -> bool:
    for test in tests:
        other = token.ancestor(test.levels_up - 1).wme
        counters.comparisons += 1
        if other is None:
            return False
        if not compare(
            test.op, wme.values[test.own_position], other.values[test.other_position]
        ):
            return False
    return True


def _probe_span(
    runtime: "ReteRuntime",
    node_name: str,
    input_side: str,
    probed: str,
    group: str,
    size: int,
):
    """Open the ``rete.batch_join`` span for one opposing-memory probe.

    Counts the probe (``rete.join_probes``) and the incoming token-set size
    (``rete.tokenset_size``); returns :data:`NULL_SPAN` when unobserved so
    the disabled path stays a single predicate check.
    """
    obs = runtime.obs
    if obs is None or not obs.enabled:
        return NULL_SPAN
    metrics = obs.metrics
    metrics.counter("rete.join_probes").inc()
    metrics.histogram("rete.tokenset_size", SIZE_BUCKETS).observe(size)
    return obs.span(
        "rete.batch_join",
        node=node_name,
        input=input_side,
        probed=probed,
        seq=runtime.batch_seq,
        group=group,
        size=size,
    )


def _record_pairs(runtime: "ReteRuntime", count: int) -> None:
    """Record how many join pairs one probe produced."""
    obs = runtime.obs
    if obs is not None and obs.enabled:
        obs.metrics.histogram("rete.join_pairs", SIZE_BUCKETS).observe(count)


def _fanout_pool(runtime: "ReteRuntime | None", size: int):
    """The worker pool to fan a *size*-item probe out on, or ``None``.

    Serial stays the default: no pool, an inactive (one-worker) pool, or
    a token set below the pool's fan-out threshold all return ``None``
    and the caller runs the classic single-threaded probe.
    """
    pool = runtime.pool if runtime is not None else None
    if pool is not None and pool.active and size >= pool.min_fanout_items:
        return pool
    return None


class JoinNode:
    """Two-input node joining a beta memory (LEFT) and alpha memory (RIGHT)."""

    def __init__(
        self,
        name: str,
        bmem: BetaMemory,
        amem: AlphaMemory,
        tests: tuple[JoinTest, ...],
        counters: Counters,
    ) -> None:
        self.name = name
        self.bmem = bmem
        self.amem = amem
        self.tests = tests
        self.counters = counters
        self.children: list[BetaMemory | NegativeNode | ProductionNode] = []
        bmem.children.append(self)
        amem.successors.append(self)
        self.runtime: ReteRuntime | None = None
        #: Compiled join kernel + plan (``repro.match.compile``); ``None``
        #: keeps the interpreted ``_run_join_tests`` reference path.
        self.kernel = None
        self.plan = None
        #: Lifetime opposing-memory probes / largest token set seen — plain
        #: ints read by :meth:`ReteNetwork.describe` (per-node hotspots).
        self.probes = 0
        self.max_group = 0

    def _pair_matches(self, token: Token, wme: StoredTuple) -> bool:
        if self.kernel is not None:
            return self.kernel.pair_test(token, wme, self.counters)
        return _run_join_tests(self.tests, token, wme, self.counters)

    def left_activate_new_token(self, runtime: "ReteRuntime", token: Token) -> None:
        self.counters.node_activations += 1
        self.probes += 1
        for wme in self.amem.wmes():
            if self._pair_matches(token, wme):
                for child in list(self.children):
                    child.left_activate(runtime, token, wme)

    def right_activate(self, wme: StoredTuple) -> None:
        self.counters.node_activations += 1
        self.probes += 1
        runtime = self.runtime
        for token in self.bmem.tokens():
            if self._pair_matches(token, wme):
                for child in list(self.children):
                    child.left_activate(runtime, token, wme)

    def left_activate_token_set(
        self, runtime: "ReteRuntime", tokens: list[Token], group: str
    ) -> None:
        """A LEFT token set arrives: probe the RIGHT memory once for all."""
        self.counters.node_activations += 1
        self.probes += 1
        if len(tokens) > self.max_group:
            self.max_group = len(tokens)
        with _probe_span(
            runtime, self.name, "left", "RIGHT", group, len(tokens)
        ) as span:
            pool = _fanout_pool(runtime, len(tokens))
            if self.kernel is not None:
                span.set("kernel", self.kernel.label)
                if pool is not None:
                    span.set("workers", pool.workers)
                    pairs = pool.map_chunks(
                        tokens,
                        lambda chunk, counters: self.kernel.probe_left(
                            self, chunk, counters
                        ),
                        counters=self.counters,
                        label=self.name,
                    )
                else:
                    pairs = self.kernel.probe_left(self, tokens, self.counters)
            else:
                rights = self.amem.wmes()
                tests = self.tests
                if pool is not None:
                    span.set("workers", pool.workers)
                    pairs = pool.map_chunks(
                        tokens,
                        lambda chunk, counters: [
                            (token, wme)
                            for token in chunk
                            for wme in rights
                            if _run_join_tests(tests, token, wme, counters)
                        ],
                        counters=self.counters,
                        label=self.name,
                    )
                else:
                    pairs = [
                        (token, wme)
                        for token in tokens
                        for wme in rights
                        if _run_join_tests(tests, token, wme, self.counters)
                    ]
            span.set("pairs", len(pairs))
        _record_pairs(runtime, len(pairs))
        if pairs:
            for child in list(self.children):
                child.left_activate_set(runtime, pairs, group)

    def right_activate_set(self, wmes: list[StoredTuple], group: str) -> None:
        """A RIGHT token set arrives: probe the LEFT memory once for all."""
        self.counters.node_activations += 1
        self.probes += 1
        if len(wmes) > self.max_group:
            self.max_group = len(wmes)
        runtime = self.runtime
        with _probe_span(
            runtime, self.name, "right", "LEFT", group, len(wmes)
        ) as span:
            pool = _fanout_pool(runtime, len(wmes))
            if self.kernel is not None:
                span.set("kernel", self.kernel.label)
                if pool is not None:
                    span.set("workers", pool.workers)
                    pairs = pool.map_chunks(
                        wmes,
                        lambda chunk, counters: self.kernel.probe_right(
                            self, chunk, counters
                        ),
                        counters=self.counters,
                        label=self.name,
                    )
                else:
                    pairs = self.kernel.probe_right(self, wmes, self.counters)
            else:
                lefts = self.bmem.tokens()
                tests = self.tests
                if pool is not None:
                    span.set("workers", pool.workers)
                    pairs = pool.map_chunks(
                        wmes,
                        lambda chunk, counters: [
                            (token, wme)
                            for wme in chunk
                            for token in lefts
                            if _run_join_tests(tests, token, wme, counters)
                        ],
                        counters=self.counters,
                        label=self.name,
                    )
                else:
                    pairs = [
                        (token, wme)
                        for wme in wmes
                        for token in lefts
                        if _run_join_tests(tests, token, wme, self.counters)
                    ]
            span.set("pairs", len(pairs))
        _record_pairs(runtime, len(pairs))
        if pairs:
            for child in list(self.children):
                child.left_activate_set(runtime, pairs, group)

    def forget_token(self, token: Token) -> None:
        """A LEFT token disappeared; plain joins keep no per-token state."""


class NegativeNode:
    """Two-input node for a negated condition element.

    Sits in a join node's position: LEFT input is a beta memory, RIGHT an
    alpha memory.  A LEFT token propagates (with a ``None`` element slot)
    exactly while it has no join partner on the RIGHT.
    """

    def __init__(
        self,
        name: str,
        bmem: BetaMemory,
        amem: AlphaMemory,
        tests: tuple[JoinTest, ...],
        counters: Counters,
    ) -> None:
        self.name = name
        self.bmem = bmem
        self.amem = amem
        self.tests = tests
        self.counters = counters
        self.children: list[BetaMemory | NegativeNode | ProductionNode] = []
        self.results: dict[Token, set[WmeKey]] = {}
        #: Pure-equality tests admit hash-keyed witness probes on the
        #: batch paths (``compare("=", a, b)`` agrees exactly with dict
        #: key equality over the value domain); any other operator falls
        #: back to the nested scan.  Vacuously true for test-free nodes.
        self.hash_eligible = all(test.op == "=" for test in tests)
        bmem.children.append(self)
        amem.successors.append(self)
        self.runtime: ReteRuntime | None = None
        #: Compiled kernel + plan, as on :class:`JoinNode`.  A kernel
        #: generalizes ``hash_eligible``: the *equality subset* of the
        #: tests keys the witness index and any remaining tests filter
        #: within a bucket, so mixed-operator negations hash too.
        self.kernel = None
        self.plan = None
        #: Same per-node hotspot counters as :class:`JoinNode`.
        self.probes = 0
        self.max_group = 0

    def _pair_matches(self, token: Token, wme: StoredTuple) -> bool:
        if self.kernel is not None:
            return self.kernel.pair_test(token, wme, self.counters)
        return _run_join_tests(self.tests, token, wme, self.counters)

    def _witness_key(self, wme: StoredTuple) -> tuple:
        """The RIGHT element's values at the tested positions."""
        self.counters.comparisons += len(self.tests)
        return tuple(wme.values[test.own_position] for test in self.tests)

    def _probe_key(
        self, token: Token, counters: Counters | None = None
    ) -> tuple | None:
        """The LEFT token's values at the tested positions.

        ``None`` when an ancestor slot holds no element (a negated CE
        upstream): every join test fails against it, so the token can
        have no witnesses at all.  *counters* routes the comparison
        counts to a per-task bag on the parallel path.
        """
        if counters is None:
            counters = self.counters
        values = []
        for test in self.tests:
            other = token.ancestor(test.levels_up - 1).wme
            counters.comparisons += 1
            if other is None:
                return None
            values.append(other.values[test.other_position])
        return tuple(values)

    def left_activate_new_token(self, runtime: "ReteRuntime", token: Token) -> None:
        self.counters.node_activations += 1
        self.probes += 1
        matches = {
            wme_key(wme)
            for wme in self.amem.wmes()
            if self._pair_matches(token, wme)
        }
        self.results[token] = matches
        for key in matches:
            runtime.register_negative(key, self, token)
        if not matches:
            for child in list(self.children):
                child.left_activate(runtime, token, None)

    def right_activate(self, wme: StoredTuple) -> None:
        self.counters.node_activations += 1
        self.probes += 1
        runtime = self.runtime
        key = wme_key(wme)
        for token, matches in list(self.results.items()):
            if self._pair_matches(token, wme):
                was_empty = not matches
                matches.add(key)
                runtime.register_negative(key, self, token)
                if was_empty:
                    self._retract_propagation(runtime, token)

    def left_activate_token_set(
        self, runtime: "ReteRuntime", tokens: list[Token], group: str
    ) -> None:
        """A LEFT token set: one RIGHT probe computes every witness set.

        With pure-equality tests the RIGHT memory is indexed once by the
        tested positions and each token's witnesses come from a single
        hash lookup — O(T + R) instead of the O(T × R) nested scan.
        """
        self.counters.node_activations += 1
        self.probes += 1
        if len(tokens) > self.max_group:
            self.max_group = len(tokens)
        with _probe_span(
            runtime, self.name, "left", "RIGHT", group, len(tokens)
        ) as span:
            unblocked: list[tuple[Token, StoredTuple | None]] = []
            pool = _fanout_pool(runtime, len(tokens))
            if self.kernel is not None:
                span.set("kernel", self.kernel.label)
                if pool is not None:
                    span.set("workers", pool.workers)
                    witness_lists = pool.map_chunks(
                        tokens,
                        lambda chunk, counters: self.kernel.witness_lists(
                            self, chunk, counters
                        ),
                        counters=self.counters,
                        label=self.name,
                    )
                else:
                    witness_lists = self.kernel.witness_lists(
                        self, tokens, self.counters
                    )
            elif self.hash_eligible:
                span.set("probe", "hash")
                # The witness index is built once on the caller (its
                # comparison counts land in the shared counters, exactly
                # as on the serial path) and shared read-only by every
                # probe chunk.
                rights = self.amem.wmes()
                index: dict[tuple, list[StoredTuple]] = {}
                for wme in rights:
                    index.setdefault(self._witness_key(wme), []).append(wme)
                if pool is not None:
                    span.set("workers", pool.workers)

                    def probe_chunk(chunk, counters):
                        lists = []
                        for token in chunk:
                            probe = self._probe_key(token, counters)
                            lists.append(
                                index.get(probe, ())
                                if probe is not None
                                else ()
                            )
                        return lists

                    witness_lists = pool.map_chunks(
                        tokens,
                        probe_chunk,
                        counters=self.counters,
                        label=self.name,
                    )
                else:
                    witness_lists = []
                    for token in tokens:
                        probe = self._probe_key(token)
                        witness_lists.append(
                            index.get(probe, ()) if probe is not None else ()
                        )
            else:
                rights = self.amem.wmes()
                if pool is not None:
                    span.set("workers", pool.workers)
                    tests = self.tests
                    witness_lists = pool.map_chunks(
                        tokens,
                        lambda chunk, counters: [
                            [
                                wme
                                for wme in rights
                                if _run_join_tests(tests, token, wme, counters)
                            ]
                            for token in chunk
                        ],
                        counters=self.counters,
                        label=self.name,
                    )
                else:
                    witness_lists = [
                        [
                            wme
                            for wme in rights
                            if _run_join_tests(
                                self.tests, token, wme, self.counters
                            )
                        ]
                        for token in tokens
                    ]
            for token, witnesses in zip(tokens, witness_lists):
                matches = {wme_key(wme) for wme in witnesses}
                self.results[token] = matches
                for key in matches:
                    runtime.register_negative(key, self, token)
                if not matches:
                    unblocked.append((token, None))
            span.set("pairs", len(unblocked))
        _record_pairs(runtime, len(unblocked))
        if unblocked:
            for child in list(self.children):
                child.left_activate_set(runtime, unblocked, group)

    def right_activate_set(self, wmes: list[StoredTuple], group: str) -> None:
        """A RIGHT token set: one LEFT probe updates every witness set.

        Tokens whose witness set became non-empty have their downstream
        propagation retracted after the probe (final state is the same as
        retracting at the first new witness, since retraction only depends
        on the token, not on which witness blocked it).

        This path stays serial even under a worker pool: it mutates the
        per-token witness sets in place while probing, so there is no
        pure read phase to fan out (a known serial fallback — see
        ``docs/PARALLELISM.md``).
        """
        self.counters.node_activations += 1
        self.probes += 1
        if len(wmes) > self.max_group:
            self.max_group = len(wmes)
        runtime = self.runtime
        newly_blocked: list[Token] = []
        with _probe_span(
            runtime, self.name, "right", "LEFT", group, len(wmes)
        ) as span:
            buckets: dict[tuple, list[StoredTuple]] | None = None
            kernel = self.kernel
            if kernel is not None:
                span.set("kernel", kernel.label)
                buckets = kernel.index_right(wmes, self.counters)
            elif self.hash_eligible:
                span.set("probe", "hash")
                buckets = {}
                for wme in wmes:
                    buckets.setdefault(self._witness_key(wme), []).append(wme)
            for token, matches in list(self.results.items()):
                if kernel is not None:
                    hits = kernel.bucket_hits(
                        self, token, buckets, wmes, self.counters
                    )
                elif buckets is not None:
                    probe = self._probe_key(token)
                    hits = (
                        buckets.get(probe, ()) if probe is not None else ()
                    )
                else:
                    hits = [
                        wme
                        for wme in wmes
                        if _run_join_tests(
                            self.tests, token, wme, self.counters
                        )
                    ]
                if not hits:
                    continue
                was_empty = not matches
                for wme in hits:
                    key = wme_key(wme)
                    matches.add(key)
                    runtime.register_negative(key, self, token)
                if was_empty:
                    newly_blocked.append(token)
            span.set("pairs", len(newly_blocked))
        for token in newly_blocked:
            self._retract_propagation(runtime, token)

    def wme_unblocked(self, runtime: "ReteRuntime", key: WmeKey, token: Token) -> None:
        """A RIGHT witness vanished; re-propagate when none remain."""
        matches = self.results.get(token)
        if matches is None:
            return
        matches.discard(key)
        if not matches:
            for child in list(self.children):
                child.left_activate(runtime, token, None)

    def flush_unblocked(
        self,
        runtime: "ReteRuntime",
        entries: list[tuple[WmeKey, Token]],
        group: str,
    ) -> None:
        """Deferred batch unblocks: re-propagate tokens with no witnesses.

        During a batch's delete phase the runtime records vanished
        witnesses instead of re-propagating immediately; once every "−"
        token has been processed, the survivors are propagated as one set.
        A token retracted later in the same delete phase has left
        ``results`` by now and is skipped — it no longer exists.
        """
        self.counters.node_activations += 1
        pairs: list[tuple[Token, StoredTuple | None]] = []
        seen: set[int] = set()
        for key, token in entries:
            matches = self.results.get(token)
            if matches is None:
                continue
            matches.discard(key)
            if not matches and id(token) not in seen:
                seen.add(id(token))
                pairs.append((token, None))
        if pairs:
            for child in list(self.children):
                child.left_activate_set(runtime, pairs, group)

    def _retract_propagation(self, runtime: "ReteRuntime", token: Token) -> None:
        """Remove this node's downstream tokens built on *token*."""
        mine = [
            child
            for child in list(token.children)
            if child.wme is None and child.node in self._downstream_nodes()
        ]
        for child in mine:
            runtime.delete_token(child)

    def _downstream_nodes(self) -> set[object]:
        return set(self.children)

    def forget_token(self, token: Token) -> None:
        """LEFT token retracted: drop its join-result bookkeeping."""
        self.results.pop(token, None)

    def stored_results(self) -> int:
        """Number of (token, witness) pairs held (space accounting)."""
        return sum(len(matches) for matches in self.results.values())


class ProductionNode:
    """Terminal node: reports instantiations to the conflict set."""

    def __init__(
        self,
        analysis: RuleAnalysis,
        conflict_set: ConflictSet,
        counters: Counters,
        schemas: dict[str, RelationSchema],
    ) -> None:
        self.analysis = analysis
        self.conflict_set = conflict_set
        self.counters = counters
        self.schemas = schemas
        self.items: list[Token] = []

    def left_activate(self, runtime: "ReteRuntime", parent: Token,
                      wme: StoredTuple | None) -> None:
        self.counters.node_activations += 1
        token = Token(parent, wme, self)
        self.items.append(token)
        if wme is not None:
            runtime.register_token(wme, token)
        self.conflict_set.add(self._instantiation(token))

    def left_activate_set(
        self,
        runtime: "ReteRuntime",
        pairs: list[tuple[Token, StoredTuple | None]],
        group: str,
    ) -> None:
        """Set counterpart of :meth:`left_activate` (one activation)."""
        self.counters.node_activations += 1
        for parent, wme in pairs:
            token = Token(parent, wme, self)
            self.items.append(token)
            if wme is not None:
                runtime.register_token(wme, token)
            self.conflict_set.add(self._instantiation(token))

    def token_deleted(self, token: Token) -> None:
        self.items.remove(token)
        self.conflict_set.remove(self._instantiation(token))

    def _instantiation(self, token: Token) -> Instantiation:
        wmes = tuple(token.chain())
        bindings: dict[str, object] = {}
        for condition, wme in zip(self.analysis.conditions, wmes):
            if wme is None:
                continue
            schema = self.schemas[condition.class_name]
            for attribute, variable in condition.equalities:
                if variable not in bindings:
                    bindings[variable] = wme.values[schema.position(attribute)]
        return Instantiation(
            rule_name=self.analysis.name,
            wmes=wmes,
            bindings=tuple(sorted(bindings.items())),
            salience=self.analysis.rule.salience,
        )


class ReteRuntime:
    """Per-network mutable state: WME registries and retraction machinery."""

    def __init__(self, counters: Counters) -> None:
        self.counters = counters
        self.wme_tokens: dict[WmeKey, list[Token]] = {}
        self.wme_alpha: dict[WmeKey, list[AlphaMemory]] = {}
        self.wme_negatives: dict[WmeKey, list[tuple[NegativeNode, Token]]] = {}
        #: Observability used by the batched propagation path (set by the
        #: owning strategy; ``None`` keeps every probe unobserved).
        self.obs: Observability | None = None
        #: Monotone id of the delta batch currently propagating; stamped on
        #: every ``rete.batch_join`` span so probes can be grouped per batch.
        self.batch_seq = 0
        #: While a batch's delete phase runs, vanished negative-node
        #: witnesses are parked here instead of re-propagating one at a
        #: time; the network flushes them as token sets afterwards.
        self.pending_unblocks: (
            dict[NegativeNode, list[tuple[WmeKey, Token]]] | None
        ) = None
        #: Worker pool for sharded batch propagation
        #: (:class:`repro.parallel.WorkerPool`), set by the owning
        #: strategy; ``None`` keeps every batch path strictly serial.
        self.pool = None

    def register_token(self, wme: StoredTuple, token: Token) -> None:
        self.wme_tokens.setdefault(wme_key(wme), []).append(token)

    def register_alpha(self, wme: StoredTuple, amem: AlphaMemory) -> None:
        self.wme_alpha.setdefault(wme_key(wme), []).append(amem)

    def register_negative(
        self, key: WmeKey, node: NegativeNode, token: Token
    ) -> None:
        self.wme_negatives.setdefault(key, []).append((node, token))

    def remove_wme(self, wme: StoredTuple) -> None:
        """Process a "−" token: full retraction of everything built on it."""
        key = wme_key(wme)
        for amem in self.wme_alpha.pop(key, []):
            amem.retract(wme)
        # Iterate the live bucket: deleting a token also deletes its
        # descendants, which may themselves be registered under this wme
        # (self-joins put one element at several chain levels).
        bucket = self.wme_tokens.get(key)
        while bucket:
            self.delete_token(bucket[0])
        self.wme_tokens.pop(key, None)
        for node, token in self.wme_negatives.pop(key, []):
            if self.pending_unblocks is not None:
                self.pending_unblocks.setdefault(node, []).append((key, token))
            else:
                node.wme_unblocked(self, key, token)

    def delete_token(self, token: Token) -> None:
        """Delete *token* and every descendant (retraction)."""
        while token.children:
            self.delete_token(token.children[0])
        node = token.node
        if isinstance(node, ProductionNode):
            node.token_deleted(token)
        elif isinstance(node, BetaMemory):
            node.remove_token(token)
        if token.parent is not None:
            token.parent.children.remove(token)
        if token.wme is not None:
            bucket = self.wme_tokens.get(wme_key(token.wme))
            if bucket and token in bucket:
                bucket.remove(token)
