"""The primary side: collect fsynced WAL records, frame them, ship them.

:class:`LogShipper` is deliberately sans-io.  It plugs a tap into each
tenant's :class:`~repro.recovery.wal.WalWriter` (called after every
completed fsync with the raw record lines that just became durable) and
turns the accumulated records into NDJSON frames:

``snapshot``
    One tenant's catch-up bootstrap: the run meta, the latest checkpoint
    body when the log prefix was compacted away, and every durable
    record past the follower's ``have`` seq — read segment-aware off
    :func:`~repro.recovery.wal.read_wal_chain`, anchored on the sidecar
    ``base_seq``.
``records``
    The records one group-commit barrier made durable for one tenant.
``commit``
    The round barrier: per-tenant durable tips.  The follower fsyncs its
    local logs and answers with an ``ack`` frame; the server releases
    client acks only after that answer (semi-synchronous replication).

The asyncio send/receive glue lives in :mod:`repro.serve.server`; the
crash fuzzer and the metrics baseline drive this core directly, in
process, with no sockets.
"""

from __future__ import annotations

import json
import os

from repro.recovery.checkpoint import load_checkpoint
from repro.recovery.wal import _crc, read_wal_chain


class LogShipper:
    """Per-tenant pending records between group commits, plus framing."""

    def __init__(self, obs=None, epoch: int = 1) -> None:
        self.obs = obs
        self.epoch = epoch
        #: The attached follower link (opaque to this core; the server
        #: stores its asyncio connection here, tests any truthy object).
        #: While None, taps record only the durable tips — no buffering.
        self.link = None
        self._pending: dict[str, list[tuple[int, str]]] = {}
        #: Last durably-synced seq per tenant (ships with commit frames).
        self.tips: dict[str, int] = {}
        #: What the follower last acked, per tenant.
        self.follower_acked: dict[str, int] = {}
        self.ship_rounds = 0
        self.shipped_records = 0
        self.shipped_bytes = 0
        self.snapshots = 0
        self.round_acks = 0
        self.degraded = 0

    # -- taps ------------------------------------------------------------------

    def tap_for(self, tenant: str):
        """The :attr:`WalWriter.tap` hook for one tenant's writer."""

        def tap(first_seq: int, lines: list[str]) -> None:
            self.on_sync(tenant, first_seq, lines)

        return tap

    def on_sync(self, tenant: str, first_seq: int, lines: list[str]) -> None:
        self.tips[tenant] = first_seq + len(lines) - 1
        if self.link is None:
            return
        bucket = self._pending.setdefault(tenant, [])
        for offset, line in enumerate(lines):
            bucket.append((first_seq + offset, line))

    # -- follower attachment ---------------------------------------------------

    def attach(self, link) -> None:
        if self.link is not None:
            raise RuntimeError("a follower is already attached")
        self.link = link
        self._pending = {}
        self.follower_acked = {}
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.gauge("replica.followers").set(1)

    def detach(self) -> None:
        self.link = None
        self._pending = {}
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.gauge("replica.followers").set(0)

    # -- framing ---------------------------------------------------------------

    def snapshot_frame(
        self,
        tenant: str,
        wal_path: str,
        checkpoint_path: str | None,
        have_seq: int = 0,
        meta: dict | None = None,
    ) -> dict:
        """The catch-up bootstrap frame for one tenant.

        Must be called with the tenant's writer fully synced (no pending
        buffer) and the tap attached in the same event-loop step, so no
        record can fall between the chain read and the live tail.
        """
        chain = read_wal_chain(wal_path)
        meta = chain.meta if chain.meta is not None else meta
        checkpoint = None
        base_seq = have_seq
        if have_seq + 1 < chain.first_seq:
            # The follower's position was compacted away; bootstrap from
            # the checkpoint that superseded the deleted prefix.
            if checkpoint_path and os.path.exists(checkpoint_path):
                checkpoint = load_checkpoint(checkpoint_path)
                base_seq = checkpoint["wal_seq"]
            else:
                base_seq = 0
        records = [
            {
                "seq": record.seq,
                "kind": record.kind,
                "body": record.body,
                "crc": None,
            }
            for record in chain.records
            if record.seq > base_seq
        ]
        # Re-stamp CRCs from the parsed bodies (read_wal validated them;
        # the wire frame re-serializes, so recompute canonically).
        for record in records:
            record["crc"] = _crc(
                record["seq"], record["kind"], record["body"]
            )
        self.snapshots += 1
        self.tips[tenant] = max(
            self.tips.get(tenant, 0),
            records[-1]["seq"] if records else base_seq,
        )
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("replica.snapshot_frames").inc()
        return {
            "frame": "snapshot",
            "tenant": tenant,
            "epoch": self.epoch,
            "meta": meta,
            "checkpoint": checkpoint,
            "base_seq": base_seq,
            "records": records,
        }

    def round_frames(self) -> list[dict]:
        """Drain pending records into this round's frames (+ commit)."""
        frames: list[dict] = []
        for tenant in sorted(self._pending):
            entries = self._pending[tenant]
            if not entries:
                continue
            self._pending[tenant] = []
            size = sum(len(line.encode("utf-8")) for _, line in entries)
            records = [json.loads(line) for _, line in entries]
            frames.append(
                {
                    "frame": "records",
                    "tenant": tenant,
                    "epoch": self.epoch,
                    "records": records,
                }
            )
            self.shipped_records += len(records)
            self.shipped_bytes += size
            if self.obs is not None and self.obs.enabled:
                metrics = self.obs.metrics
                metrics.counter("replica.shipped_records").inc(len(records))
                metrics.counter("replica.shipped_bytes").inc(size)
                metrics.gauge(f"replica.shipped_seq[{tenant}]").set(
                    records[-1]["seq"]
                )
        frames.append(
            {"frame": "commit", "epoch": self.epoch, "tips": dict(self.tips)}
        )
        self.ship_rounds += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("replica.ship_rounds").inc()
        return frames

    def handle_ack(self, ack: dict) -> None:
        """Fold the follower's round ack (its applied positions)."""
        self.follower_acked = dict(ack.get("applied") or {})
        self.round_acks += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("replica.round_acks").inc()

    def mark_degraded(self) -> None:
        """The follower timed out or died mid-round; the pair is async
        until a follower reattaches."""
        self.degraded += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("replica.degraded").inc()
        self.detach()
