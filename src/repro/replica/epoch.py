"""The fencing epoch: one monotonic integer per data directory.

The epoch is the replication pair's generation number.  A fresh primary
starts at 1; every promotion bumps it by one and persists it *before*
the promoted follower accepts its first write.  The current epoch is
stamped into every WAL meta record the server creates, every client
ack, and every shipped frame — so a stale primary (still running, or
restarted after the ``kill -9`` that triggered the failover) can always
be told apart from the live one, and its shipments refused with its
epoch named in the error.

Persisted as a one-line JSON file (``EPOCH``) in the server's data
directory, written atomically (temp + fsync + rename) like every other
durable artifact in :mod:`repro.recovery`.
"""

from __future__ import annotations

import json
import os

#: Filename of the epoch marker inside a server data directory.
EPOCH_FILE = "EPOCH"


def epoch_path(data_dir: str) -> str:
    return os.path.join(data_dir, EPOCH_FILE)


def read_epoch(data_dir: str) -> int:
    """The persisted epoch of *data_dir* (0 when none was ever written)."""
    path = epoch_path(data_dir)
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    epoch = payload.get("epoch")
    if not isinstance(epoch, int) or epoch < 0:
        raise ValueError(f"{path!r} carries invalid epoch {epoch!r}")
    return epoch


def write_epoch(data_dir: str, epoch: int) -> None:
    """Persist *epoch* atomically; the epoch only ever grows."""
    if epoch < read_epoch(data_dir):
        raise ValueError(
            f"epoch must be monotonic: refusing to write {epoch} over "
            f"{read_epoch(data_dir)} in {data_dir!r}"
        )
    path = epoch_path(data_dir)
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump({"epoch": epoch}, handle)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def bump_epoch(data_dir: str) -> int:
    """Advance the persisted epoch by one; returns the new value."""
    epoch = read_epoch(data_dir) + 1
    write_epoch(data_dir, epoch)
    return epoch
