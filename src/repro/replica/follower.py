"""The warm standby: materialize shipped WAL records, stay at-boundary.

:class:`FollowerState` is the sans-io core of a ``repro serve --follow``
process.  It consumes the three frame kinds the primary's
:class:`~repro.replica.shipper.LogShipper` emits (``snapshot``,
``records``, ``commit``) and keeps, per tenant:

* a **byte-identical local log** — every shipped record is re-serialized
  through the same canonical JSON the primary's
  :class:`~repro.recovery.wal.WalWriter` used (same seqs, same CRCs), so
  the follower's data directory is a valid recovery target in its own
  right at every commit frame;
* a **live system** tailed through
  :class:`~repro.recovery.recover.RecordApplier` — the normal recover()
  replay-through-match path — so WM, Rete memories and conflict sets are
  bit-identical to what recovery of the primary's log would produce at
  the last shipped boundary.

Records past the last shipped boundary are *staged*, never applied and
never written: they are exactly the crash debris recovery would discard,
so promotion needs no truncation pass.  Promotion turns each tenant into
a :class:`~repro.recovery.recover.RecoveredState` (via
:meth:`FollowerTenant.to_recovered_state`) that
:meth:`~repro.recovery.session.DurableRun.resume` continues in place.

Fencing: every frame carries the primary's epoch.  A frame below the
follower's own epoch raises :class:`FencedError` — a stale primary's
shipments are refused, with the stale epoch named.
"""

from __future__ import annotations

import json
import os
import time
import zlib

from repro.errors import ReproError
from repro.recovery.recover import (
    RecordApplier,
    RecoveredState,
    _build_system,
)
from repro.recovery.wal import (
    META_SIDECAR_SUFFIX,
    WalWriter,
    _crc,
    bump_sidecar_base,
    list_segments,
    write_meta_sidecar,
)


class ReplicationError(ReproError):
    """A shipped frame was malformed, discontinuous, or failed its CRC."""


class FencedError(ReplicationError):
    """A frame arrived from a lower (stale) epoch and was refused."""

    def __init__(self, stale_epoch: int, local_epoch: int) -> None:
        super().__init__(
            f"shipment from stale epoch {stale_epoch} refused: this "
            f"replica is at epoch {local_epoch} (the shipper was fenced "
            "by a promotion)"
        )
        self.stale_epoch = stale_epoch
        self.local_epoch = local_epoch


def _write_checkpoint_body(path: str, body: dict) -> None:
    """Persist a checkpoint *body* verbatim, in the exact record format
    :func:`repro.recovery.checkpoint.write_checkpoint` uses (so the
    follower's checkpoint file is byte-compatible with the primary's)."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    record = {"body": body, "crc": zlib.crc32(payload.encode("utf-8"))}
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(record, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


class FollowerTenant:
    """One tenant's standby: local log, live system, incremental applier."""

    def __init__(self, name: str, data_dir: str, obs=None) -> None:
        self.name = name
        self.data_dir = data_dir
        self.wal_path = os.path.join(data_dir, f"{name}.wal")
        self.checkpoint_path = os.path.join(data_dir, f"{name}.ckpt")
        self.obs = obs
        self.meta: dict | None = None
        self.system = None
        self.applier: RecordApplier | None = None
        self.writer: WalWriter | None = None
        #: Last record seq received (staged or applied).
        self.received_seq = 0
        #: Seq before the first record of the local active file.
        self.base_seq = 0
        self.checkpoint_used = False
        #: Shipped-but-unapplied records (past the last boundary) and
        #: their byte size — the follower's at-boundary staging area.
        self._staged: list[tuple[int, str, dict]] = []
        self.staged_bytes = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def bootstrap(
        cls,
        name: str,
        data_dir: str,
        meta: dict,
        checkpoint: dict | None = None,
        base_seq: int = 0,
        obs=None,
    ) -> "FollowerTenant":
        """Fresh standby for one tenant, from the primary's snapshot.

        *checkpoint* (when the primary compacted its log prefix away) is
        restored through the applier's normal checkpoint path and also
        written verbatim to the local checkpoint file; *base_seq* is the
        seq before the first record the primary will ship.
        """
        tenant = cls(name, data_dir, obs=obs)
        tenant.meta = meta
        tenant.system = _build_system(meta, obs)
        tenant.applier = RecordApplier(tenant.system, meta)
        tenant.base_seq = base_seq
        tenant.received_seq = base_seq
        if checkpoint is not None:
            tenant.applier.seed_checkpoint(checkpoint, tenant.checkpoint_path)
            tenant.checkpoint_used = True
            _write_checkpoint_body(tenant.checkpoint_path, checkpoint)
        tenant.writer = WalWriter.create(
            tenant.wal_path,
            obs=obs,
            fsync_every=1_000_000_000,  # sync only at commit frames
            wal_meta=meta,
            _next_seq=base_seq + 1,
            _segment_first_seq=base_seq + 1,
        )
        write_meta_sidecar(tenant.wal_path, meta)
        if base_seq:
            bump_sidecar_base(tenant.wal_path, base_seq)
        return tenant

    @classmethod
    def from_state(
        cls, name: str, data_dir: str, state: RecoveredState, obs=None
    ) -> "FollowerTenant":
        """Resume a standby from its own local files (follower restart)."""
        tenant = cls(name, data_dir, obs=obs)
        tenant.meta = state.meta
        tenant.system = state.system
        tenant.applier = RecordApplier.from_state(state)
        tenant.checkpoint_used = state.checkpoint_used
        tenant.base_seq = state.active_base_seq - 1
        tenant.received_seq = state.next_seq - 1
        tenant.writer = WalWriter.continue_log(
            state.wal_path,
            state.durable_offset,
            state.next_seq,
            obs=obs,
            fsync_every=1_000_000_000,
            wal_meta=state.meta,
            _segment_first_seq=(
                state.active_base_seq
                if state.durable_offset
                else state.next_seq
            ),
        )
        return tenant

    # -- the shipped-record tail ----------------------------------------------

    def receive(self, seq: int, kind: str, body: dict, crc: int) -> bool:
        """Stage one shipped record; apply through the match network when
        its covering boundary arrives.  Returns True on a boundary."""
        if _crc(seq, kind, body) != crc:
            raise ReplicationError(
                f"shipped record seq {seq} for tenant {self.name!r} "
                "fails its CRC"
            )
        if seq <= self.received_seq:
            return False  # duplicate from a reconnect overlap
        if seq != self.received_seq + 1:
            raise ReplicationError(
                f"shipped records for tenant {self.name!r} jumped from "
                f"seq {self.received_seq} to {seq} — a frame was lost"
            )
        line = (
            json.dumps(
                {"seq": seq, "kind": kind, "body": body, "crc": crc},
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
        self._staged.append((seq, kind, body))
        self.staged_bytes += len(line.encode("utf-8"))
        self.received_seq = seq
        if kind != "boundary":
            return False
        # The boundary makes everything staged durable-and-applied, in
        # the same order recovery would replay it.
        for staged_seq, staged_kind, staged_body in self._staged:
            self.writer.append(staged_kind, staged_body)
            self.applier.apply(staged_seq, staged_kind, staged_body)
        self._staged = []
        self.staged_bytes = 0
        return True

    def sync(self) -> None:
        """Make every applied record locally durable (the commit frame)."""
        if self.writer is not None:
            self.writer.sync()

    @property
    def applied_seq(self) -> int:
        """Last boundary seq applied — the follower's durable position."""
        return self.applier.last_boundary_seq if self.applier else 0

    def stats(self) -> dict:
        extra = self.applier.extra if self.applier else {}
        return {
            "tenant": self.name,
            "applied_seq": extra.get("applied_seq", 0),
            "position": self.applier.position if self.applier else 0,
            "boundary_seq": self.applied_seq,
            "received_seq": self.received_seq,
            "staged_records": len(self._staged),
            "wm_size": self.system.wm.size() if self.system else 0,
        }

    # -- promotion -------------------------------------------------------------

    def to_recovered_state(self) -> RecoveredState:
        """Finalize the tail into a resumable
        :class:`~repro.recovery.recover.RecoveredState`.

        The staged (un-boundaried) suffix is dropped — it is exactly the
        debris recovery discards — and the local writer is closed so
        :meth:`~repro.recovery.session.DurableRun.resume` can continue
        the log in place.
        """
        self.writer.sync()
        durable_offset = self.writer.synced_bytes
        self.writer.close()
        fired = self.applier.finalize()
        return RecoveredState(
            system=self.system,
            meta=self.meta,
            wal_path=self.wal_path,
            durable_offset=durable_offset,
            next_seq=self.applier.last_boundary_seq + 1,
            phase=self.applier.phase,
            cycle=self.applier.cycle,
            position=self.applier.position,
            halted=self.applier.halted,
            fired=fired,
            extra=dict(self.applier.extra),
            checkpoint_used=self.checkpoint_used,
            replayed_batches=self.applier.replayed_batches,
            replayed_deltas=self.applier.replayed_deltas,
            active_base_seq=self.base_seq + 1,
        )

    def discard(self) -> None:
        """Close and delete the local materialization (re-bootstrap)."""
        if self.writer is not None:
            self.writer.abandon()
        for path in (
            self.wal_path,
            self.wal_path + META_SIDECAR_SUFFIX,
            self.checkpoint_path,
        ):
            if os.path.exists(path):
                os.remove(path)
        for _first, _last, file in list_segments(self.wal_path):
            os.remove(file)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()


class FollowerState:
    """Every tenant's standby plus the frame dispatch and lag heartbeat."""

    def __init__(self, data_dir: str, obs=None, epoch: int = 0) -> None:
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.obs = obs
        self.epoch = epoch
        self.tenants: dict[str, FollowerTenant] = {}
        #: Primary's durable tip per tenant, from the last commit frame.
        self.tips: dict[str, int] = {}
        self.commit_frames = 0
        self.applied_records = 0
        self.applied_boundaries = 0
        self.last_commit_at: float | None = None

    def names(self) -> list[str]:
        return sorted(self.tenants)

    def have(self) -> dict[str, int]:
        """The catch-up handshake: last locally durable seq per tenant."""
        return {
            name: tenant.applied_seq
            for name, tenant in sorted(self.tenants.items())
        }

    # -- frame dispatch --------------------------------------------------------

    def handle_frame(self, frame: dict) -> dict | None:
        """Apply one shipped frame; returns the ack for commit frames."""
        epoch = frame.get("epoch")
        if isinstance(epoch, int) and self.epoch and epoch < self.epoch:
            raise FencedError(epoch, self.epoch)
        kind = frame.get("frame")
        if kind == "snapshot":
            self._handle_snapshot(frame)
            return None
        if kind == "records":
            self._ingest(frame["tenant"], frame["records"])
            return None
        if kind == "commit":
            return self._handle_commit(frame)
        raise ReplicationError(f"unknown shipped frame kind {kind!r}")

    def ingest_lines(self, tenant: str, lines: list[str]) -> None:
        """Feed raw WAL record lines directly (the in-process tap path
        the crash fuzzer and benches use — no sockets involved)."""
        self._ingest(tenant, [json.loads(line) for line in lines])

    def _ingest(self, name: str, records: list[dict]) -> None:
        if not records:
            return
        started = time.perf_counter()
        tenant = self.tenants.get(name)
        if tenant is None:
            first = records[0]
            if first.get("seq") != 1 or first.get("kind") != "meta":
                raise ReplicationError(
                    f"records for unknown tenant {name!r} start at seq "
                    f"{first.get('seq')}; a snapshot frame is required"
                )
            tenant = FollowerTenant.bootstrap(
                name, self.data_dir, first["body"], obs=self.obs
            )
            self.tenants[name] = tenant
        boundaries = 0
        for record in records:
            if tenant.receive(
                record["seq"], record["kind"], record["body"], record["crc"]
            ):
                boundaries += 1
        self.applied_records += len(records)
        self.applied_boundaries += boundaries
        if self.obs is not None and self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("replica.applied_records").inc(len(records))
            if boundaries:
                metrics.counter("replica.applied_boundaries").inc(boundaries)
            metrics.log2_histogram("replica.apply_us").observe(
                (time.perf_counter() - started) * 1e6
            )

    def _handle_snapshot(self, frame: dict) -> None:
        name = frame["tenant"]
        existing = self.tenants.get(name)
        base_seq = frame.get("base_seq", 0)
        if existing is not None:
            if base_seq <= existing.received_seq:
                # Continuity: the snapshot only re-ships what we have.
                self._ingest(name, frame.get("records") or [])
                return
            # Gap (the primary compacted past us): rebuild from scratch.
            existing.discard()
            del self.tenants[name]
        tenant = FollowerTenant.bootstrap(
            name,
            self.data_dir,
            frame["meta"],
            checkpoint=frame.get("checkpoint"),
            base_seq=base_seq,
            obs=self.obs,
        )
        self.tenants[name] = tenant
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("replica.snapshots").inc()
        self._ingest(name, frame.get("records") or [])

    def _handle_commit(self, frame: dict) -> dict:
        tips = frame.get("tips") or {}
        applied: dict[str, int] = {}
        lag_records = 0
        lag_bytes = 0
        for name in self.names():
            tenant = self.tenants[name]
            tenant.sync()
            applied[name] = tenant.applied_seq
            self.tips[name] = tips.get(name, self.tips.get(name, 0))
            lag_records += max(0, self.tips[name] - tenant.received_seq)
            lag_bytes += tenant.staged_bytes
        self.commit_frames += 1
        self.last_commit_at = time.monotonic()
        if self.obs is not None and self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("replica.commit_frames").inc()
            metrics.gauge("replica.lag_records").set(lag_records)
            metrics.gauge("replica.lag_bytes").set(lag_bytes)
            for name, seq in applied.items():
                metrics.gauge(f"replica.applied_seq[{name}]").set(seq)
        return {
            "frame": "ack",
            "epoch": self.epoch,
            "applied": applied,
            "lag_records": lag_records,
        }

    # -- lag heartbeat ---------------------------------------------------------

    def lag(self) -> dict:
        """The replication-lag heartbeat ``status`` exposes."""
        per_tenant = {}
        total = 0
        for name in self.names():
            tenant = self.tenants[name]
            behind = max(
                0, self.tips.get(name, 0) - tenant.received_seq
            )
            total += behind
            per_tenant[name] = {
                "applied_seq": tenant.applied_seq,
                "received_seq": tenant.received_seq,
                "tip_seq": self.tips.get(name, 0),
                "lag_records": behind,
            }
        age = (
            round(time.monotonic() - self.last_commit_at, 3)
            if self.last_commit_at is not None
            else None
        )
        return {
            "epoch": self.epoch,
            "lag_records": total,
            "last_commit_age_s": age,
            "tenants": per_tenant,
        }

    # -- promotion -------------------------------------------------------------

    def pop_states(self) -> dict[str, RecoveredState]:
        """Finalize every tenant for promotion; empties the follower.

        Tenants that never reached a durable boundary (nothing to
        promote — the pair died before the tenant's setup commit) are
        discarded, mirroring recovery's nothing-durable rule.
        """
        states: dict[str, RecoveredState] = {}
        for name in self.names():
            tenant = self.tenants[name]
            if tenant.applied_seq == 0:
                tenant.discard()
                continue
            states[name] = tenant.to_recovered_state()
        self.tenants = {}
        return states

    def close(self) -> None:
        for tenant in self.tenants.values():
            tenant.close()
        self.tenants = {}
