"""repro.replica — warm-standby replication for the rule service.

Turns one ``repro serve`` process into a primary/warm-standby pair:

* :class:`~repro.replica.shipper.LogShipper` (primary side) collects
  every tenant's freshly-fsynced WAL records off the
  :attr:`~repro.recovery.wal.WalWriter.tap` hook and ships them as
  NDJSON frames after each group-commit barrier releases — nothing is
  acked to a client before the attached follower confirmed the round
  (semi-synchronous), and a slow or dead follower degrades the pair to
  async rather than stalling the primary forever.
* :class:`~repro.replica.follower.FollowerState` (standby side)
  materializes byte-identical local WAL/checkpoint files and tails the
  shipped records through :class:`~repro.recovery.recover.RecordApplier`
  — the normal recover() replay-through-match path — so WM, Rete
  memories and conflict sets stay bit-identical to the primary at every
  shipped boundary.
* :mod:`~repro.replica.epoch` persists the monotonic fencing epoch.
  Promotion bumps it; a stale primary refuses to ship to (and is
  refused by) anything carrying a higher epoch.

See docs/REPLICATION.md for the protocol and the promotion runbook.
"""

from repro.replica.epoch import bump_epoch, read_epoch, write_epoch
from repro.replica.follower import (
    FencedError,
    FollowerState,
    FollowerTenant,
    ReplicationError,
)
from repro.replica.shipper import LogShipper

__all__ = [
    "FencedError",
    "FollowerState",
    "FollowerTenant",
    "LogShipper",
    "ReplicationError",
    "bump_epoch",
    "read_epoch",
    "write_epoch",
]
