"""The cross-strategy differential oracle.

Every registered match strategy computes the *same* match function; the
engine's batched act path and both storage backends change only *how* it
is computed.  The oracle replays one :class:`~repro.check.trace.Trace`
through a configuration matrix — strategy × backend × act batch size —
and asserts that every observable agrees:

* conflict-set keys at every synchronization point (after every op for
  tuple-at-a-time configs, after every control op and at end-of-ops for
  all configs, and after every recognize-act cycle — act flushes its
  delta batch at cycle end, so cycle boundaries are sync points in every
  configuration);
* the fired-rule sequence, as (cycle, rule, instantiation-key) triples;
* final working-memory contents, as (tid, timetag, values) rows;
* for the Rete family, the contents of every alpha/beta memory, negative
  node and persisted mirror relation after every cycle — compared across
  configs sharing a strategy, since different strategies legitimately
  build different networks.

A disagreement (or an exception inside any replay) is reported as a
:class:`Divergence` naming the two configurations and the first sync
point where they differ.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

from repro.engine import BatchSizeTuner, ProductionSystem
from repro.match import STRATEGIES
from repro.check.trace import Trace, TraceOp
from repro.txn.scheduler import ConcurrentScheduler

#: Strategies whose ``network`` attribute exposes Rete memories.
RETE_FAMILY = ("rete", "rete-shared", "rete-dbms")

#: Strategies with a native compiled path (``repro.match.compile``):
#: the Rete family attaches join kernels, patterns compiles its
#: COND-relation constant checkers.  Only these get ``compile="on"``
#: cells — other strategies ignore the mode.
COMPILED_FAMILY = (*RETE_FAMILY, "patterns")

DEFAULT_BACKENDS = ("memory", "sqlite")
DEFAULT_BATCH_SIZES = (1, 8, "auto")
DEFAULT_COMPILE_MODES = ("off", "on")
DEFAULT_WORKER_COUNTS = (1,)
DEFAULT_EXEC_MODES = ("cycle",)

#: Execution modes for the run-cycles phase: the serial recognize-act
#: reference, §5.1 set-firing, and the §5.2 concurrent 2PL scheduler.
EXEC_MODES = ("cycle", "set", "txn")


@dataclass(frozen=True)
class CheckConfig:
    """One cell of the oracle's configuration matrix.

    ``lineage`` replays the trace with provenance recording attached
    (:class:`repro.obs.xray.LineageRecorder`); because the recorder is a
    pure conflict-set listener, a lineage-on cell must be bit-identical
    to its lineage-off twin — the fuzz matrix pins that claim.

    ``compile`` selects the match compilation mode
    (:mod:`repro.match.compile`): interpreted ``"off"`` cells are the
    reference and compiled ``"on"`` cells must agree bit-for-bit on every
    observable, including rete memory snapshots.

    ``workers`` sizes the match-phase worker pool (``repro.parallel``):
    a workers>1 cell must stay bit-identical to its workers=1 twin — the
    determinism contract of ``docs/PARALLELISM.md``, pinned by fuzzing.

    ``exec`` selects the run-cycles phase: ``"cycle"`` (the serial
    recognize-act loop), ``"set"`` (§5.1 set-firing) or ``"txn"`` (the
    §5.2 concurrent 2PL scheduler with WAL-style group commit rounds).
    Different exec modes legitimately fire differently, so the oracle
    compares each mode's cells against that mode's own serial reference.
    """

    strategy: str
    backend: str = "memory"
    batch_size: int | str = 1
    lineage: bool = False
    compile: str = "off"
    workers: int = 1
    exec: str = "cycle"

    @property
    def label(self) -> str:
        suffix = "/lineage" if self.lineage else ""
        if self.compile != "off":
            suffix += "/compiled"
        if self.workers != 1:
            suffix += f"/w{self.workers}"
        if self.exec != "cycle":
            suffix += f"/{self.exec}"
        return f"{self.strategy}/{self.backend}/batch={self.batch_size}{suffix}"


def resolve_strategies(strategies) -> dict:
    """Normalize a strategies argument to a name → class mapping.

    Accepts ``None`` (the full :data:`repro.match.STRATEGIES` registry), a
    list of registered names, or an explicit mapping of name → class (the
    mapping form lets tests inject broken shims under synthetic names).
    """
    if strategies is None:
        return dict(STRATEGIES)
    if isinstance(strategies, dict):
        return dict(strategies)
    return {name: STRATEGIES[name] for name in strategies}


def default_matrix(
    strategies=None,
    backends=DEFAULT_BACKENDS,
    batch_sizes=DEFAULT_BATCH_SIZES,
    compile_modes=DEFAULT_COMPILE_MODES,
    worker_counts=DEFAULT_WORKER_COUNTS,
    exec_modes=DEFAULT_EXEC_MODES,
) -> list[CheckConfig]:
    """The full strategy × backend × batch-size × compile-mode matrix.

    *strategies* may be a list of names or a mapping of name → strategy
    class (the mapping form lets tests inject broken shims).  Compiled
    cells are only generated for :data:`COMPILED_FAMILY` strategies, with
    the interpreted ``"off"`` cell always first so it anchors as the
    reference.  Likewise workers>1 cells are only generated for the
    :data:`RETE_FAMILY` (the only strategies whose match phase fans out),
    with the smallest worker count first so it anchors; exec modes keep
    ``"cycle"`` first for the same reason.
    """
    names = sorted(resolve_strategies(strategies))
    ordered_modes = sorted(set(compile_modes), key=("off", "auto", "on").index)
    ordered_workers = sorted(set(worker_counts))
    ordered_execs = sorted(set(exec_modes), key=EXEC_MODES.index)
    return [
        CheckConfig(
            strategy=name,
            backend=backend,
            batch_size=batch_size,
            compile=mode,
            workers=workers,
            exec=exec_mode,
        )
        for name in names
        for backend in backends
        for batch_size in batch_sizes
        for mode in (
            ordered_modes if name in COMPILED_FAMILY else ordered_modes[:1]
        )
        for workers in (
            ordered_workers if name in RETE_FAMILY else ordered_workers[:1]
        )
        for exec_mode in ordered_execs
    ]


@dataclass
class Divergence:
    """A reproducible disagreement between two oracle configurations."""

    kind: str  # "conflict" | "fired" | "wm" | "rete-memory" | "error"
    config: str
    reference: str
    detail: str
    sync_point: tuple | None = None

    def describe(self) -> str:
        where = f" at {self.sync_point}" if self.sync_point else ""
        return (
            f"[{self.kind}] {self.config} vs {self.reference}{where}: "
            f"{self.detail}"
        )


@dataclass
class ReplayResult:
    """Observables of one configuration's replay of one trace."""

    config: CheckConfig
    checkpoints: dict[tuple, frozenset] = field(default_factory=dict)
    fired: list[tuple[int, str, tuple]] = field(default_factory=list)
    final_wm: dict[str, tuple] = field(default_factory=dict)
    rete_memories: dict[tuple, dict] = field(default_factory=dict)


def rete_memory_snapshot(strategy) -> dict:
    """Canonical contents of every Rete memory, comparable across runs.

    Alpha memories as WME-key sets, beta memories as multisets of token
    tid chains, negative nodes as (chain, witness-set) multisets, and the
    persisted LEFT/RIGHT mirror relations as multisets of row *values*
    (mirror row tids depend on write order, the values do not).
    """
    network = strategy.network

    def chain_key(token):
        return tuple(
            (w.relation, w.tid) if w is not None else None
            for w in token.chain()
        )

    alpha = {
        amem.name: frozenset(amem.wme_keys())
        for amem in network.alpha_memories
    }
    beta = {
        bmem.name: sorted(
            (chain_key(token) for token in bmem.tokens()), key=repr
        )
        for bmem in network.beta_memories
    }
    negative = {
        node.name: sorted(
            (
                (chain_key(token), tuple(sorted(matches)))
                for token, matches in node.results.items()
            ),
            key=repr,
        )
        for node in network.negative_nodes
    }
    mirrors = {
        mirror.table.schema.name: sorted(
            (row.values for row in mirror.table.scan()), key=repr
        )
        for mirror in network.mirrors
    }
    return {
        "alpha": alpha, "beta": beta, "negative": negative, "mirrors": mirrors
    }


def _wm_contents(system: ProductionSystem) -> dict[str, tuple]:
    return {
        class_name: tuple(
            sorted(
                (wme.tid, wme.timetag, wme.values)
                for wme in system.wm.tuples(class_name)
            )
        )
        for class_name in system.wm.schemas
    }


class _Replayer:
    """Applies a trace to one configured system, recording observables."""

    def __init__(self, trace: Trace, config: CheckConfig, strategies) -> None:
        self.trace = trace
        self.config = config
        self.strategy_cls = resolve_strategies(strategies)[config.strategy]
        self.system = ProductionSystem(
            trace.program,
            strategy=self.strategy_cls,
            resolution=trace.resolution,
            backend=config.backend,
            seed=trace.seed,
            # §5.1 set-firing replaces the per-cycle select step; the
            # txn mode drives its own scheduler below, firing whole
            # conflict-set snapshots, so it keeps the instance resolver.
            firing="set" if config.exec == "set" else "instance",
            batch_size=config.batch_size,
            lineage=config.lineage,
            compile=config.compile,
            workers=config.workers,
        )
        self.result = ReplayResult(config=config)
        self.attached = True
        # Ops are applied in chunks matching the act-phase granularity:
        # size 1 replays tuple-at-a-time, fixed N replays as delta batches
        # of up to N, and "auto" follows a local BatchSizeTuner fed with
        # every flushed batch (the same policy the engine's act phase
        # uses).
        self._tuner = (
            BatchSizeTuner() if config.batch_size == "auto" else None
        )

    # -- op application ------------------------------------------------------

    def _chunk_budget(self) -> int:
        if self._tuner is not None:
            return self._tuner.size
        assert isinstance(self.config.batch_size, int)
        return self.config.batch_size

    def _apply_chunk(self, chunk: list[TraceOp], live: list) -> None:
        wm = self.system.wm
        if len(chunk) == 1 and self._chunk_budget() == 1:
            self._apply_op(chunk[0], live)
            return
        wm.begin_batch()
        try:
            for op in chunk:
                self._apply_op(op, live)
        finally:
            batch = wm.end_batch()
            if self._tuner is not None:
                self._tuner.observe(batch)

    def _apply_op(self, op: TraceOp, live: list) -> None:
        wm = self.system.wm
        if op.kind == "insert":
            live.append(wm.insert(op.class_name, op.values))
        elif op.kind == "delete":
            if live:
                wm.remove(live.pop(op.index % len(live)))
        elif op.kind == "modify":
            if live:
                slot = op.index % len(live)
                changes = dict(op.changes or ())
                schema = wm.schema(live[slot].relation)
                applicable = {
                    k: v for k, v in changes.items() if k in schema.attributes
                }
                if applicable:
                    live[slot] = wm.modify(live[slot], applicable)

    def _control(self, op: TraceOp) -> None:
        system = self.system
        if op.kind == "detach":
            if self.attached:
                system.strategy.detach()
                self.attached = False
        elif op.kind == "attach":
            if self.attached:
                system.strategy.detach()
            system.strategy = self.strategy_cls(
                system.wm,
                system.analyses,
                counters=system.counters,
                compile_mode=self.config.compile,
                pool=system.pool,
            )
            self.attached = True

    def _checkpoint(self, tag: tuple) -> None:
        self.result.checkpoints[tag] = frozenset(
            self.system.strategy.conflict_set_keys()
        )
        if self.config.strategy in RETE_FAMILY and self.attached:
            self.result.rete_memories[tag] = rete_memory_snapshot(
                self.system.strategy
            )

    # -- phases --------------------------------------------------------------

    def apply_ops(self) -> None:
        live: list = []
        per_op = self._chunk_budget() == 1 and self._tuner is None
        chunk: list[TraceOp] = []
        for position, op in enumerate(self.trace.ops):
            if op.kind in ("detach", "attach"):
                if chunk:
                    self._apply_chunk(chunk, live)
                    chunk = []
                self._control(op)
                self._checkpoint(("ctl", position))
                continue
            chunk.append(op)
            if per_op:
                self._apply_chunk(chunk, live)
                chunk = []
                self._checkpoint(("op", position))
            elif len(chunk) >= self._chunk_budget():
                self._apply_chunk(chunk, live)
                chunk = []
        if chunk:
            self._apply_chunk(chunk, live)
        self._checkpoint(("end_ops",))

    def run_cycles(self) -> None:
        system = self.system
        if self.config.exec == "txn":
            self._run_txn_rounds()
        else:
            for cycle in range(1, self.trace.max_cycles + 1):
                records = system.step_records(cycle)
                if not records:
                    break
                for record in records:
                    self.result.fired.append(
                        (cycle, record.instantiation.rule_name,
                         record.instantiation.key)
                    )
                self._checkpoint(("cycle", cycle))
                if any(record.outcome.halted for record in records):
                    break
        self.result.final_wm = _wm_contents(system)

    def _run_txn_rounds(self) -> None:
        """§5.2 concurrent execution: drain conflict-set snapshots Ψi.

        Fired records are ``(round, rule, key)`` triples in the round's
        commit order, so a workers>1 cell must replay the identical
        commit sequence as its serial twin — the scheduler only fans out
        the pure lock-planning phase.
        """
        scheduler = ConcurrentScheduler(self.system)
        for round_no in range(1, self.trace.max_cycles + 1):
            stats = scheduler.run_round()
            if stats.transactions == 0:
                break
            for key in stats.committed_seq:
                self.result.fired.append((round_no, key[0], key))
            self._checkpoint(("round", round_no))

    def replay(self) -> ReplayResult:
        self.apply_ops()
        self.run_cycles()
        return self.result


def replay_config(
    trace: Trace, config: CheckConfig, strategies=None
) -> ReplayResult:
    """Replay *trace* under one configuration, returning its observables."""
    return _Replayer(trace, config, strategies).replay()


def _compare(
    reference: ReplayResult, candidate: ReplayResult
) -> Divergence | None:
    """First disagreement between two replays, or ``None``."""
    ref_label = reference.config.label
    cand_label = candidate.config.label
    shared = sorted(
        set(reference.checkpoints) & set(candidate.checkpoints), key=repr
    )
    for tag in shared:
        if reference.checkpoints[tag] != candidate.checkpoints[tag]:
            missing = reference.checkpoints[tag] - candidate.checkpoints[tag]
            extra = candidate.checkpoints[tag] - reference.checkpoints[tag]
            return Divergence(
                kind="conflict",
                config=cand_label,
                reference=ref_label,
                sync_point=tag,
                detail=(
                    f"conflict sets differ: missing={sorted(missing, key=repr)} "
                    f"extra={sorted(extra, key=repr)}"
                ),
            )
    if reference.fired != candidate.fired:
        length = min(len(reference.fired), len(candidate.fired))
        position = next(
            (
                i
                for i in range(length)
                if reference.fired[i] != candidate.fired[i]
            ),
            length,
        )
        ref_at = reference.fired[position] if position < len(reference.fired) else None
        cand_at = candidate.fired[position] if position < len(candidate.fired) else None
        return Divergence(
            kind="fired",
            config=cand_label,
            reference=ref_label,
            sync_point=("fire", position),
            detail=f"fired sequences differ: {ref_at} vs {cand_at}",
        )
    if reference.final_wm != candidate.final_wm:
        differing = sorted(
            rel
            for rel in set(reference.final_wm) | set(candidate.final_wm)
            if reference.final_wm.get(rel) != candidate.final_wm.get(rel)
        )
        return Divergence(
            kind="wm",
            config=cand_label,
            reference=ref_label,
            detail=f"final WM differs in relations {differing}",
        )
    return None


def _compare_rete(
    reference: ReplayResult, candidate: ReplayResult
) -> Divergence | None:
    shared = sorted(
        set(reference.rete_memories) & set(candidate.rete_memories), key=repr
    )
    for tag in shared:
        if reference.rete_memories[tag] != candidate.rete_memories[tag]:
            ref_snap = reference.rete_memories[tag]
            cand_snap = candidate.rete_memories[tag]
            parts = [
                part
                for part in ("alpha", "beta", "negative", "mirrors")
                if ref_snap[part] != cand_snap[part]
            ]
            return Divergence(
                kind="rete-memory",
                config=candidate.config.label,
                reference=reference.config.label,
                sync_point=tag,
                detail=f"memory-node contents differ in {parts}",
            )
    return None


def run_trace(
    trace: Trace,
    configs: list[CheckConfig] | None = None,
    strategies=None,
    obs=None,
) -> Divergence | None:
    """Replay *trace* across the matrix; return the first divergence.

    Within each exec mode, the first configuration of the matrix is that
    mode's reference — different exec modes legitimately fire different
    sequences (§5.1 fires whole sets, §5.2 commits in 2PL order), so
    comparing ``cycle`` against ``txn`` would report a false divergence.
    An exception inside any replay is itself a finding (kind
    ``"error"``), since every trace is valid by construction.
    """
    if configs is None:
        configs = default_matrix(strategies)
    if not configs:
        raise ValueError("oracle needs at least one configuration")
    results: list[ReplayResult] = []
    for config in configs:
        try:
            if obs is not None and obs.enabled:
                with obs.span("check.replay", config=config.label):
                    results.append(replay_config(trace, config, strategies))
            else:
                results.append(replay_config(trace, config, strategies))
        except Exception:
            return Divergence(
                kind="error",
                config=config.label,
                reference=configs[0].label,
                detail=traceback.format_exc(limit=8),
            )
    by_exec: dict[str, ReplayResult] = {}
    for candidate in results:
        reference = by_exec.setdefault(candidate.config.exec, candidate)
        if reference is not candidate:
            divergence = _compare(reference, candidate)
            if divergence is not None:
                return divergence
    # Memory-node contents are only comparable within one strategy (and
    # one exec mode, whose firing order shapes the memories).
    by_strategy: dict[tuple, ReplayResult] = {}
    for result in results:
        if result.config.strategy not in RETE_FAMILY:
            continue
        anchor = by_strategy.setdefault(
            (result.config.strategy, result.config.exec), result
        )
        if anchor is not result:
            divergence = _compare_rete(anchor, result)
            if divergence is not None:
                return divergence
    return None
