"""repro.check — differential fuzzing of the match/engine stack.

The paper's central claim is that many match algorithms — Rete variants,
the simplified/TREAT-like schemes, the matching-patterns store, marker
passing and predicate indexing — compute the *same* conflict set over the
same working memory.  This package turns that claim into an executable
oracle:

* :mod:`repro.check.trace` — a :class:`Trace` is a seeded program plus a
  WM op script (insert/delete/modify/detach/attach), JSON-serializable.
* :mod:`repro.check.generator` — seeded trace generation over rotating
  profiles (negation, disjunction, modify-heavy, churn, pool-sharing,
  mid-run reattach).
* :mod:`repro.check.oracle` — replays one trace through every
  (strategy × backend × batch-size) configuration and compares conflict
  sets, fired-rule sequences, final WM contents and (within the Rete
  family) memory-node snapshots at shared sync points.
* :mod:`repro.check.shrinker` — ddmin over ops plus greedy rule pruning,
  minimizing a failing trace to the smallest repro.
* :mod:`repro.check.corpus` — promotes shrunk repros into
  ``tests/corpus/`` where tier-1 pytest replays them forever.
* :mod:`repro.check.runner` — the ``repro check --budget N`` campaign
  driver with ``check.*`` spans and metrics.
* :mod:`repro.check.crash` — the ``repro check --crash`` fault-injection
  campaign: kill a durable run at an armed crash site, recover from the
  WAL (:mod:`repro.recovery`), finish, and compare every observable
  against the uninterrupted reference.
"""

from repro.check.corpus import load_corpus, load_trace, replay, save_repro
from repro.check.crash import (
    CrashFinding,
    CrashReport,
    run_crash_check,
    run_crash_trace,
)
from repro.check.generator import PROFILES, TraceProfile, generate_trace
from repro.check.oracle import (
    DEFAULT_BACKENDS,
    DEFAULT_BATCH_SIZES,
    RETE_FAMILY,
    CheckConfig,
    Divergence,
    ReplayResult,
    default_matrix,
    replay_config,
    rete_memory_snapshot,
    run_trace,
)
from repro.check.runner import CheckFailure, CheckReport, run_check
from repro.check.shrinker import shrink
from repro.check.trace import Trace, TraceOp

__all__ = [
    "CheckConfig",
    "CheckFailure",
    "CheckReport",
    "CrashFinding",
    "CrashReport",
    "DEFAULT_BACKENDS",
    "DEFAULT_BATCH_SIZES",
    "Divergence",
    "PROFILES",
    "RETE_FAMILY",
    "ReplayResult",
    "Trace",
    "TraceOp",
    "TraceProfile",
    "default_matrix",
    "generate_trace",
    "load_corpus",
    "load_trace",
    "replay",
    "replay_config",
    "rete_memory_snapshot",
    "run_check",
    "run_crash_check",
    "run_crash_trace",
    "run_trace",
    "save_repro",
    "shrink",
]
