"""Seeded trace generation for the differential harness.

Builds on :mod:`repro.workload`: each trace pairs a generated program with
a random WM op script.  Trace *profiles* rotate with the trace index so a
budget of N traces sweeps plain joins, negation-heavy rule bases,
disjunctive tests, modify-heavy action mixes, interleaved insert/delete
churn, shared-condition pools, and mid-run strategy attach/detach.

Generation is a pure function of ``(seed, index)``: the program comes from
:func:`repro.workload.generate_program` (whose RNG-stream invariant keeps
profiles orthogonal) and the op script from a dedicated
``random.Random(f"{seed}/{index}/ops")`` stream, so any failing trace is
reproducible from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.check.trace import Trace, TraceOp
from repro.lang.format import format_program
from repro.lang.parser import parse_program
from repro.workload.generator import WorkloadSpec, generate_program


@dataclass(frozen=True)
class TraceProfile:
    """One family of traces: workload-spec knobs plus an op mix."""

    name: str
    spec_overrides: tuple[tuple[str, object], ...] = ()
    ops: int = 28
    delete_fraction: float = 0.2
    modify_fraction: float = 0.1
    reattach_fraction: float = 0.0

    def spec(self, seed: int) -> WorkloadSpec:
        base = WorkloadSpec(
            classes=3,
            attributes=3,
            rules=6,
            min_conditions=1,
            max_conditions=3,
            domain=4,
            seed=seed,
        )
        return replace(base, **dict(self.spec_overrides))


#: The rotation; ``generate_trace(seed, i)`` uses ``PROFILES[i % len]``.
PROFILES: tuple[TraceProfile, ...] = (
    TraceProfile(name="plain"),
    TraceProfile(
        name="negation",
        spec_overrides=(("negation_probability", 0.45), ("rules", 7)),
    ),
    TraceProfile(
        name="disjunction",
        spec_overrides=(
            ("disjunction_probability", 0.5),
            ("negation_probability", 0.2),
        ),
    ),
    TraceProfile(
        name="modify-heavy",
        spec_overrides=(("modify_action_probability", 0.8),),
        modify_fraction=0.3,
    ),
    TraceProfile(
        name="churn",
        ops=36,
        delete_fraction=0.4,
        spec_overrides=(("negation_probability", 0.25),),
    ),
    TraceProfile(
        name="pool-sharing",
        spec_overrides=(
            ("shared_condition_pool", 4),
            ("negation_probability", 0.25),
            ("rules", 8),
        ),
    ),
    TraceProfile(
        name="reattach",
        reattach_fraction=0.12,
        spec_overrides=(("negation_probability", 0.25),),
    ),
)


def generate_ops(
    profile: TraceProfile,
    rng: random.Random,
    targets: list[tuple[str, tuple[str, ...]]],
    domain: int,
) -> tuple[TraceOp, ...]:
    """The op script: inserts, index-addressed deletes/modifies, reattaches.

    *targets* lists the insertable classes as (name, attributes) pairs;
    values and modify payloads are drawn from ``0..domain-1``.
    """
    ops: list[TraceOp] = []
    for _ in range(profile.ops):
        roll = rng.random()
        if roll < profile.reattach_fraction:
            # Detach and attach as separate ops: the gap between them (and
            # a shrunk trace keeping only one of the pair) are both valid.
            ops.append(TraceOp.detach())
            ops.append(TraceOp.attach())
            continue
        roll = rng.random()
        class_name, attributes = targets[rng.randrange(len(targets))]
        if roll < profile.delete_fraction:
            ops.append(TraceOp.delete(rng.randrange(1 << 16)))
        elif roll < profile.delete_fraction + profile.modify_fraction:
            attribute = attributes[min(1, len(attributes) - 1)]
            ops.append(
                TraceOp.modify(
                    rng.randrange(1 << 16),
                    {attribute: rng.randrange(domain)},
                )
            )
        else:
            values = tuple(
                rng.randrange(domain) for _ in range(len(attributes))
            )
            ops.append(TraceOp.insert(class_name, values))
    return tuple(ops)


#: Default conflict-resolution rotation; ``--resolutions`` widens it.
DEFAULT_RESOLUTIONS = ("lex",)


def generate_trace(
    seed: int,
    index: int,
    program: str | None = None,
    resolutions: tuple[str, ...] = DEFAULT_RESOLUTIONS,
) -> Trace:
    """Trace number *index* of the fuzz run seeded with *seed*.

    With *program* given (the ``repro check FILE`` form), only the op
    script is generated; insert/modify targets come from the program's own
    ``literalize`` schemas rather than the profile's synthetic spec.
    *resolutions* rotates with the index (orthogonally to the profile
    rotation, which has co-prime length for the built-in lists), so a
    budget of N traces sweeps profile × resolver combinations.
    """
    profile = PROFILES[index % len(PROFILES)]
    resolution = resolutions[index % len(resolutions)]
    spec = profile.spec(seed * 10_007 + index)
    if program is None:
        program = format_program(generate_program(spec).program)
        targets = [
            (spec.class_name(i),
             tuple(spec.attribute_name(j) for j in range(spec.attributes)))
            for i in range(spec.classes)
        ]
    else:
        schemas = parse_program(program).schemas
        targets = [
            (schema.name, tuple(schema.attributes))
            for schema in schemas.values()
        ]
        if not targets:
            raise ValueError("program declares no WM classes to fuzz")
    rng = random.Random(f"{seed}/{index}/ops")
    ops = generate_ops(profile, rng, targets, spec.domain)
    return Trace(
        name=f"seed{seed}-{index}-{profile.name}",
        seed=seed,
        program=program,
        ops=ops,
        max_cycles=30,
        resolution=resolution,
    )
