"""Trace minimization by delta debugging.

Given a failing trace and a predicate that re-runs the oracle, the
shrinker produces the smallest trace it can that still fails:

1. **Op ddmin** — classic delta debugging over the op script.  Every op
   is total (deletes/modifies of an empty live list are no-ops), so any
   subsequence is a valid trace and can be tested directly.
2. **Rule pruning** — greedily drop whole productions from the program,
   keeping the drop whenever the trace still fails.
3. **Arity shrinking** — drop attribute slots no remaining rule or op
   references from the class declarations, narrowing every insert's
   value tuple with them.  Smaller schemas make corpus repros easier to
   read and rule out whole columns as the cause.
4. A final op-ddmin pass, since a smaller rule base usually lets more ops
   go.

The predicate is typically restricted to the two configurations named by
the original :class:`~repro.check.oracle.Divergence` — re-running the full
matrix for every candidate would make shrinking quadratically expensive
without changing the result.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.check.trace import Trace, TraceOp
from repro.lang.ast import MakeAction, ModifyAction, Program
from repro.lang.format import format_program
from repro.lang.parser import parse_program
from repro.storage.schema import RelationSchema

FailingPredicate = Callable[[Trace], bool]


def _ddmin_ops(trace: Trace, failing: FailingPredicate) -> Trace:
    """Zeller/Hildebrandt ddmin over the op sequence."""
    ops = list(trace.ops)
    granularity = 2
    while len(ops) >= 2:
        chunk = max(1, len(ops) // granularity)
        reduced = False
        for start in range(0, len(ops), chunk):
            candidate = ops[:start] + ops[start + chunk:]
            if not candidate:
                continue
            attempt = trace.with_ops(candidate)
            if failing(attempt):
                ops = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(granularity * 2, len(ops))
    # Try the empty script last: some bugs live purely in rule compilation.
    if ops and failing(trace.with_ops([])):
        ops = []
    return trace.with_ops(ops)


def _prune_rules(trace: Trace, failing: FailingPredicate) -> Trace:
    """Greedily drop productions while the trace still fails."""
    program = parse_program(trace.program)
    rules = list(program.rules)
    changed = True
    while changed and len(rules) > 1:
        changed = False
        for index in range(len(rules)):
            candidate_rules = rules[:index] + rules[index + 1:]
            candidate = trace.with_program(
                format_program(
                    type(program)(
                        schemas=program.schemas, rules=candidate_rules
                    )
                )
            )
            if failing(candidate):
                rules = candidate_rules
                changed = True
                break
    return trace.with_program(
        format_program(type(program)(schemas=program.schemas, rules=rules))
    )


def _referenced_attributes(
    program: Program, ops: tuple[TraceOp, ...]
) -> dict[str, set[str]]:
    """Attribute names each class cannot lose without changing meaning.

    Condition tests and ``(make ...)`` assignments name their class
    directly; ``(modify N ...)`` resolves through the rule's Nth
    condition element.  A ``modify`` *op* carries no class, so its
    attribute names block every class that declares them.
    """
    referenced: dict[str, set[str]] = {
        name: set() for name in program.schemas
    }
    for rule in program.rules:
        for condition in rule.condition_elements:
            bucket = referenced.setdefault(condition.class_name, set())
            bucket.update(test.attribute for test in condition.tests)
        for action in rule.actions:
            if isinstance(action, MakeAction):
                target = action.class_name
            elif isinstance(action, ModifyAction) and (
                1 <= action.ce_index <= len(rule.condition_elements)
            ):
                target = rule.condition_elements[
                    action.ce_index - 1
                ].class_name
            else:
                continue
            referenced.setdefault(target, set()).update(
                attribute for attribute, _ in action.assignments
            )
    for op in ops:
        if op.kind == "modify" and op.changes:
            names = {attribute for attribute, _ in op.changes}
            for bucket in referenced.values():
                bucket.update(names)
    return referenced


def _drop_attribute(
    trace: Trace, program: Program, class_name: str, attribute: str
) -> Trace | None:
    """The candidate trace with *attribute* removed from *class_name*.

    Narrows the class declaration, the program's initial elements and
    every insert op's value tuple positionally; ``None`` when an insert's
    values do not line up with the schema (never produced by the
    generator, but corpus files are hand-editable).
    """
    schema = program.schemas[class_name]
    position = schema.position(attribute)
    schemas = dict(program.schemas)
    schemas[class_name] = RelationSchema(
        class_name,
        tuple(a for a in schema.attributes if a != attribute),
    )
    initial_elements = [
        (
            name,
            {k: v for k, v in values.items() if k != attribute}
            if name == class_name
            else values,
        )
        for name, values in program.initial_elements
    ]
    ops: list[TraceOp] = []
    for op in trace.ops:
        if op.kind == "insert" and op.class_name == class_name:
            if len(op.values or ()) != schema.arity:
                return None
            op = TraceOp.insert(
                class_name,
                op.values[:position] + op.values[position + 1:],
            )
        ops.append(op)
    program = Program(
        schemas=schemas,
        rules=program.rules,
        initial_elements=initial_elements,
    )
    return trace.with_program(format_program(program)).with_ops(ops)


def _shrink_arity(trace: Trace, failing: FailingPredicate) -> Trace:
    """Greedily drop unreferenced attribute slots, one at a time.

    Only attributes nothing tests, assigns or modifies are candidates, so
    a drop cannot change matching — but like every shrink step it is
    still verified against *failing* before being kept.
    """
    changed = True
    while changed:
        changed = False
        program = parse_program(trace.program)
        referenced = _referenced_attributes(program, trace.ops)
        for class_name, schema in program.schemas.items():
            if schema.arity <= 1:
                continue
            blocked = referenced.get(class_name, set())
            for attribute in schema.attributes:
                if attribute in blocked:
                    continue
                candidate = _drop_attribute(
                    trace, program, class_name, attribute
                )
                if candidate is not None and failing(candidate):
                    trace = candidate
                    changed = True
                    break
            if changed:
                break
    return trace


def shrink(trace: Trace, failing: FailingPredicate) -> Trace:
    """Minimize *trace* under *failing*; the input must itself fail.

    Raises ``ValueError`` when the input trace does not fail — a shrink
    of a passing trace would "minimize" to an arbitrary passing trace.
    """
    if not failing(trace):
        raise ValueError("shrink() needs a failing trace")
    shrunk = _ddmin_ops(trace, failing)
    shrunk = _prune_rules(shrunk, failing)
    shrunk = _shrink_arity(shrunk, failing)
    shrunk = _ddmin_ops(shrunk, failing)
    return shrunk
