"""Trace minimization by delta debugging.

Given a failing trace and a predicate that re-runs the oracle, the
shrinker produces the smallest trace it can that still fails:

1. **Op ddmin** — classic delta debugging over the op script.  Every op
   is total (deletes/modifies of an empty live list are no-ops), so any
   subsequence is a valid trace and can be tested directly.
2. **Rule pruning** — greedily drop whole productions from the program,
   keeping the drop whenever the trace still fails.
3. A final op-ddmin pass, since a smaller rule base usually lets more ops
   go.

The predicate is typically restricted to the two configurations named by
the original :class:`~repro.check.oracle.Divergence` — re-running the full
matrix for every candidate would make shrinking quadratically expensive
without changing the result.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.check.trace import Trace
from repro.lang.format import format_program
from repro.lang.parser import parse_program

FailingPredicate = Callable[[Trace], bool]


def _ddmin_ops(trace: Trace, failing: FailingPredicate) -> Trace:
    """Zeller/Hildebrandt ddmin over the op sequence."""
    ops = list(trace.ops)
    granularity = 2
    while len(ops) >= 2:
        chunk = max(1, len(ops) // granularity)
        reduced = False
        for start in range(0, len(ops), chunk):
            candidate = ops[:start] + ops[start + chunk:]
            if not candidate:
                continue
            attempt = trace.with_ops(candidate)
            if failing(attempt):
                ops = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(granularity * 2, len(ops))
    # Try the empty script last: some bugs live purely in rule compilation.
    if ops and failing(trace.with_ops([])):
        ops = []
    return trace.with_ops(ops)


def _prune_rules(trace: Trace, failing: FailingPredicate) -> Trace:
    """Greedily drop productions while the trace still fails."""
    program = parse_program(trace.program)
    rules = list(program.rules)
    changed = True
    while changed and len(rules) > 1:
        changed = False
        for index in range(len(rules)):
            candidate_rules = rules[:index] + rules[index + 1:]
            candidate = trace.with_program(
                format_program(
                    type(program)(
                        schemas=program.schemas, rules=candidate_rules
                    )
                )
            )
            if failing(candidate):
                rules = candidate_rules
                changed = True
                break
    return trace.with_program(
        format_program(type(program)(schemas=program.schemas, rules=rules))
    )


def shrink(trace: Trace, failing: FailingPredicate) -> Trace:
    """Minimize *trace* under *failing*; the input must itself fail.

    Raises ``ValueError`` when the input trace does not fail — a shrink
    of a passing trace would "minimize" to an arbitrary passing trace.
    """
    if not failing(trace):
        raise ValueError("shrink() needs a failing trace")
    shrunk = _ddmin_ops(trace, failing)
    shrunk = _prune_rules(shrunk, failing)
    shrunk = _ddmin_ops(shrunk, failing)
    return shrunk
