"""Fuzz traces: a program plus a working-memory operation script.

A :class:`Trace` is the unit the differential harness generates, replays,
shrinks and checks into the regression corpus: an OPS5 program (stored as
source text, so corpus files are human-readable and diff-able) and a
sequence of :class:`TraceOp` working-memory operations applied before the
recognize-act cycles run.

Op vocabulary
-------------
* ``insert`` — insert ``values`` into ``class_name``.
* ``delete`` — remove the live element at ``index % len(live)``; a no-op
  when nothing is live.
* ``modify`` — apply ``changes`` to the live element at
  ``index % len(live)``; a no-op when nothing is live.
* ``detach`` — detach the match strategy mid-stream (conflict set empties);
  a no-op when already detached.
* ``attach`` — (re)attach a fresh strategy instance, which replays the
  whole WM through its constructor.

Every op is *total*: it is valid in any state, so any subsequence of a
trace's ops is itself a valid trace — the property the delta-debugging
shrinker relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.storage.schema import Value

#: JSON wire format of one op: ["insert", class, [values]] /
#: ["delete", index] / ["modify", index, {attr: value}] / ["detach"] /
#: ["attach"].
OpJson = list


@dataclass(frozen=True)
class TraceOp:
    """One working-memory operation of a fuzz trace."""

    kind: str
    class_name: str | None = None
    values: tuple[Value, ...] | None = None
    index: int | None = None
    changes: tuple[tuple[str, Value], ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete", "modify", "detach", "attach"):
            raise ValueError(f"unknown trace op kind {self.kind!r}")

    def to_json(self) -> OpJson:
        if self.kind == "insert":
            return ["insert", self.class_name, list(self.values or ())]
        if self.kind == "delete":
            return ["delete", self.index]
        if self.kind == "modify":
            return ["modify", self.index, dict(self.changes or ())]
        return [self.kind]

    @classmethod
    def from_json(cls, data: OpJson) -> "TraceOp":
        kind = data[0]
        if kind == "insert":
            return cls(kind, class_name=data[1], values=tuple(data[2]))
        if kind == "delete":
            return cls(kind, index=int(data[1]))
        if kind == "modify":
            return cls(
                kind,
                index=int(data[1]),
                changes=tuple(sorted(data[2].items())),
            )
        return cls(kind)

    @classmethod
    def insert(cls, class_name: str, values: tuple[Value, ...]) -> "TraceOp":
        return cls("insert", class_name=class_name, values=tuple(values))

    @classmethod
    def delete(cls, index: int) -> "TraceOp":
        return cls("delete", index=index)

    @classmethod
    def modify(cls, index: int, changes: dict[str, Value]) -> "TraceOp":
        return cls("modify", index=index, changes=tuple(sorted(changes.items())))

    @classmethod
    def detach(cls) -> "TraceOp":
        return cls("detach")

    @classmethod
    def attach(cls) -> "TraceOp":
        return cls("attach")


@dataclass(frozen=True)
class Trace:
    """A differential-fuzz test case: program text + WM op script."""

    name: str
    seed: int
    program: str
    ops: tuple[TraceOp, ...] = ()
    max_cycles: int = 30
    reason: str = ""
    #: Conflict-resolution strategy every replay of this trace uses; part
    #: of the trace (not the config matrix) because the resolver decides
    #: the fired sequence, which must agree across configurations.
    resolution: str = "lex"

    def with_ops(self, ops) -> "Trace":
        return replace(self, ops=tuple(ops))

    def with_program(self, program: str) -> "Trace":
        return replace(self, program=program)

    def with_reason(self, reason: str) -> "Trace":
        return replace(self, reason=reason)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "reason": self.reason,
            "resolution": self.resolution,
            "program": self.program,
            "ops": [op.to_json() for op in self.ops],
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Trace":
        return cls(
            name=data["name"],
            seed=int(data.get("seed", 0)),
            program=data["program"],
            ops=tuple(TraceOp.from_json(op) for op in data.get("ops", [])),
            max_cycles=int(data.get("max_cycles", 30)),
            reason=data.get("reason", ""),
            resolution=data.get("resolution", "lex"),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2) + "\n"

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls.from_json(json.loads(text))
