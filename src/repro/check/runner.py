"""The fuzz campaign driver behind ``repro check --budget N``.

Generates *budget* traces (profiles rotating per index), runs each through
the differential oracle, shrinks any failure to a minimal repro, and
optionally promotes the shrunk trace into a corpus directory.

Observability: each trace replays inside a ``check.trace`` span; the run
emits ``check.traces`` / ``check.failures`` / ``check.replays`` counters
and a ``check.trace_us`` histogram, and failures are reported as
``check.divergence`` events — all through the standard
:class:`repro.obs.Observability` facade, so ``--trace-out`` /
``--metrics-out`` work for fuzz runs exactly as for ``repro run``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.check.corpus import save_repro
from repro.check.generator import generate_trace
from repro.check.oracle import (
    CheckConfig,
    Divergence,
    default_matrix,
    run_trace,
)
from repro.check.shrinker import shrink
from repro.check.trace import Trace
from repro.obs import Observability


@dataclass
class CheckFailure:
    """One fuzz finding: the original and shrunk traces plus the verdict."""

    trace: Trace
    divergence: Divergence
    shrunk: Trace | None = None
    repro_path: str | None = None


@dataclass
class CheckReport:
    """Summary of one fuzz campaign."""

    budget: int
    seed: int
    configs: int
    traces_run: int = 0
    elapsed_s: float = 0.0
    failures: list[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"check: {self.traces_run}/{self.budget} traces × "
            f"{self.configs} configs in {self.elapsed_s:.1f}s — {status}"
        )


#: Shrinking re-runs the oracle per ddmin candidate; cap how many findings
#: get the full treatment so a broken build doesn't turn the campaign into
#: an hours-long shrink-fest.
MAX_SHRINKS = 3


def _pair_matrix(
    divergence: Divergence, configs: list[CheckConfig]
) -> list[CheckConfig]:
    """The [reference, diverging] sub-matrix used as the shrink predicate.

    Falls back to the full matrix when the labels cannot be resolved
    (e.g. an "error" divergence raised before any comparison).
    """
    by_label = {config.label: config for config in configs}
    reference = by_label.get(divergence.reference)
    diverging = by_label.get(divergence.config)
    if reference is None or diverging is None or reference == diverging:
        return configs
    return [reference, diverging]


def run_check(
    budget: int,
    seed: int = 0,
    strategies=None,
    backends=None,
    batch_sizes=None,
    program: str | None = None,
    save_repro_dir: str | None = None,
    obs: Observability | None = None,
    shrink_failures: bool = True,
    resolutions: tuple[str, ...] | None = None,
    compile_modes: tuple[str, ...] | None = None,
    worker_counts: tuple[int, ...] | None = None,
    exec_modes: tuple[str, ...] | None = None,
) -> CheckReport:
    """Run a fuzz campaign of *budget* traces; returns the report.

    *strategies* restricts (or, as a mapping of name → class, replaces)
    the strategy set; *backends* / *batch_sizes* restrict their axes.
    *program* pins the rule base (only op scripts are fuzzed).
    *resolutions* rotates conflict-resolution strategies across traces
    (each trace records the one it used, so repros stay self-contained).
    *compile_modes* restricts the match-compilation axis (the default
    matrix pairs every compiled-family cell with a compile="on" twin).
    *worker_counts* adds parallel-match cells (workers>1 must stay
    bit-identical to workers=1 — docs/PARALLELISM.md); *exec_modes*
    adds §5.1 set-firing and §5.2 concurrent-scheduler cells, each
    compared against its own mode's serial reference.
    """
    obs = obs or Observability()
    matrix_kwargs = {}
    if backends is not None:
        matrix_kwargs["backends"] = tuple(backends)
    if batch_sizes is not None:
        matrix_kwargs["batch_sizes"] = tuple(batch_sizes)
    if compile_modes is not None:
        matrix_kwargs["compile_modes"] = tuple(compile_modes)
    if worker_counts is not None:
        matrix_kwargs["worker_counts"] = tuple(worker_counts)
    if exec_modes is not None:
        matrix_kwargs["exec_modes"] = tuple(exec_modes)
    configs = default_matrix(strategies, **matrix_kwargs)
    report = CheckReport(budget=budget, seed=seed, configs=len(configs))
    observing = obs.enabled
    started = time.perf_counter()
    generate_kwargs = (
        {} if resolutions is None else {"resolutions": tuple(resolutions)}
    )
    for index in range(budget):
        trace = generate_trace(seed, index, program=program, **generate_kwargs)
        trace_started = time.perf_counter()
        with obs.span(
            "check.trace", trace=trace.name, ops=len(trace.ops)
        ) as span:
            divergence = run_trace(
                trace, configs=configs, strategies=strategies, obs=obs
            )
            span.set("ok", divergence is None)
        report.traces_run += 1
        if observing:
            metrics = obs.metrics
            metrics.counter("check.traces").inc()
            metrics.counter("check.replays").inc(len(configs))
            metrics.histogram("check.trace_us").observe(
                (time.perf_counter() - trace_started) * 1e6
            )
        if divergence is None:
            continue
        failure = CheckFailure(trace=trace, divergence=divergence)
        report.failures.append(failure)
        if observing:
            obs.metrics.counter("check.failures").inc()
        obs.event(
            "check.divergence",
            trace=trace.name,
            detail=divergence.describe(),
        )
        if shrink_failures and len(report.failures) <= MAX_SHRINKS:
            pair = _pair_matrix(divergence, configs)

            def still_fails(candidate: Trace) -> bool:
                return (
                    run_trace(candidate, configs=pair, strategies=strategies)
                    is not None
                )

            with obs.span("check.shrink", trace=trace.name) as span:
                failure.shrunk = shrink(trace, still_fails)
                span.set("ops", len(failure.shrunk.ops))
        if save_repro_dir is not None:
            promoted = failure.shrunk or failure.trace
            failure.repro_path = save_repro(
                promoted, save_repro_dir, divergence
            )
    report.elapsed_s = time.perf_counter() - started
    return report
