"""Crash-equivalence fuzzing: kill a run mid-flight, recover, compare.

The ``repro check --crash`` profile drives one generated trace twice:

1. *reference* — a plain, WAL-less replay recording the conflict set at
   every commit point, the fired sequence, the program output and the
   final working memory;
2. *durable* — the same trace under a :class:`~repro.recovery.session.
   DurableRun` with a :class:`~repro.recovery.crashpoints.Crashpoints`
   registry armed at one named site.  When the simulated crash fires, the
   run is abandoned exactly as a killed process would leave it,
   :func:`~repro.recovery.recover.recover` rebuilds a system from the log
   (plus an optional checkpoint), and the replay finishes from the
   recovered position.

Every observable of the finished crashed-and-recovered run must equal the
uninterrupted reference — including the conflict set *at the recovery
point itself*, compared against the reference's conflict set at the same
boundary.  An uninterrupted durable dry run is also compared against the
plain reference, pinning the "a WAL-attached run is bit-identical to a
WAL-off run" guarantee and measuring which crash sites the trace
actually crosses (so arming is never a no-op).

A crash before the first commit point leaves nothing durable;
recovery refuses (:class:`~repro.errors.RecoveryError`) and the harness
restarts the run from scratch — the legitimate real-world response.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from dataclasses import dataclass, field

from repro.engine import BatchSizeTuner, ProductionSystem
from repro.errors import RecoveryError
from repro.check.generator import generate_trace
from repro.check.trace import Trace, TraceOp
from repro.obs import Observability
from repro.recovery import (
    CRASH_SITES,
    Crashpoints,
    DurableRun,
    SimulatedCrash,
    recover,
)
from repro.replica import FollowerState

DEFAULT_CRASH_BACKENDS = ("memory", "sqlite")
DEFAULT_CRASH_BATCH_SIZES = (1, 8, "auto")
DEFAULT_CRASH_STRATEGY = "rete"
#: Execution modes a crash cell can run the recognize-act loop in:
#: ``"cycle"`` (serial OPS5 cycles), ``"set"`` (§5.1 set-firing cycles —
#: every conflict-set instantiation fires per cycle, recorded in one
#: boundary) or ``"txn"`` (§5.2 concurrent rounds, whose mid-round
#: ``txn.*`` crash sites this profile faults).
CRASH_EXEC_MODES = ("cycle", "set", "txn")
#: Segment budget used for checkpointed cells, small enough that typical
#: traces rotate (and compact) their logs mid-run.
CRASH_ROTATE_BYTES = 1024


@dataclass
class CrashFinding:
    """One observable that differed from the uninterrupted reference."""

    trace: Trace
    label: str
    kind: str  # "wal-parity" | "conflict" | "fired" | "output" | "wm" | "error"
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.label}: {self.detail}"


@dataclass
class CrashReport:
    """Summary of one crash-fuzz campaign."""

    budget: int
    seed: int
    traces_run: int = 0
    crashes_fired: int = 0
    recoveries: int = 0
    restarts: int = 0
    promotions: int = 0
    elapsed_s: float = 0.0
    findings: list[CrashFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.findings)} FINDING(S)"
        promoted = (
            f", {self.promotions} promotions" if self.promotions else ""
        )
        return (
            f"crash-check: {self.traces_run}/{self.budget} traces, "
            f"{self.crashes_fired} crashes, {self.recoveries} recoveries"
            f"{promoted}, "
            f"{self.restarts} restarts in {self.elapsed_s:.1f}s — {status}"
        )


@dataclass
class _Observables:
    """What both sides of the comparison must agree on."""

    checkpoints: dict = field(default_factory=dict)
    fired: list = field(default_factory=list)
    output: list = field(default_factory=list)
    final_wm: dict = field(default_factory=dict)
    final_conflict: frozenset = frozenset()


def _wm_contents(system: ProductionSystem) -> dict:
    return {
        name: tuple(
            sorted(
                (wme.tid, wme.timetag, wme.values)
                for wme in system.wm.tuples(name)
            )
        )
        for name in system.wm.schemas
    }


def _strip_control_ops(trace: Trace) -> Trace:
    """Crash runs don't model detach/attach (strategy identity is not
    durable state); drop control ops so every profile's traces apply."""
    return trace.with_ops(
        op for op in trace.ops if op.kind not in ("detach", "attach")
    )


class _OpDriver:
    """Applies trace ops in act-granularity chunks, durable or not.

    Mirrors the oracle's chunking policy: budget 1 applies eagerly, a
    fixed budget groups ops into WM batch scopes, and ``"auto"`` follows a
    :class:`BatchSizeTuner` fed with every flushed batch.  The live-element
    list and the tuner's size are exactly the state a crashed harness must
    rebuild, so both ride in the boundary records' ``extra``.
    """

    def __init__(self, system: ProductionSystem, batch_size) -> None:
        self.system = system
        self.batch_size = batch_size
        self.tuner = BatchSizeTuner() if batch_size == "auto" else None
        self.live: list = []

    def budget(self) -> int:
        if self.tuner is not None:
            return self.tuner.size
        return self.batch_size

    def extra(self, position: int) -> dict:
        return {
            "live": [[wme.relation, wme.tid] for wme in self.live],
            "ops_tuner": self.tuner.size if self.tuner is not None else None,
            "position": position,
        }

    def restore(self, extra: dict) -> None:
        wm = self.system.wm
        self.live = [
            wm.get(relation, tid) for relation, tid in extra.get("live", [])
        ]
        if self.tuner is not None and extra.get("ops_tuner"):
            self.tuner.size = extra["ops_tuner"]

    def _apply_op(self, op: TraceOp) -> None:
        wm = self.system.wm
        live = self.live
        if op.kind == "insert":
            live.append(wm.insert(op.class_name, op.values))
        elif op.kind == "delete":
            if live:
                wm.remove(live.pop(op.index % len(live)))
        elif op.kind == "modify":
            if live:
                slot = op.index % len(live)
                changes = dict(op.changes or ())
                schema = wm.schema(live[slot].relation)
                applicable = {
                    k: v for k, v in changes.items() if k in schema.attributes
                }
                if applicable:
                    live[slot] = wm.modify(live[slot], applicable)

    def apply_ops(self, ops, start: int, boundary) -> None:
        """Apply ``ops[start:]``; call ``boundary(position, driver)`` after
        each committed chunk (*position* = ops applied so far)."""
        position = start
        chunk: list[TraceOp] = []
        for op in ops[start:]:
            chunk.append(op)
            if len(chunk) >= self.budget():
                position += len(chunk)
                self._apply_chunk(chunk)
                chunk = []
                boundary(position, self)
        if chunk:
            position += len(chunk)
            self._apply_chunk(chunk)
            boundary(position, self)

    def _apply_chunk(self, chunk: list[TraceOp]) -> None:
        wm = self.system.wm
        if len(chunk) == 1 and self.tuner is None and self.budget() == 1:
            self._apply_op(chunk[0])
            return
        wm.begin_batch()
        try:
            for op in chunk:
                self._apply_op(op)
        finally:
            batch = wm.end_batch()
            if self.tuner is not None:
                self.tuner.observe(batch)


def _run_txn_rounds(system: ProductionSystem, trace: Trace,
                    observables) -> None:
    """§5.2 rounds over a plain system — the txn-mode reference loop."""
    from repro.txn.scheduler import ConcurrentScheduler

    scheduler = ConcurrentScheduler(system)
    for round_no in range(1, trace.max_cycles + 1):
        stats = scheduler.run_round()
        if stats.transactions == 0:
            break
        observables.fired.extend(
            (round_no, key[0], key) for key in stats.committed_seq
        )
        observables.checkpoints[("round", round_no)] = frozenset(
            system.strategy.conflict_set_keys()
        )


def _durable_rounds(run, trace: Trace, observables) -> None:
    """§5.2 rounds over a DurableRun, recording the same observables."""
    from repro.txn.scheduler import ConcurrentScheduler

    system = run.system
    scheduler = ConcurrentScheduler(system)
    while run.next_cycle <= trace.max_cycles:
        round_no = run.next_cycle
        rounds = run.run_txn(max_rounds=1, scheduler=scheduler)
        if not rounds:
            break
        observables.fired.extend(
            (round_no, key[0], key) for key in rounds[0].committed_seq
        )
        observables.checkpoints[("round", round_no)] = frozenset(
            system.strategy.conflict_set_keys()
        )


def _run_cycles(system: ProductionSystem, trace: Trace, observables,
                start_cycle: int = 1) -> None:
    for cycle in range(start_cycle, trace.max_cycles + 1):
        records = system.step_records(cycle)
        if not records:
            break
        observables.fired.extend(
            (cycle, r.instantiation.rule_name, r.instantiation.key)
            for r in records
        )
        observables.checkpoints[("cycle", cycle)] = frozenset(
            system.strategy.conflict_set_keys()
        )
        if any(r.outcome.halted for r in records):
            break


def _finalize(system: ProductionSystem, observables: _Observables) -> None:
    observables.output = list(system.output)
    observables.final_wm = _wm_contents(system)
    observables.final_conflict = frozenset(
        system.strategy.conflict_set_keys()
    )


def _firing(exec_mode: str) -> str:
    """§5.1 set-firing replaces the select step; the other modes keep
    the instance resolver (txn fires whole snapshots on its own)."""
    return "set" if exec_mode == "set" else "instance"


def _plain_reference(
    trace: Trace, backend: str, batch_size, strategy: str, workers: int = 1,
    exec_mode: str = "cycle",
) -> _Observables:
    """The uninterrupted, WAL-less replay every variant must match."""
    system = ProductionSystem(
        trace.program,
        strategy=strategy,
        resolution=trace.resolution,
        backend=backend,
        seed=trace.seed,
        batch_size=batch_size,
        workers=workers,
        firing=_firing(exec_mode),
    )
    observables = _Observables()
    driver = _OpDriver(system, batch_size)

    def boundary(position, _driver):
        observables.checkpoints[("ops", position)] = frozenset(
            system.strategy.conflict_set_keys()
        )

    driver.apply_ops(trace.ops, 0, boundary)
    if exec_mode == "txn":
        _run_txn_rounds(system, trace, observables)
    else:
        _run_cycles(system, trace, observables)
    _finalize(system, observables)
    return observables


def _durable_config(
    trace: Trace, backend: str, batch_size, strategy: str, workers: int = 1,
    exec_mode: str = "cycle",
):
    return {
        "strategy": strategy,
        "resolution": trace.resolution,
        "backend": backend,
        "seed": trace.seed,
        "batch_size": batch_size,
        "firing": _firing(exec_mode),
        "workers": workers,
    }


def _durable_replay(
    trace: Trace,
    backend: str,
    batch_size,
    strategy: str,
    wal_path: str,
    crashpoints: Crashpoints | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 0,
    fsync_every: int = 4,
    workers: int = 1,
    exec_mode: str = "cycle",
    wal_rotate_bytes: int = 0,
    wal_tap=None,
) -> _Observables:
    """One complete WAL-attached replay, including the closing sync.

    Raises :class:`SimulatedCrash` (after abandoning the run, so nothing
    post-crash becomes durable) when *crashpoints* fires anywhere in the
    replay.  A small ``fsync_every`` keeps several unsynced records in
    flight at typical trace sizes, so append-site crashes actually lose
    data.  ``workers`` is recorded in the WAL meta, so a recovered run
    rebuilds its worker pool too (and must still match the serial
    reference bit for bit).  *wal_tap* ships every fsynced record to a
    replica-cell follower — abandoning the run never taps the unsynced
    buffer, exactly like a real ``kill -9``.
    """
    system = ProductionSystem(
        trace.program,
        strategy=strategy,
        resolution=trace.resolution,
        backend=backend,
        seed=trace.seed,
        batch_size=batch_size,
        workers=workers,
        firing=_firing(exec_mode),
    )
    run = DurableRun.start(
        system,
        wal_path,
        trace.program,
        _durable_config(trace, backend, batch_size, strategy, workers,
                        exec_mode),
        crashpoints=crashpoints,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        fsync_every=fsync_every,
        include_rete=checkpoint_path is not None,
        wal_rotate_bytes=wal_rotate_bytes,
        wal_tap=wal_tap,
    )
    observables = _Observables()
    driver = _OpDriver(system, batch_size)
    try:
        driver.apply_ops(
            trace.ops,
            0,
            lambda position, d: run.ops_boundary(
                position, extra=d.extra(position)
            ),
        )
        if exec_mode == "txn":
            _durable_rounds(run, trace, observables)
        else:
            _durable_cycles(run, trace, observables)
        _finalize(system, observables)
        run.close()
    except SimulatedCrash:
        run.abandon()
        raise
    return observables


def _durable_cycles(run: DurableRun, trace: Trace, observables) -> None:
    """Cycle loop over a DurableRun, recording the same observables."""
    system = run.system
    while run.next_cycle <= trace.max_cycles and not run.halted:
        cycle = run.next_cycle
        result = run.run(max_cycles=1)
        if not result.fired:
            break
        observables.fired.extend(
            (cycle, r.instantiation.rule_name, r.instantiation.key)
            for r in result.fired
        )
        observables.checkpoints[("cycle", cycle)] = frozenset(
            system.strategy.conflict_set_keys()
        )


def _finish_recovered(
    state,
    trace: Trace,
    batch_size,
    checkpoint_path: str | None,
    checkpoint_every: int,
    exec_mode: str = "cycle",
    wal_rotate_bytes: int = 0,
) -> tuple[_Observables, frozenset, tuple | None]:
    """Resume a recovered run to completion.

    Returns the finished observables, the conflict set *at the recovery
    point*, and the reference sync tag it must be compared against.
    """
    system = state.system
    observables = _Observables()
    observables.fired = list(state.fired)
    at_recovery = frozenset(system.strategy.conflict_set_keys())
    if state.phase == "ops":
        tag = ("ops", state.position)
    elif state.phase == "cycle":
        tag = ("cycle", state.cycle)
    elif state.phase == "round":
        tag = ("round", state.cycle)
    else:
        tag = None
    run = DurableRun.resume(
        state,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        include_rete=checkpoint_path is not None,
        wal_rotate_bytes=wal_rotate_bytes,
    )
    try:
        driver = _OpDriver(system, batch_size)
        if state.phase in (None, "setup", "ops"):
            driver.restore(state.extra)
            driver.apply_ops(
                trace.ops,
                state.position,
                lambda position, d: run.ops_boundary(
                    position, extra=d.extra(position)
                ),
            )
        if exec_mode == "txn":
            _durable_rounds(run, trace, observables)
        else:
            _durable_cycles(run, trace, observables)
    finally:
        run.close()
    _finalize(system, observables)
    return observables, at_recovery, tag


def _compare(
    trace: Trace,
    label: str,
    reference: _Observables,
    candidate: _Observables,
) -> CrashFinding | None:
    """First disagreement between the reference and a finished variant.

    Conflict-set checkpoints are compared at *shared* tags only: a run
    recovered mid-flight legitimately lacks the tags it crossed before
    the crash.  The fired sequence, output and final state are cumulative
    (recovery folds the pre-crash prefix back in), so those are compared
    in full.
    """
    shared = sorted(
        set(reference.checkpoints) & set(candidate.checkpoints), key=repr
    )
    for tag in shared:
        if reference.checkpoints[tag] != candidate.checkpoints[tag]:
            return CrashFinding(
                trace=trace,
                label=label,
                kind="conflict",
                detail=f"conflict sets differ at {tag}",
            )
    if reference.fired != candidate.fired:
        return CrashFinding(
            trace=trace,
            label=label,
            kind="fired",
            detail=(
                f"fired sequences differ: {len(reference.fired)} vs "
                f"{len(candidate.fired)} firings"
            ),
        )
    if reference.output != candidate.output:
        return CrashFinding(
            trace=trace,
            label=label,
            kind="output",
            detail=(
                f"program output differs: {reference.output!r} vs "
                f"{candidate.output!r}"
            ),
        )
    if reference.final_wm != candidate.final_wm:
        differing = sorted(
            rel
            for rel in set(reference.final_wm) | set(candidate.final_wm)
            if reference.final_wm.get(rel) != candidate.final_wm.get(rel)
        )
        return CrashFinding(
            trace=trace,
            label=label,
            kind="wm",
            detail=f"final WM differs in relations {differing}",
        )
    if reference.final_conflict != candidate.final_conflict:
        return CrashFinding(
            trace=trace,
            label=label,
            kind="conflict",
            detail="final conflict sets differ",
        )
    return None


def _follower_observables(state) -> _Observables:
    """The promoted follower's view, shaped for :func:`_compare`."""
    observables = _Observables()
    observables.fired = list(state.fired)
    _finalize(state.system, observables)
    return observables


def run_crash_trace(
    trace: Trace,
    backend: str = "memory",
    batch_size=1,
    strategy: str = DEFAULT_CRASH_STRATEGY,
    site: str | None = None,
    after: int = 1,
    rng: random.Random | None = None,
    checkpoint_every: int = 0,
    workdir: str | None = None,
    workers: int = 1,
    exec_mode: str = "cycle",
    wal_rotate_bytes: int | None = None,
    replicate: bool = False,
) -> tuple[CrashFinding | None, dict]:
    """Crash one trace at *site* (or a random reachable site), recover,
    finish, and compare against the uninterrupted reference.

    ``workers`` sizes the match worker pool for every replay in the cell
    — reference, dry run, crashed run and recovery — so crash-recovery
    is exercised under parallel match too (the determinism contract of
    docs/PARALLELISM.md extends through the WAL).  ``exec_mode="txn"``
    runs the recognize-act loop as §5.2 concurrent rounds instead of
    serial cycles, reaching the mid-round ``txn.*`` crash sites;
    ``"set"`` runs §5.1 set-firing cycles, so whole-conflict-set
    boundary records are crashed and replayed too.
    Checkpointed cells also rotate their logs every
    :data:`CRASH_ROTATE_BYTES`, so segment rotation, compaction and the
    torn-rotation window (``wal.rotate``) are crashed and recovered too.

    ``replicate=True`` is the failover-equivalence cell: the armed run
    ships every fsynced record to an in-process
    :class:`~repro.replica.FollowerState`; when the crash fires, the
    *follower* is promoted (its local materialization resumed in place)
    instead of recovering the primary's log — and the promoted run must
    still match the uninterrupted reference bit for bit.

    Returns ``(finding_or_None, stats)`` where *stats* records what
    happened: ``{"crashed": site_or_None, "recovered": bool,
    "restarted": bool, "promoted": bool, "hits": {site: count}}``.
    """
    if exec_mode not in CRASH_EXEC_MODES:
        raise ValueError(
            f"unknown crash exec mode {exec_mode!r}; "
            f"choose from {CRASH_EXEC_MODES}"
        )
    trace = _strip_control_ops(trace)
    rng = rng or random.Random(trace.seed)
    stats = {"crashed": None, "recovered": False, "restarted": False,
             "promoted": False, "hits": {}}
    if wal_rotate_bytes is not None:
        rotate_bytes = wal_rotate_bytes
    else:
        rotate_bytes = CRASH_ROTATE_BYTES if checkpoint_every else 0

    def _run(directory: str):
        wal_path = os.path.join(directory, "crash.wal")
        checkpoint_path = (
            os.path.join(directory, "crash.ckpt") if checkpoint_every else None
        )
        reference = _plain_reference(
            trace, backend, batch_size, strategy, workers, exec_mode
        )

        # Uninterrupted durable dry run: pins WAL-attached == WAL-off and
        # measures which sites this configuration actually crosses.  It
        # checkpoints on the same schedule as the armed run, so
        # ``checkpoint.mid`` crossings are counted too.
        probe = Crashpoints()
        dry = _durable_replay(
            trace, backend, batch_size, strategy,
            os.path.join(directory, "dry.wal"), crashpoints=probe,
            checkpoint_path=(
                os.path.join(directory, "dry.ckpt") if checkpoint_every else None
            ),
            checkpoint_every=checkpoint_every,
            workers=workers,
            exec_mode=exec_mode,
            wal_rotate_bytes=rotate_bytes,
        )
        stats["hits"] = {
            name: probe.hits(name) for name in CRASH_SITES if probe.hits(name)
        }
        w_tag = f"/w{workers}" if workers != 1 else ""
        mode_tag = f"/{exec_mode}" if exec_mode != "cycle" else ""
        finding = _compare(
            trace, f"{backend}/batch={batch_size}{w_tag}{mode_tag}/wal-dry",
            reference, dry,
        )
        if finding is not None:
            finding.kind = "wal-parity"
            return finding

        chosen = site
        if chosen is None:
            reachable = sorted(stats["hits"])
            if not reachable:
                return None
            chosen = reachable[rng.randrange(len(reachable))]
        crossings = stats["hits"].get(chosen, 0)
        if crossings == 0:
            return None  # site unreachable for this configuration
        arm_after = after if site is not None else rng.randint(1, crossings)
        arm_after = min(arm_after, crossings)

        crashpoints = Crashpoints()
        crashpoints.arm(chosen, after=arm_after)
        replica_tag = "/replica" if replicate else ""
        label = (
            f"{backend}/batch={batch_size}{w_tag}{mode_tag}{replica_tag}"
            f"/{chosen}@{arm_after}"
        )
        follower = None
        wal_tap = None
        if replicate:
            follower = FollowerState(
                os.path.join(directory, "follower"), epoch=1
            )
            wal_tap = lambda _first, lines: follower.ingest_lines(  # noqa: E731
                "t", list(lines)
            )
        try:
            finished = _durable_replay(
                trace, backend, batch_size, strategy, wal_path,
                crashpoints=crashpoints, checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                workers=workers,
                exec_mode=exec_mode,
                wal_rotate_bytes=rotate_bytes,
                wal_tap=wal_tap,
            )
            # The armed hit count exceeded the run's crossings (can happen
            # for caller-pinned sites); the run finished uninterrupted.
            finding = _compare(trace, label, reference, finished)
            if finding is None and follower is not None:
                # The fully-shipped standby must sit at the final state.
                states = follower.pop_states()
                if "t" in states:
                    finding = _compare(
                        trace, f"{label}/standby", reference,
                        _follower_observables(states["t"]),
                    )
            return finding
        except SimulatedCrash:
            stats["crashed"] = chosen

        if follower is not None:
            # Failover: promote the standby's own materialization; the
            # primary's log is never read again (it is "gone" with the
            # killed machine).
            states = follower.pop_states()
            if "t" not in states:
                # Crash before the tenant's first shipped boundary —
                # nothing durable anywhere; restart from scratch.
                stats["restarted"] = True
                rerun = _durable_replay(
                    trace, backend, batch_size, strategy,
                    os.path.join(directory, "restart.wal"),
                    workers=workers,
                    exec_mode=exec_mode,
                )
                return _compare(trace, f"{label}/restart", reference, rerun)
            stats["promoted"] = True
            stats["recovered"] = True
            state = states["t"]
            promoted_ckpt = (
                os.path.join(directory, "follower", "t.ckpt")
                if checkpoint_every else None
            )
            finished, at_recovery, tag = _finish_recovered(
                state, trace, batch_size, promoted_ckpt, checkpoint_every,
                exec_mode=exec_mode, wal_rotate_bytes=rotate_bytes,
            )
            if tag is not None and tag in reference.checkpoints:
                if at_recovery != reference.checkpoints[tag]:
                    return CrashFinding(
                        trace=trace,
                        label=label,
                        kind="conflict",
                        detail=(
                            f"conflict set at promotion point {tag} "
                            "differs from the uninterrupted reference"
                        ),
                    )
            return _compare(trace, label, reference, finished)

        try:
            state = recover(wal_path, checkpoint_path)
        except RecoveryError:
            # Nothing durable — restart from scratch, as an operator would.
            stats["restarted"] = True
            rerun = _durable_replay(
                trace, backend, batch_size, strategy,
                os.path.join(directory, "restart.wal"),
                workers=workers,
                exec_mode=exec_mode,
            )
            return _compare(trace, f"{label}/restart", reference, rerun)

        stats["recovered"] = True
        finished, at_recovery, tag = _finish_recovered(
            state, trace, batch_size, checkpoint_path, checkpoint_every,
            exec_mode=exec_mode, wal_rotate_bytes=rotate_bytes,
        )
        if tag is not None and tag in reference.checkpoints:
            if at_recovery != reference.checkpoints[tag]:
                return CrashFinding(
                    trace=trace,
                    label=label,
                    kind="conflict",
                    detail=(
                        f"conflict set at recovery point {tag} differs "
                        "from the uninterrupted reference"
                    ),
                )
        return _compare(trace, label, reference, finished)

    if workdir is not None:
        os.makedirs(workdir, exist_ok=True)
        return _run(workdir), stats
    with tempfile.TemporaryDirectory() as directory:
        return _run(directory), stats


def run_crash_check(
    budget: int,
    seed: int = 0,
    backends=DEFAULT_CRASH_BACKENDS,
    batch_sizes=DEFAULT_CRASH_BATCH_SIZES,
    strategy: str = DEFAULT_CRASH_STRATEGY,
    resolutions: tuple[str, ...] | None = None,
    program: str | None = None,
    checkpoint_every: int = 3,
    save_repro_dir: str | None = None,
    obs: Observability | None = None,
    worker_counts: tuple[int, ...] = (1,),
    exec_modes: tuple[str, ...] = ("cycle",),
    replicate: bool = False,
) -> CrashReport:
    """The ``repro check --crash`` campaign: *budget* traces, each crashed
    at a random reachable site under a rotating backend × batch-size ×
    worker-count × exec-mode configuration (checkpoints cut every few
    cycles on half the traces, so both the checkpoint fast path and pure
    log replay are exercised — and those cells also rotate/compact their
    log segments; *worker_counts* beyond ``(1,)`` rotates parallel-match
    cells in, crashing and recovering runs with a live worker pool;
    *exec_modes* including ``"txn"`` kills §5.2 scheduler rounds at the
    mid-round ``txn.*`` sites, and ``"set"`` crashes §5.1 set-firing
    cycles).  *replicate* rotates warm-standby cells in on half the
    traces: the crash is survived by promoting the shipped follower
    instead of recovering the primary's log.
    """
    from repro.check.corpus import save_repro

    obs = obs or Observability()
    report = CrashReport(budget=budget, seed=seed)
    observing = obs.enabled
    started = time.perf_counter()
    generate_kwargs = (
        {} if resolutions is None else {"resolutions": tuple(resolutions)}
    )
    backends = tuple(backends)
    batch_sizes = tuple(batch_sizes)
    worker_counts = tuple(worker_counts) or (1,)
    exec_modes = tuple(exec_modes) or ("cycle",)
    for index in range(budget):
        trace = generate_trace(seed, index, program=program, **generate_kwargs)
        backend = backends[index % len(backends)]
        batch_size = batch_sizes[(index // len(backends)) % len(batch_sizes)]
        workers = worker_counts[
            (index // (len(backends) * len(batch_sizes))) % len(worker_counts)
        ]
        exec_mode = exec_modes[index % len(exec_modes)]
        ckpt_every = checkpoint_every if index % 2 else 0
        replica_cell = replicate and index % 2 == 1
        rng = random.Random(f"{seed}/{index}/crash")
        with obs.span(
            "check.crash_trace",
            trace=trace.name,
            backend=backend,
            batch=str(batch_size),
            workers=workers,
            exec=exec_mode,
            replica=replica_cell,
        ) as span:
            finding, stats = run_crash_trace(
                trace,
                backend=backend,
                batch_size=batch_size,
                strategy=strategy,
                rng=rng,
                checkpoint_every=ckpt_every,
                workers=workers,
                exec_mode=exec_mode,
                replicate=replica_cell,
            )
            span.set("crashed", stats["crashed"] or "(none)")
            span.set("ok", finding is None)
        report.traces_run += 1
        if stats["crashed"]:
            report.crashes_fired += 1
        if stats["recovered"]:
            report.recoveries += 1
        if stats["restarted"]:
            report.restarts += 1
        if stats.get("promoted"):
            report.promotions += 1
            if observing:
                obs.metrics.counter("check.promotions").inc()
        if observing:
            metrics = obs.metrics
            metrics.counter("check.crash_traces").inc()
            if stats["crashed"]:
                metrics.counter("check.crashes").inc()
            if stats["recovered"]:
                metrics.counter("check.recoveries").inc()
        if finding is None:
            continue
        report.findings.append(finding)
        if observing:
            obs.metrics.counter("check.crash_failures").inc()
        obs.event(
            "check.crash_divergence",
            trace=trace.name,
            detail=finding.describe(),
        )
        if save_repro_dir is not None:
            save_repro(
                finding.trace.with_reason(finding.describe()),
                save_repro_dir,
            )
    report.elapsed_s = time.perf_counter() - started
    return report
