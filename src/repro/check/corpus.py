"""The checked-in regression corpus.

Every shrunk failing trace the fuzzer finds is promoted into
``tests/corpus/`` as a small JSON file (program source + op script) and
replayed by the tier-1 pytest run from then on — the fuzzer's findings
become permanent regression tests.

File format (one :class:`~repro.check.trace.Trace` per file)::

    {
      "name": "seed0-17-negation",
      "seed": 0,
      "reason": "[conflict] simplified/memory/batch=8 vs ...",
      "program": "(literalize K0 a0 a1 a2)\\n(p rule0 ...)",
      "ops": [["insert", "K0", [1, 2, 0]], ["delete", 3], ["attach"]],
      "max_cycles": 30
    }
"""

from __future__ import annotations

import os

from repro.check.oracle import Divergence, run_trace
from repro.check.trace import Trace


def save_repro(
    trace: Trace, directory: str, divergence: Divergence | None = None
) -> str:
    """Write *trace* into *directory* as ``<name>.json``; returns the path.

    A name collision gets a numeric suffix rather than overwriting — two
    different shrunk repros can share a generation name.
    """
    os.makedirs(directory, exist_ok=True)
    if divergence is not None and not trace.reason:
        trace = trace.with_reason(divergence.describe())
    base = trace.name or "repro"
    path = os.path.join(directory, f"{base}.json")
    suffix = 1
    while os.path.exists(path):
        suffix += 1
        path = os.path.join(directory, f"{base}-{suffix}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace.dumps())
    return path


def load_trace(path: str) -> Trace:
    """Read one corpus file."""
    with open(path, encoding="utf-8") as handle:
        return Trace.loads(handle.read())


def load_corpus(directory: str) -> list[tuple[str, Trace]]:
    """All (path, trace) pairs under *directory*, sorted by filename."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            path = os.path.join(directory, name)
            entries.append((path, load_trace(path)))
    return entries


def replay(trace: Trace, strategies=None) -> Divergence | None:
    """Replay a corpus trace across the full default matrix."""
    return run_trace(trace, strategies=strategies)
