"""Operation counters used to compare strategies analytically.

The paper argues about *operations* (searches of COND relations, token
propagations, join re-computations) rather than milliseconds, so every
subsystem increments a shared :class:`Counters` object.  Benchmarks report
both wall time and these counts; tests assert on the counts because they are
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Mutable bag of operation counts.

    Attributes (all start at zero):
        comparisons: Scalar value comparisons performed.
        tuple_reads: Stored tuples materialized from a relation.
        tuple_writes: Tuples inserted into or deleted from a relation.
        index_lookups: Hash/R-tree index probes.
        scans: Full relation scans started.
        tokens: Rete tokens propagated through the network.
        node_activations: Rete node activations (one- or two-input).
        patterns_created: Matching-pattern tuples created (§4.2).
        patterns_updated: Matching-pattern counter increments/decrements.
        cond_searches: Searches over a COND relation.
        joins_computed: Join evaluations performed by the simplified
            strategy (§4.1 re-computation cost).
        false_drops: Candidates that failed act-time validation.
        lock_waits: Times a transaction blocked on a lock.
        aborts: Transactions aborted (deadlock victims or validation).
    """

    comparisons: int = 0
    tuple_reads: int = 0
    tuple_writes: int = 0
    index_lookups: int = 0
    scans: int = 0
    tokens: int = 0
    node_activations: int = 0
    patterns_created: int = 0
    patterns_updated: int = 0
    cond_searches: int = 0
    joins_computed: int = 0
    false_drops: int = 0
    lock_waits: int = 0
    aborts: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        """Return a plain ``{name: count}`` snapshot."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def snapshot(self) -> "Counters":
        """Return an independent copy of the current counts."""
        return Counters(**self.as_dict())

    def diff(self, earlier: "Counters") -> dict[str, int]:
        """Return counts accumulated since the *earlier* snapshot."""
        now = self.as_dict()
        before = earlier.as_dict()
        return {name: now[name] - before[name] for name in now}

    def __add__(self, other: "Counters") -> "Counters":
        merged = Counters()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged


@dataclass
class SpaceReport:
    """Storage footprint of one match strategy (paper §4.2.3 "Space").

    ``estimated_cells`` is the number of stored attribute values across all
    auxiliary structures — the unit the paper reasons in when it says the
    Rete network is "inherently redundant" and that matching patterns "trade
    space for time".
    """

    strategy: str = ""
    wm_tuples: int = 0
    stored_tokens: int = 0
    stored_patterns: int = 0
    marker_entries: int = 0
    estimated_cells: int = 0
    detail: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Return a flat dictionary for table rendering."""
        return {
            "strategy": self.strategy,
            "wm_tuples": self.wm_tuples,
            "stored_tokens": self.stored_tokens,
            "stored_patterns": self.stored_patterns,
            "marker_entries": self.marker_entries,
            "estimated_cells": self.estimated_cells,
        }
