"""First-class WM change batches: the set-at-a-time delta pipeline.

§4.2.3 of the paper argues that matching-pattern maintenance is *flat* and
set-oriented: the work triggered by a WM change decomposes into independent
groups per target COND relation, so "our scheme can be fully parallelized".
The original reproduction nevertheless funnelled every change through
one-tuple-at-a-time ``on_insert``/``on_delete`` callbacks.  This module
provides the batch currency the whole pipeline now speaks:

* the act phase of the interpreter collects a cycle's ``make``/``remove``/
  ``modify`` effects into one :class:`DeltaBatch`;
* :meth:`repro.engine.wm.WorkingMemory.apply_batch` applies a batch to
  storage set-at-a-time (``insert_many``/``delete_many``, one backend
  transaction) and notifies listeners once;
* :meth:`repro.match.base.MatchStrategy.on_delta` consumes a batch, by
  default falling back to the per-tuple callbacks, while the matching-
  pattern and query strategies override it with set-oriented maintenance
  grouped by target relation, and the Rete family turns a batch into
  per-class token sets probing each opposing join memory once per
  (node, group) — ``docs/ALGORITHMS.md`` §7–§8;
* the §5 concurrent scheduler delivers one batch per transaction commit
  point (:class:`repro.txn.transactions.RuleTransaction`, ``batched_act``),
  so the maintenance process still completes before any lock is released.

A batch is an *ordered* sequence of deltas; order matters to the sequential
fallback and is preserved by :meth:`DeltaBatch.by_relation` within each
relation group.  Before delivery a batch is *netted*
(:meth:`DeltaBatch.net`): an insert/delete pair for the same
``(relation, tid)`` annihilates, so listeners never see an element that
does not outlive its batch.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.storage.tuples import StoredTuple

#: Delta operation kinds.  A *modify* is represented as delete + insert
#: (§3.1: the replacement gets a fresh timetag, as in OPS5).
INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class Delta:
    """One WM change: a tuple inserted into or deleted from its relation."""

    op: str
    wme: StoredTuple

    @property
    def relation(self) -> str:
        return self.wme.relation

    @property
    def tid(self) -> int:
        return self.wme.tid

    @property
    def key(self) -> tuple[str, int]:
        """The (relation, tid) identity of the changed element."""
        return (self.wme.relation, self.wme.tid)

    def __str__(self) -> str:
        sign = "+" if self.op == INSERT else "-"
        return f"{sign}{self.wme}"


class DeltaBatch:
    """An ordered batch of WM deltas delivered to listeners as one unit."""

    __slots__ = ("deltas",)

    def __init__(self, deltas: Iterable[Delta] = ()) -> None:
        self.deltas: list[Delta] = list(deltas)

    # -- construction --------------------------------------------------------

    @classmethod
    def of_inserts(cls, wmes: Iterable[StoredTuple]) -> "DeltaBatch":
        """A batch inserting every element of *wmes* (strategy replay)."""
        return cls(Delta(INSERT, wme) for wme in wmes)

    def append(self, delta: Delta) -> None:
        self.deltas.append(delta)

    # -- views ---------------------------------------------------------------

    @property
    def inserts(self) -> list[Delta]:
        """The insert deltas, in batch order."""
        return [d for d in self.deltas if d.op == INSERT]

    @property
    def deletes(self) -> list[Delta]:
        """The delete deltas, in batch order."""
        return [d for d in self.deltas if d.op == DELETE]

    def relations(self) -> list[str]:
        """Distinct changed relations, in first-appearance order."""
        seen: dict[str, None] = {}
        for delta in self.deltas:
            seen.setdefault(delta.relation, None)
        return list(seen)

    def by_relation(self) -> dict[str, list[Delta]]:
        """Deltas grouped by relation (batch order kept within groups).

        This is the grouping §4.2.3's parallelism claim rests on: work
        targeting distinct relations is independent.
        """
        groups: dict[str, list[Delta]] = {}
        for delta in self.deltas:
            groups.setdefault(delta.relation, []).append(delta)
        return groups

    # -- normalization -------------------------------------------------------

    def net(self) -> "DeltaBatch":
        """Cancel insert/delete pairs of the same element within the batch.

        An element created *and* destroyed inside one batch has no net
        effect on any listener's final state (supports and tokens it would
        have contributed are withdrawn by the matching delete), so the pair
        annihilates — the classic delta-normalization step of set-oriented
        view maintenance.  Tuple ids are never reused, so a delete matching
        an earlier insert's key always refers to that same element.
        """
        inserted_at: dict[tuple[str, int], int] = {}
        dropped: set[int] = set()
        for position, delta in enumerate(self.deltas):
            if delta.op == INSERT:
                inserted_at[delta.key] = position
            else:
                birth = inserted_at.pop(delta.key, None)
                if birth is not None:
                    dropped.add(birth)
                    dropped.add(position)
        if not dropped:
            return self
        return DeltaBatch(
            delta
            for position, delta in enumerate(self.deltas)
            if position not in dropped
        )

    # -- dunder --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    def __bool__(self) -> bool:
        return bool(self.deltas)

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.deltas[:8])
        if len(self.deltas) > 8:
            inner += f", ... ({len(self.deltas)} total)"
        return f"DeltaBatch[{inner}]"
