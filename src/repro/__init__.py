"""repro — production rule systems in a DBMS environment.

A full reproduction of T. Sellis, C.-C. Lin & L. Raschid, *"Implementing
Large Production Systems in a DBMS Environment: Concepts and Algorithms"*
(SIGMOD 1988): OPS5-style rules over relational working memory, four
interchangeable match-indexing strategies (Rete, simplified query
re-evaluation, the paper's matching-pattern scheme, and POSTGRES-style
tuple markers), the recognize-act engine, transactional concurrent
execution of conflict sets, and trigger/materialized-view layers built on
the same matching machinery.

Quick start::

    from repro import ProductionSystem

    system = ProductionSystem('''
        (literalize Emp name salary)
        (p raise-low
            (Emp ^name <N> ^salary {<S> < 100})
            -->
            (modify 1 ^salary (compute <S> + 10)))
    ''', strategy="patterns")
    system.insert("Emp", {"name": "Mike", "salary": 70})
    system.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.engine import (
    ConflictSet,
    Instantiation,
    ProductionSystem,
    RunResult,
    TraceEvent,
    WorkingMemory,
)
from repro.errors import ReproError
from repro.instrument import Counters, SpaceReport
from repro.lang import (
    Program,
    Rule,
    RuleBuilder,
    analyze_program,
    format_program,
    format_rule,
    parse_program,
    parse_rule,
    var,
)
from repro.match import (
    BasicLockingStrategy,
    DbmsReteStrategy,
    MatchingPatternsStrategy,
    MatchStrategy,
    ReteStrategy,
    STRATEGIES,
    SharedReteStrategy,
    SimplifiedStrategy,
)
from repro.obs import (
    JsonlFileSink,
    MetricsRegistry,
    Observability,
    PhaseStatsSink,
    RingBufferSink,
    RunManifest,
)
from repro.rindex import ConditionIndex, RTree
from repro.storage import Catalog, RelationSchema, StoredTuple
from repro.txn import (
    POLICIES,
    ConcurrentScheduler,
    count_equivalent_serial_orders,
    equivalent_serial_order,
    is_serializable,
)
from repro.views import MaterializedView, TriggerManager, ViewManager
from repro.workload import WorkloadSpec, generate_workload

__version__ = "1.0.0"

__all__ = [
    "BasicLockingStrategy",
    "Catalog",
    "ConcurrentScheduler",
    "ConditionIndex",
    "ConflictSet",
    "Counters",
    "DbmsReteStrategy",
    "Instantiation",
    "JsonlFileSink",
    "MatchStrategy",
    "MatchingPatternsStrategy",
    "MaterializedView",
    "MetricsRegistry",
    "Observability",
    "POLICIES",
    "PhaseStatsSink",
    "ProductionSystem",
    "Program",
    "RTree",
    "RelationSchema",
    "ReproError",
    "ReteStrategy",
    "RingBufferSink",
    "RunManifest",
    "Rule",
    "RuleBuilder",
    "RunResult",
    "STRATEGIES",
    "SharedReteStrategy",
    "SimplifiedStrategy",
    "SpaceReport",
    "StoredTuple",
    "TraceEvent",
    "TriggerManager",
    "ViewManager",
    "WorkingMemory",
    "WorkloadSpec",
    "analyze_program",
    "count_equivalent_serial_orders",
    "equivalent_serial_order",
    "format_program",
    "format_rule",
    "generate_workload",
    "is_serializable",
    "parse_program",
    "parse_rule",
    "var",
]
